//! Why STT-MRAM in the L2 at all? This example reproduces the paper's
//! *motivation*: compare an SRAM L2 against an STT-MRAM L2 of the same
//! geometry on leakage, area and access energy, then show the reliability
//! price (read disturbance) and how REAP pays it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example hybrid_hierarchy
//! ```

use reap::cache::timing::{amat_delta, LatencyCard};
use reap::core::{Experiment, ProtectionScheme};
use reap::nvarray::{estimate, ArraySpec, MemTech, TechnologyNode};
use reap::trace::SpecWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = TechnologyNode::nm(22)?;
    let spec = ArraySpec::new(1 << 20, 64, 8)?.with_check_bits(10);
    let sram = estimate(&spec, MemTech::Sram, node);
    let stt = estimate(&spec, MemTech::SttMram, node);

    println!("1 MB 8-way L2 at 22 nm — SRAM vs STT-MRAM");
    println!();
    println!(
        "{:<26} {:>14} {:>14} {:>10}",
        "metric", "SRAM", "STT-MRAM", "ratio"
    );
    let rows: [(&str, f64, f64); 5] = [
        (
            "leakage power (mW)",
            sram.leakage_power * 1e3,
            stt.leakage_power * 1e3,
        ),
        ("area (mm²)", sram.area * 1e6, stt.area * 1e6),
        (
            "line read energy (pJ)",
            sram.line_read_energy * 1e12,
            stt.line_read_energy * 1e12,
        ),
        (
            "line write energy (pJ)",
            sram.line_write_energy * 1e12,
            stt.line_write_energy * 1e12,
        ),
        (
            "read latency (ns)",
            sram.data_read_latency * 1e9,
            stt.data_read_latency * 1e9,
        ),
    ]
    .map(|(n, a, b)| (n, a, b));
    for (name, s, t) in rows {
        println!("{:<26} {:>14.3} {:>14.3} {:>9.2}x", name, s, t, t / s);
    }
    println!();
    println!(
        "STT-MRAM wins where caches hurt most (leakage, density) and loses on \
         write energy/latency — and on read disturbance, which SRAM does not \
         have at all. The reliability bill and REAP's answer:"
    );
    println!();

    let report = Experiment::paper_hierarchy()
        .workload(SpecWorkload::Povray)
        .accesses(1_000_000)
        .seed(3)
        .run()?;
    println!(
        "povray on the STT-MRAM L2: conventional MTTF {} -> REAP {} ({:.1}x)",
        report.mttf(ProtectionScheme::Conventional),
        report.mttf(ProtectionScheme::Reap),
        report.mttf_improvement(ProtectionScheme::Reap)
    );

    // Program-visible latency cost of the *serial* alternative, which
    // fixes reliability by abandoning the parallel read path instead.
    let serial_penalty = amat_delta(
        report.l1d_stats(),
        report.l2_stats(),
        report.access_time(ProtectionScheme::Conventional),
        report.access_time(ProtectionScheme::SerialTagFirst),
    );
    let _ = LatencyCard::with_l2(report.access_time(ProtectionScheme::Reap));
    println!(
        "serial tag-first would match REAP's reliability but costs {:+.2}% AMAT; \
         REAP costs {:+.2}%.",
        100.0 * serial_penalty,
        100.0
            * amat_delta(
                report.l1d_stats(),
                report.l2_stats(),
                report.access_time(ProtectionScheme::Conventional),
                report.access_time(ProtectionScheme::Reap),
            )
    );
    Ok(())
}
