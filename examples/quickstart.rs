//! Quickstart: simulate one SPEC-like workload on the paper's cache
//! hierarchy and compare the conventional cache with REAP.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use reap::core::{Experiment, ProtectionScheme};
use reap::trace::SpecWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table I hierarchy, default MTJ card (P_rd ≈ 1.5e-8), SEC line code.
    let report = Experiment::paper_hierarchy()
        .workload(SpecWorkload::DealII)
        .accesses(2_000_000)
        .seed(42)
        .run()?;

    println!("== dealII on the Table I hierarchy ==");
    println!("{report}");

    println!("Interpretation:");
    println!(
        "  - every L2 read touched all 8 ways; {:.1} concealed reads per access",
        report.mean_concealed_reads()
    );
    println!(
        "  - largest accumulation between ECC checks: N = {}",
        report.histogram().max_n()
    );
    println!(
        "  - REAP eliminates that accumulation: MTTF x{:.1}, energy {:+.2}%, \
         access time {:+.3} ns",
        report.mttf_improvement(ProtectionScheme::Reap),
        100.0 * report.energy_overhead(ProtectionScheme::Reap),
        (report.access_time(ProtectionScheme::Reap)
            - report.access_time(ProtectionScheme::Conventional))
            * 1e9,
    );
    Ok(())
}
