//! Bit-level Monte-Carlo demo: store real codewords in a simulated MTJ
//! array, disturb them read by read, decode with a real SEC-DED decoder,
//! and watch accumulation destroy the conventional check-on-demand
//! discipline while per-read checking (REAP) survives.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example monte_carlo
//! ```

use reap::ecc::HsiaoSecDed;
use reap::reliability::montecarlo::CheckPolicy;
use reap::reliability::{AccumulationModel, MonteCarloLine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Amplified disturbance probability so failures are observable in
    // thousands (rather than 1e12) trials.
    let p_rd = 1e-3;
    let code = HsiaoSecDed::new(64)?;
    let mc = MonteCarloLine::new(&code, p_rd, 2024);
    let model = AccumulationModel::sec(p_rd);
    let trials = 20_000;

    println!("Hsiao (72,64), P_rd = {p_rd:.0e} (amplified), {trials} trials per point");
    println!();
    println!(
        "{:<8} {:>16} {:>16} {:>16} {:>12}",
        "reads", "conv (MC)", "conv (model)", "REAP (MC)", "MC gain"
    );
    for reads in [5u64, 20, 50, 100] {
        let conv = mc.run(reads, trials, CheckPolicy::AtEnd).failure_rate();
        let reap = mc.run(reads, trials, CheckPolicy::EveryRead).failure_rate();
        let predicted = model.fail_conventional(36, reads); // ~36 ones in 72 bits
        println!(
            "{:<8} {:>16.4e} {:>16.4e} {:>16.4e} {:>11.1}x",
            reads,
            conv,
            predicted,
            reap,
            conv / reap.max(1.0 / trials as f64)
        );
    }

    println!();
    println!(
        "The conventional column grows ~quadratically with the read count \
         (two accumulated flips defeat SEC); the REAP column stays ~linear \
         and tiny — scrubbing after every read resets the clock."
    );
    Ok(())
}
