//! Design-space exploration: how much *read-current margin* does REAP buy?
//!
//! Higher read current means faster, more robust sensing — but a higher
//! read-disturbance probability (Eq. (1)). A designer picks the highest
//! current whose cache-level failure rate stays acceptable. Because REAP
//! removes accumulation, it tolerates a much higher per-read disturbance
//! probability, i.e. a faster read path, at the same reliability target.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use reap::core::{Experiment, ProtectionScheme};
use reap::mtj::{read_disturbance_probability, MtjParams};
use reap::trace::SpecWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Read-current design space on calculix (1M accesses per point)");
    println!();
    println!(
        "{:<12} {:>12} {:>18} {:>18} {:>10}",
        "I_read (µA)", "P_rd", "E[fail] conv", "E[fail] REAP", "gain"
    );

    for ua in [55.0, 60.0, 65.0, 70.0, 75.0, 80.0] {
        let mtj = MtjParams::default().with_read_current(ua * 1e-6)?;
        let p_rd = read_disturbance_probability(&mtj);
        let report = Experiment::paper_hierarchy()
            .workload(SpecWorkload::Calculix)
            .accesses(1_000_000)
            .seed(7)
            .mtj(mtj)
            .run()?;
        let conv = report.expected_failures(ProtectionScheme::Conventional);
        let reap = report.expected_failures(ProtectionScheme::Reap);
        println!(
            "{:<12.0} {:>12.2e} {:>18.3e} {:>18.3e} {:>9.1}x",
            ua,
            p_rd,
            conv,
            reap,
            report.mttf_improvement(ProtectionScheme::Reap)
        );
    }

    println!();
    println!(
        "Reading: pick a failure budget and scan down the conv/REAP columns — \
         REAP reaches the same reliability several read-current steps higher, \
         which is exactly the sensing margin circuit designers fight for."
    );
    Ok(())
}
