//! Program phases and accumulation: a workload that alternates between a
//! compute phase (hammering a hot structure) and a traversal phase
//! (walking a large graph) produces bursty concealed-read accumulation —
//! lines parked during the "other" phase return with large `N`.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example phase_behavior
//! ```

use reap::cache::{Hierarchy, HierarchyConfig, Replacement};
use reap::core::ReliabilityObserver;
use reap::mtj::{read_disturbance_probability, MtjParams};
use reap::reliability::AccumulationModel;
use reap::trace::generators::{KindModel, PointerChase, StridedStream};
use reap::trace::Phased;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = KindModel::Data { read_fraction: 0.8 };
    let phase_len = 200_000;
    // Phase A: cyclic sweep over an L2-resident matrix. Phase B: pointer
    // chase over a graph that *also* fits the L2 (so A's lines survive B
    // parked in place, silently absorbing B's concealed reads). Both
    // footprints exceed the 32 KB L1, so every access reaches the L2.
    let mut workload = Phased::new(vec![
        (
            phase_len,
            Box::new(StridedStream::new(0x1000_0000, 10_000, 1, data, 1)),
        ),
        (
            phase_len,
            Box::new(PointerChase::new(0x2000_0000, 5_000, data, 2)),
        ),
    ]);

    let p_rd = read_disturbance_probability(&MtjParams::default());
    let mut h = Hierarchy::new(HierarchyConfig::paper(), Replacement::Lru);
    let bits = h.l2().stored_line_bits() as u32;

    println!("alternating phases of {phase_len} accesses (A: matrix sweep, B: graph walk)");
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>14}",
        "phase", "L2 reads", "max N", "gain", "E[fail] conv"
    );
    for cycle in 0..4 {
        for (label, n) in [("A", phase_len), ("B", phase_len)] {
            let mut obs = ReliabilityObserver::new(AccumulationModel::sec(p_rd), bits);
            let before = h.l2().stats().reads;
            for a in workload.by_ref().take(n) {
                h.access(a, &mut obs);
            }
            let conv = obs.conventional().expected_failures();
            let reap = obs.reap().expected_failures();
            println!(
                "{:<8} {:>12} {:>12} {:>9.1}x {:>14.3e}",
                format!("{cycle}{label}"),
                h.l2().stats().reads - before,
                obs.histogram().max_n(),
                if reap > 0.0 { conv / reap } else { 1.0 },
                conv,
            );
        }
    }
    println!();
    println!(
        "Phase A's matrix lines sit idle through phase B while the graph walk \
         hammers their sets: each phase boundary returns with a burst of \
         large-N demand reads — visible as the max-N jumps in the A rows."
    );
    Ok(())
}
