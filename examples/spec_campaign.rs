//! A multi-workload campaign: Fig. 5 / Fig. 6 style sweep at example
//! scale, including the write-back-exposure extension metric the paper
//! does not model.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example spec_campaign
//! ```

use reap::core::{Experiment, ProtectionScheme};
use reap::trace::SpecWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accesses = 1_000_000;
    let picks = [
        SpecWorkload::Namd,
        SpecWorkload::DealII,
        SpecWorkload::H264ref,
        SpecWorkload::Perlbench,
        SpecWorkload::Mcf,
        SpecWorkload::Xalancbmk,
        SpecWorkload::CactusAdm,
    ];

    println!("{accesses} accesses per workload (seed 1)");
    println!();
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "workload", "L2 hit%", "max N", "gain", "energy", "wb exposure"
    );
    for w in picks {
        let report = Experiment::paper_hierarchy()
            .workload(w)
            .accesses(accesses)
            .seed(1)
            .run()?;
        println!(
            "{:<12} {:>9.1}% {:>10} {:>9.1}x {:>+11.2}% {:>14.3e}",
            w.name(),
            100.0 * report.l2_stats().hit_rate(),
            report.histogram().max_n(),
            report.mttf_improvement(ProtectionScheme::Reap),
            100.0 * report.energy_overhead(ProtectionScheme::Reap),
            report.writeback_exposure(),
        );
    }

    println!();
    println!(
        "wb exposure = unchecked failure probability carried out by dirty \
         write-backs, an accumulation channel even REAP's read path does not \
         see (REAP checks it at the write-back read; the conventional design \
         silently forwards it to memory)."
    );
    Ok(())
}
