#!/bin/bash
# Final-scale campaign driving every figure regenerator; outputs land in results/.
cd /root/repo
BIN=target/release
echo "start: $(date)" > results/campaign.log
REAP_ACCESSES=50000000 $BIN/fig5 > results/fig5.txt 2>/dev/null
echo "fig5 done: $(date)" >> results/campaign.log
REAP_ACCESSES=50000000 $BIN/fig3 > results/fig3.txt 2>/dev/null
echo "fig3 done: $(date)" >> results/campaign.log
REAP_ACCESSES=10000000 $BIN/fig6 > results/fig6.txt 2>/dev/null
echo "fig6 done: $(date)" >> results/campaign.log
$BIN/table1 > results/table1.txt 2>/dev/null
$BIN/fig1_disturbance > results/fig1_disturbance.txt 2>/dev/null
$BIN/numeric_example > results/numeric_example.txt 2>/dev/null
$BIN/overheads > results/overheads.txt 2>/dev/null
REAP_ACCESSES=2000000 $BIN/ablation_ecc > results/ablation_ecc.txt 2>/dev/null
REAP_ACCESSES=8000000 $BIN/ablation_assoc > results/ablation_assoc.txt 2>/dev/null
REAP_ACCESSES=8000000 $BIN/ablation_schemes > results/ablation_schemes.txt 2>/dev/null
REAP_ACCESSES=4000000 $BIN/ablation_replacement > results/ablation_replacement.txt 2>/dev/null
REAP_ACCESSES=2000000 $BIN/ablation_variation > results/ablation_variation.txt 2>/dev/null
REAP_ACCESSES=2000000 $BIN/ablation_temperature > results/ablation_temperature.txt 2>/dev/null
REAP_ACCESSES=4000000 $BIN/extension_scrub > results/extension_scrub.txt 2>/dev/null
REAP_ACCESSES=4000000 $BIN/extension_writeback > results/extension_writeback.txt 2>/dev/null
$BIN/montecarlo_check > results/montecarlo_check.txt 2>/dev/null
echo "all done: $(date)" >> results/campaign.log
