//! Property: every capture path the daemon can take — cold trace pass,
//! on-disk capture store, hot in-memory cache — yields bit-identical
//! sweep rows for the same `(mode, workload, accesses, seed)` point.
//!
//! Bit-identity is asserted through the checkpoint row codec
//! (`row_to_json` stores every `f64` as its IEEE-754 bit pattern), so
//! string equality is exactly bit equality.

use proptest::prelude::*;
use reap_core::capture_store::{CapturePolicy, CaptureStore};
use reap_core::checkpoint::row_to_json;
use reap_core::{SweepMode, SweepRow};
use reap_serve::{compute_rows, HotCaptureCache, JobSpec};
use reap_trace::SpecWorkload;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "reap-serve-prop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn any_mode() -> impl Strategy<Value = SweepMode> {
    prop_oneof![Just(SweepMode::Standard), Just(SweepMode::EccSweep)]
}

fn encode(rows: &[SweepRow]) -> String {
    rows.iter().map(row_to_json).collect::<Vec<_>>().join("\n")
}

proptest! {
    #[test]
    fn all_capture_paths_yield_bit_identical_rows(
        mode in any_mode(),
        workload_index in 0usize..SpecWorkload::ALL.len(),
        accesses in 500u64..2500,
        seed in 0u64..512,
    ) {
        let workload = SpecWorkload::ALL[workload_index];
        let spec = JobSpec {
            mode,
            accesses,
            seed,
            max_retries: None,
            deadline_ms: None,
        };

        // The reference: a cold capture, no store, no cache — exactly
        // what an offline `reap sweep` computes.
        let want = encode(&compute_rows(workload, &spec, None, None).unwrap());

        // On-disk store: first call populates, second call replays the
        // stored capture.
        let dir = scratch("store");
        let store = CaptureStore::new(&dir, CapturePolicy::ReadWrite);
        let populating = encode(&compute_rows(workload, &spec, None, Some(&store)).unwrap());
        let disk_hit = encode(&compute_rows(workload, &spec, None, Some(&store)).unwrap());

        // Hot cache: first call fills it (here via the disk store),
        // second call replays the resident capture with no store at all.
        let cache = HotCaptureCache::new(2);
        let cache_cold = encode(&compute_rows(workload, &spec, Some(&cache), Some(&store)).unwrap());
        let cache_hot = encode(&compute_rows(workload, &spec, Some(&cache), None).unwrap());
        prop_assert!(!cache.is_empty(), "capture must be resident after a miss");

        std::fs::remove_dir_all(&dir).ok();

        prop_assert_eq!(&populating, &want, "store-populating pass diverged");
        prop_assert_eq!(&disk_hit, &want, "disk-store hit diverged");
        prop_assert_eq!(&cache_cold, &want, "cache-filling pass diverged");
        prop_assert_eq!(&cache_hot, &want, "hot-cache hit diverged");
    }
}
