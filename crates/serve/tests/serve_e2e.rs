//! End-to-end daemon tests: a real `serve()` loop on a scratch socket,
//! driven by real clients. Job durations are made deterministic with
//! `reap-fault` delay injection (each workload sleeps a fixed injected
//! delay), so "interrupt mid-job" tests do not race the simulator.

use reap_core::checkpoint::row_to_json;
use reap_core::{SupervisorConfig, SweepMode, SweepRow};
use reap_fault::FaultPlan;
use reap_serve::protocol::{Request, Response};
use reap_serve::{
    compute_rows, request_one, serve, submit, ClientConfig, JobSpec, ServeConfig, SubmitOutcome,
};
use reap_trace::SpecWorkload;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "reap-serve-e2e-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A workload-boundary pacer: every supervised attempt sleeps `ms`, so a
/// 21-workload job takes at least `21 * ms` and an interrupt always
/// lands mid-job.
fn pacer(ms: u64) -> FaultPlan {
    FaultPlan {
        delay_rate: 1.0,
        delay: Duration::from_millis(ms),
        ..FaultPlan::default()
    }
}

struct TestServer {
    socket: PathBuf,
    state_dir: PathBuf,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn start(config: ServeConfig) -> Self {
        let socket = config.socket.clone();
        let state_dir = config.state_dir.clone();
        let thread = std::thread::spawn(move || serve(config));
        for _ in 0..500 {
            if UnixStream::connect(&socket).is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Self {
            socket,
            state_dir,
            thread,
        }
    }

    fn client(&self) -> ClientConfig {
        ClientConfig {
            attempts: 40,
            io_timeout: Duration::from_secs(60),
            retry_pause: Duration::from_millis(30),
            ..ClientConfig::new(&self.socket)
        }
    }

    /// Requests a drain over the protocol and joins the accept loop.
    /// Retries the request: under chaos plans the shutdown connection
    /// itself can be refused or stalled.
    fn shutdown(self) {
        let client = ClientConfig {
            io_timeout: Duration::from_secs(5),
            ..ClientConfig::new(&self.socket)
        };
        for _ in 0..30 {
            if request_one(&client, &Request::Shutdown).is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        self.thread
            .join()
            .expect("server thread panicked")
            .expect("serve() failed");
    }
}

/// A raw protocol connection, for tests that need response-by-response
/// control (the retrying [`submit`] client hides busy/interrupted).
struct Raw {
    stream: UnixStream,
    buf: Vec<u8>,
}

impl Raw {
    fn connect(socket: &Path) -> Self {
        let stream = UnixStream::connect(socket).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, request: &Request) {
        let mut line = request.to_line();
        line.push('\n');
        self.stream.write_all(line.as_bytes()).expect("send");
    }

    fn next(&mut self) -> Response {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                return Response::parse(&line).expect("parse response");
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read");
            assert!(n > 0, "server closed mid-stream");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn spec(mode: SweepMode, accesses: u64, seed: u64) -> JobSpec {
    JobSpec {
        mode,
        accesses,
        seed,
        max_retries: None,
        deadline_ms: None,
    }
}

/// The offline expectation: the exact rows `reap sweep` would print.
fn offline(spec: &JobSpec) -> Vec<(String, Vec<SweepRow>)> {
    SpecWorkload::ALL
        .iter()
        .map(|w| {
            (
                w.name().to_owned(),
                compute_rows(*w, spec, None, None).expect("offline rows"),
            )
        })
        .collect()
}

fn encode(rows: &[(String, Vec<SweepRow>)]) -> String {
    rows.iter()
        .map(|(key, rows)| {
            let rows: Vec<String> = rows.iter().map(row_to_json).collect();
            format!("{key}:{}", rows.join(","))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_bit_identical(outcome: &SubmitOutcome, want: &[(String, Vec<SweepRow>)]) {
    assert!(outcome.failed.is_empty(), "failures: {:?}", outcome.failed);
    assert!(!outcome.interrupted, "gave up interrupted");
    assert_eq!(outcome.rows.len(), SpecWorkload::ALL.len());
    assert_eq!(
        encode(&outcome.rows),
        encode(want),
        "rows not bit-identical"
    );
}

#[test]
fn concurrent_clients_get_bit_identical_rows() {
    let mut config = ServeConfig::new(scratch("happy.sock"), scratch("happy-state"));
    config.parallelism = 2;
    config.max_active = 2;
    config.queue_depth = 4;
    let server = TestServer::start(config);

    let specs = [
        spec(SweepMode::Standard, 2000, 1),
        spec(SweepMode::Standard, 2000, 2),
        spec(SweepMode::EccSweep, 2000, 3),
    ];
    let expected: Vec<_> = specs.iter().map(offline).collect();

    let mut clients = Vec::new();
    for s in specs {
        let client = server.client();
        clients.push(std::thread::spawn(move || submit(&client, &s)));
    }
    for (handle, want) in clients.into_iter().zip(&expected) {
        let outcome = handle.join().unwrap().expect("submit");
        assert_bit_identical(&outcome, want);
        assert_eq!(outcome.resumed, 0, "nothing to resume on a fresh daemon");
    }

    // The daemon is idle again and answers status.
    let status = request_one(&server.client(), &Request::Status).expect("status");
    let Response::Status {
        active,
        queued,
        draining,
    } = status
    else {
        panic!("expected status, got {status:?}");
    };
    assert_eq!((active, queued, draining), (0, 0, false));

    // Clean completions delete their journals.
    let journals: Vec<_> = std::fs::read_dir(&server.state_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(journals.is_empty(), "leftover journals: {journals:?}");
    server.shutdown();
}

#[test]
fn saturated_daemon_sheds_with_busy_and_cancel_interrupts() {
    let mut config = ServeConfig::new(scratch("busy.sock"), scratch("busy-state"));
    config.max_active = 1;
    config.queue_depth = 2;
    config.supervisor = SupervisorConfig {
        fault_plan: Some(pacer(100)),
        ..SupervisorConfig::default()
    };
    let server = TestServer::start(config);

    let slow = spec(SweepMode::Standard, 2000, 7);
    let mut submitter = Raw::connect(&server.socket);
    submitter.send(&Request::Submit(slow));
    let Response::Accepted { job } = submitter.next() else {
        panic!("expected accepted");
    };
    assert_eq!(job, slow.id());

    // An identical concurrent submission is shed: two runners appending
    // one journal would corrupt it.
    let mut twin = Raw::connect(&server.socket);
    twin.send(&Request::Submit(slow));
    let Response::Busy { retry_after_ms, .. } = twin.next() else {
        panic!("expected busy for a duplicate submission");
    };
    assert_eq!(retry_after_ms, 250);

    // Cancel from a third connection; the submitter's stream ends in a
    // resumable interrupt.
    let mut canceller = Raw::connect(&server.socket);
    canceller.send(&Request::Cancel { job: job.clone() });
    assert_eq!(canceller.next(), Response::Cancelled { job: job.clone() });
    loop {
        let response = submitter.next();
        if response.is_terminal() {
            assert_eq!(
                response,
                Response::Interrupted {
                    job,
                    resumable: true
                }
            );
            break;
        }
    }
    assert!(
        slow.journal_path(&server.state_dir).exists(),
        "cancelled job keeps its journal"
    );
    server.shutdown();
}

#[test]
fn drain_then_restart_serves_journaled_rows_bit_identically() {
    let job_spec = spec(SweepMode::Standard, 2000, 9);
    let want = offline(&job_spec);
    let state_dir = scratch("drain-state");

    // First daemon: paced so the drain lands mid-job.
    let mut config = ServeConfig::new(scratch("drain-a.sock"), &state_dir);
    config.parallelism = 1;
    config.max_active = 1;
    config.supervisor = SupervisorConfig {
        fault_plan: Some(pacer(80)),
        ..SupervisorConfig::default()
    };
    let server = TestServer::start(config);

    let mut submitter = Raw::connect(&server.socket);
    submitter.send(&Request::Submit(job_spec));
    let Response::Accepted { .. } = submitter.next() else {
        panic!("expected accepted");
    };
    let mut streamed_before_drain = 0u64;
    while streamed_before_drain < 2 {
        if let Response::Row { .. } = submitter.next() {
            streamed_before_drain += 1;
        }
    }
    // Drain mid-job (the protocol path; CI's smoke covers real SIGTERM).
    let _ = request_one(&server.client(), &Request::Shutdown);
    loop {
        let response = submitter.next();
        if response.is_terminal() {
            assert_eq!(
                response,
                Response::Interrupted {
                    job: job_spec.id(),
                    resumable: true
                }
            );
            break;
        }
        streamed_before_drain += u64::from(matches!(response, Response::Row { .. }));
    }
    server.thread.join().unwrap().expect("serve() failed");
    assert!(
        job_spec.journal_path(&state_dir).exists(),
        "drained job keeps its journal"
    );
    assert!(
        streamed_before_drain < SpecWorkload::ALL.len() as u64,
        "drain landed after the job finished; pacer too fast"
    );

    // Second daemon, same state dir: resumes the journal, completes the
    // remainder, and the assembled rows are bit-identical to offline.
    let config = ServeConfig::new(scratch("drain-b.sock"), &state_dir);
    let server = TestServer::start(config);
    let outcome = submit(&server.client(), &job_spec).expect("resumed submit");
    assert!(
        outcome.resumed >= streamed_before_drain,
        "journal held at least the streamed rows ({} < {streamed_before_drain})",
        outcome.resumed
    );
    assert_bit_identical(&outcome, &want);
    assert!(
        !job_spec.journal_path(&state_dir).exists(),
        "clean completion deletes the journal"
    );
    server.shutdown();
}

#[test]
fn client_disconnect_cancels_its_job() {
    let mut config = ServeConfig::new(scratch("gone.sock"), scratch("gone-state"));
    config.max_active = 1;
    config.supervisor = SupervisorConfig {
        fault_plan: Some(pacer(80)),
        ..SupervisorConfig::default()
    };
    let server = TestServer::start(config);

    let job_spec = spec(SweepMode::Standard, 2000, 11);
    {
        let mut submitter = Raw::connect(&server.socket);
        submitter.send(&Request::Submit(job_spec));
        let Response::Accepted { .. } = submitter.next() else {
            panic!("expected accepted");
        };
        let Response::Row { .. } = submitter.next() else {
            panic!("expected a row");
        };
        // Hang up mid-stream.
    }
    // The daemon notices, cancels the job, and goes idle again.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let response = request_one(&server.client(), &Request::Status).expect("status");
        if let Response::Status {
            active: 0,
            queued: 0,
            ..
        } = response
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job still running long after its client vanished"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        job_spec.journal_path(&server.state_dir).exists(),
        "disconnect-cancelled job keeps its journal for resubmission"
    );
    server.shutdown();
}

#[test]
fn chaos_connections_still_converge_bit_identically() {
    let plan: FaultPlan = "seed=11,refuse=0.35,drop=0.25,stall-ms=10"
        .parse()
        .expect("chaos plan");
    let mut config = ServeConfig::new(scratch("chaos.sock"), scratch("chaos-state"));
    config.parallelism = 2;
    config.max_active = 1;
    config.queue_depth = 2;
    config.supervisor = SupervisorConfig {
        fault_plan: Some(plan),
        ..SupervisorConfig::default()
    };
    let server = TestServer::start(config);

    let job_spec = spec(SweepMode::EccSweep, 1500, 5);
    let want = offline(&job_spec);
    let outcome = submit(&server.client(), &job_spec).expect("chaos submit");
    assert_bit_identical(&outcome, &want);
    assert!(
        outcome.attempts >= 1,
        "attempts is at least the final one: {}",
        outcome.attempts
    );
    server.shutdown();
}
