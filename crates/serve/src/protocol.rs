//! The `reap serve` wire protocol: newline-delimited JSON both ways.
//!
//! A client writes one request object per line; the server answers with
//! a stream of response objects, one per line, ending in a terminal
//! record (`done`, `interrupted`, `busy`, `cancelled`, or `error`).
//! Result rows reuse the `reap-checkpoint/1` row codec
//! ([`reap_core::checkpoint::row_to_json`]): every `f64` travels as its
//! IEEE-754 bit pattern in hex, so a row is bit-identical no matter
//! whether it was computed fresh, replayed from a journal, or served
//! across a restart.
//!
//! The full grammar, the job lifecycle state machine and the load-shed
//! policy are documented in DESIGN.md §12.

use crate::jobs::JobSpec;
use reap_core::checkpoint::{row_from_json, row_to_json};
use reap_core::{SweepMode, SweepRow};
use reap_obs::json;
use std::fmt;

/// A malformed request or response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// What was wrong with the line.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn perr(message: impl Into<String>) -> ProtocolError {
    ProtocolError {
        message: message.into(),
    }
}

/// One client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a sweep job and stream its rows back.
    Submit(JobSpec),
    /// Cancel a running or queued job by id (from any connection).
    Cancel {
        /// The job id echoed by the `accepted` response.
        job: String,
    },
    /// Ask for a one-line load summary.
    Status,
    /// Ask for the daemon's full telemetry snapshot as `reap-obs/2`
    /// JSONL (the response is the raw export, then EOF).
    Metrics,
    /// Begin a graceful drain, exactly as SIGTERM would.
    Shutdown,
}

impl Request {
    /// Serializes the request as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit(spec) => {
                let mut line = format!(
                    "{{\"type\":\"submit\",\"mode\":\"{}\",\"accesses\":{},\"seed\":{}",
                    spec.mode.tag(),
                    spec.accesses,
                    spec.seed
                );
                if let Some(r) = spec.max_retries {
                    line.push_str(&format!(",\"max_retries\":{r}"));
                }
                if let Some(d) = spec.deadline_ms {
                    line.push_str(&format!(",\"deadline_ms\":{d}"));
                }
                line.push('}');
                line
            }
            Request::Cancel { job } => {
                format!("{{\"type\":\"cancel\",\"job\":\"{}\"}}", json::escape(job))
            }
            Request::Status => "{\"type\":\"status\"}".to_owned(),
            Request::Metrics => "{\"type\":\"metrics\"}".to_owned(),
            Request::Shutdown => "{\"type\":\"shutdown\"}".to_owned(),
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] naming the malformed or missing field.
    pub fn parse(line: &str) -> Result<Self, ProtocolError> {
        let v = json::parse(line).map_err(|e| perr(format!("invalid JSON: {e}")))?;
        let kind = v
            .get("type")
            .and_then(json::Value::as_str)
            .ok_or_else(|| perr("request has no \"type\""))?;
        match kind {
            "submit" => {
                let mode = match v.get("mode").and_then(json::Value::as_str) {
                    Some("standard") => SweepMode::Standard,
                    Some("ecc-sweep") => SweepMode::EccSweep,
                    Some(other) => return Err(perr(format!("unknown mode \"{other}\""))),
                    None => return Err(perr("submit has no \"mode\"")),
                };
                let num = |key: &str| {
                    v.get(key)
                        .and_then(json::Value::as_f64)
                        .map(|n| n as u64)
                        .ok_or_else(|| perr(format!("submit has no numeric \"{key}\"")))
                };
                Ok(Request::Submit(JobSpec {
                    mode,
                    accesses: num("accesses")?,
                    seed: num("seed")?,
                    max_retries: v
                        .get("max_retries")
                        .and_then(json::Value::as_f64)
                        .map(|n| n as u32),
                    deadline_ms: v
                        .get("deadline_ms")
                        .and_then(json::Value::as_f64)
                        .map(|n| n as u64),
                }))
            }
            "cancel" => Ok(Request::Cancel {
                job: v
                    .get("job")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| perr("cancel has no \"job\""))?
                    .to_owned(),
            }),
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(perr(format!("unknown request type \"{other}\""))),
        }
    }
}

/// One server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was admitted; rows will stream on this connection.
    Accepted {
        /// Job id (the job's checkpoint fingerprint, 16 hex digits).
        job: String,
    },
    /// The daemon is saturated (or draining); try again later.
    Busy {
        /// Suggested client wait before resubmitting, in milliseconds.
        retry_after_ms: u64,
        /// Jobs currently running.
        active: u64,
        /// Jobs currently queued.
        queued: u64,
        /// Whether the rejection is due to a drain in progress.
        draining: bool,
    },
    /// One workload's completed rows.
    Row {
        /// Canonical workload index (position in `SpecWorkload::ALL`).
        index: u64,
        /// Workload name.
        key: String,
        /// Whether the rows came from the job journal (resume) rather
        /// than being computed by this run.
        resumed: bool,
        /// The rows, in checkpoint row encoding.
        rows: Vec<SweepRow>,
    },
    /// One workload failed (after retries); the job continues.
    Failed {
        /// Canonical workload index.
        index: u64,
        /// Workload name.
        key: String,
        /// The failure, rendered as text.
        error: String,
    },
    /// Terminal: every workload either produced rows or failed.
    Done {
        /// Job id.
        job: String,
        /// Workloads that produced rows.
        ok: u64,
        /// Workloads that failed.
        failed: u64,
        /// Rows served from the journal instead of recomputed.
        resumed: u64,
    },
    /// Terminal: the job stopped early (drain, cancel, disconnect).
    Interrupted {
        /// Job id.
        job: String,
        /// Whether a resubmission can resume from a journal.
        resumable: bool,
    },
    /// Terminal (for a `cancel` request): the target was cancelled.
    Cancelled {
        /// Job id.
        job: String,
    },
    /// One-line load summary (reply to `status`).
    Status {
        /// Jobs currently running.
        active: u64,
        /// Jobs currently queued.
        queued: u64,
        /// Whether a drain is in progress.
        draining: bool,
    },
    /// Terminal: the request was malformed or the job id unknown.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Whether this record ends a submit stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Response::Done { .. }
                | Response::Interrupted { .. }
                | Response::Busy { .. }
                | Response::Cancelled { .. }
                | Response::Error { .. }
        )
    }

    /// Serializes the response as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Accepted { job } => {
                format!("{{\"type\":\"accepted\",\"job\":\"{}\"}}", json::escape(job))
            }
            Response::Busy {
                retry_after_ms,
                active,
                queued,
                draining,
            } => format!(
                "{{\"type\":\"busy\",\"retry_after_ms\":{retry_after_ms},\"active\":{active},\"queued\":{queued},\"draining\":{draining}}}"
            ),
            Response::Row {
                index,
                key,
                resumed,
                rows,
            } => {
                let rows: Vec<String> = rows.iter().map(row_to_json).collect();
                format!(
                    "{{\"type\":\"row\",\"index\":{index},\"key\":\"{}\",\"resumed\":{resumed},\"rows\":[{}]}}",
                    json::escape(key),
                    rows.join(",")
                )
            }
            Response::Failed { index, key, error } => format!(
                "{{\"type\":\"failed\",\"index\":{index},\"key\":\"{}\",\"error\":\"{}\"}}",
                json::escape(key),
                json::escape(error)
            ),
            Response::Done {
                job,
                ok,
                failed,
                resumed,
            } => format!(
                "{{\"type\":\"done\",\"job\":\"{}\",\"ok\":{ok},\"failed\":{failed},\"resumed\":{resumed}}}",
                json::escape(job)
            ),
            Response::Interrupted { job, resumable } => format!(
                "{{\"type\":\"interrupted\",\"job\":\"{}\",\"resumable\":{resumable}}}",
                json::escape(job)
            ),
            Response::Cancelled { job } => format!(
                "{{\"type\":\"cancelled\",\"job\":\"{}\"}}",
                json::escape(job)
            ),
            Response::Status {
                active,
                queued,
                draining,
            } => format!(
                "{{\"type\":\"status\",\"active\":{active},\"queued\":{queued},\"draining\":{draining}}}"
            ),
            Response::Error { message } => format!(
                "{{\"type\":\"error\",\"message\":\"{}\"}}",
                json::escape(message)
            ),
        }
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] naming the malformed or missing field.
    pub fn parse(line: &str) -> Result<Self, ProtocolError> {
        let v = json::parse(line).map_err(|e| perr(format!("invalid JSON: {e}")))?;
        let kind = v
            .get("type")
            .and_then(json::Value::as_str)
            .ok_or_else(|| perr("response has no \"type\""))?;
        let num = |key: &str| {
            v.get(key)
                .and_then(json::Value::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| perr(format!("\"{kind}\" has no numeric \"{key}\"")))
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(json::Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| perr(format!("\"{kind}\" has no \"{key}\"")))
        };
        let flag = |key: &str| match v.get(key) {
            Some(json::Value::Bool(b)) => Ok(*b),
            _ => Err(perr(format!("\"{kind}\" has no boolean \"{key}\""))),
        };
        match kind {
            "accepted" => Ok(Response::Accepted { job: text("job")? }),
            "busy" => Ok(Response::Busy {
                retry_after_ms: num("retry_after_ms")?,
                active: num("active")?,
                queued: num("queued")?,
                draining: flag("draining")?,
            }),
            "row" => {
                let json::Value::Arr(rows) = v
                    .get("rows")
                    .ok_or_else(|| perr("\"row\" has no \"rows\""))?
                else {
                    return Err(perr("\"rows\" is not an array"));
                };
                Ok(Response::Row {
                    index: num("index")?,
                    key: text("key")?,
                    resumed: flag("resumed")?,
                    rows: rows
                        .iter()
                        .map(|r| row_from_json(r).map_err(perr))
                        .collect::<Result<Vec<_>, _>>()?,
                })
            }
            "failed" => Ok(Response::Failed {
                index: num("index")?,
                key: text("key")?,
                error: text("error")?,
            }),
            "done" => Ok(Response::Done {
                job: text("job")?,
                ok: num("ok")?,
                failed: num("failed")?,
                resumed: num("resumed")?,
            }),
            "interrupted" => Ok(Response::Interrupted {
                job: text("job")?,
                resumable: flag("resumable")?,
            }),
            "cancelled" => Ok(Response::Cancelled { job: text("job")? }),
            "status" => Ok(Response::Status {
                active: num("active")?,
                queued: num("queued")?,
                draining: flag("draining")?,
            }),
            "error" => Ok(Response::Error {
                message: text("message")?,
            }),
            other => Err(perr(format!("unknown response type \"{other}\""))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_core::EccStrength;

    fn spec() -> JobSpec {
        JobSpec {
            mode: SweepMode::EccSweep,
            accesses: 5000,
            seed: 7,
            max_retries: Some(3),
            deadline_ms: Some(30_000),
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Submit(spec()),
            Request::Submit(JobSpec {
                max_retries: None,
                deadline_ms: None,
                mode: SweepMode::Standard,
                ..spec()
            }),
            Request::Cancel {
                job: "00ff00ff00ff00ff".into(),
            },
            Request::Status,
            Request::Metrics,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_line();
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let row = SweepRow {
            ecc: Some(EccStrength::Dec),
            mttf_gain: 123.456_789,
            energy_overhead: -0.0,
            l2_hit_rate: f64::MIN_POSITIVE,
            efail_conv: 3.2e-17,
            max_n: u64::from(u32::MAX),
        };
        let responses = [
            Response::Accepted { job: "ab12".into() },
            Response::Busy {
                retry_after_ms: 250,
                active: 2,
                queued: 4,
                draining: false,
            },
            Response::Row {
                index: 3,
                key: "hmmer".into(),
                resumed: true,
                rows: vec![row, row],
            },
            Response::Failed {
                index: 9,
                key: "mcf".into(),
                error: "worker panicked: \"quoted\"".into(),
            },
            Response::Done {
                job: "ab12".into(),
                ok: 20,
                failed: 1,
                resumed: 7,
            },
            Response::Interrupted {
                job: "ab12".into(),
                resumable: true,
            },
            Response::Cancelled { job: "ab12".into() },
            Response::Status {
                active: 1,
                queued: 0,
                draining: true,
            },
            Response::Error {
                message: "unknown request".into(),
            },
        ];
        for response in responses {
            let line = response.to_line();
            let parsed = Response::parse(&line).unwrap();
            assert_eq!(parsed, response, "{line}");
            if let Response::Row { rows, .. } = &parsed {
                for (got, want) in rows.iter().zip([row, row]) {
                    assert_eq!(got.mttf_gain.to_bits(), want.mttf_gain.to_bits());
                    assert_eq!(got.efail_conv.to_bits(), want.efail_conv.to_bits());
                }
            }
        }
    }

    #[test]
    fn terminal_classification() {
        assert!(Response::Done {
            job: String::new(),
            ok: 0,
            failed: 0,
            resumed: 0
        }
        .is_terminal());
        assert!(Response::Busy {
            retry_after_ms: 0,
            active: 0,
            queued: 0,
            draining: false
        }
        .is_terminal());
        assert!(!Response::Accepted { job: String::new() }.is_terminal());
        assert!(!Response::Row {
            index: 0,
            key: String::new(),
            resumed: false,
            rows: vec![]
        }
        .is_terminal());
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"type\":\"frob\"}").is_err());
        assert!(Request::parse("{\"type\":\"submit\",\"mode\":\"bogus\"}").is_err());
        assert!(Request::parse("{\"type\":\"submit\",\"mode\":\"standard\"}").is_err());
        assert!(Response::parse("{\"type\":\"row\",\"index\":0}").is_err());
        assert!(Response::parse("{\"no_type\":1}").is_err());
    }
}
