//! Minimal async-signal-safe SIGTERM/SIGINT handling.
//!
//! The workspace forbids `unsafe` everywhere else; this module is the
//! one exception, confined to registering a handler that does the only
//! thing an async-signal-safe handler may do: store to an atomic flag.
//! The accept loop polls [`shutdown_requested`] between non-blocking
//! accepts, so no signal-interruptible blocking call is relied upon
//! (glibc installs handlers with `SA_RESTART`, which would otherwise
//! swallow the `EINTR` a blocking `accept` wait depends on).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// Whether a shutdown signal has been delivered (or injected via
/// [`request_shutdown`]) since the last [`reset`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the shutdown flag from safe code — the `shutdown` protocol
/// request and tests share the signal path this way.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the shutdown flag (a restarted in-process server must not see
/// the previous drain's signal).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[allow(unsafe_code)]
mod install {
    use std::sync::atomic::Ordering;

    // Declared by hand: the build environment vendors no `libc` crate.
    // `signal(2)` is in every libc the workspace targets.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe action: a store to an atomic.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Routes SIGTERM and SIGINT to the shutdown flag.
    pub fn install_shutdown_handler() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` replaces the process disposition for the two
        // shutdown signals with a handler that only stores to an atomic,
        // which is async-signal-safe. No Rust state is touched.
        unsafe {
            signal(super::SIGTERM, handler);
            signal(super::SIGINT, handler);
        }
    }
}

pub use install::install_shutdown_handler;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }
}
