//! The daemon: accept loop, admission control, runner pool, drain.
//!
//! One thread owns the non-blocking listener and polls the shutdown
//! flag between accepts (signal handlers only store to an atomic — see
//! [`crate::signal`]). Accepted connections each get a thread that reads
//! exactly one request and answers it; `submit` streams rows until a
//! terminal record. Jobs flow through a bounded queue into a fixed pool
//! of runner threads, each of which fans its job's workloads out through
//! [`reap_core::pool_map_supervised`] — so panic isolation, retries with
//! (jittered) backoff, deadlines and fault injection all apply inside
//! the daemon exactly as they do offline.
//!
//! Crash safety: every completed workload is appended (and flushed) to
//! the job's `reap-checkpoint/1` journal before its row is streamed, so
//! the journal is never behind what a client saw. A drain (SIGTERM,
//! SIGINT or a `shutdown` request) stops admissions, interrupts jobs at
//! the next workload boundary, and leaves the journals in place; a
//! restarted daemon serves journaled rows byte-identically and computes
//! only the remainder.

use crate::cache::{bump, HotCaptureCache};
use crate::jobs::{compute_rows, JobSpec};
use crate::protocol::{Request, Response};
use crate::signal;
use reap_core::checkpoint::{self, CheckpointWriter};
use reap_core::{pool_map_supervised, CaptureStore, JobError, SupervisorConfig};
use reap_fault::ConnectionFault;
use reap_trace::SpecWorkload;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::Shutdown;
use std::ops::ControlFlow;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending; also
/// bounds how stale the shutdown-flag check can get.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Socket read timeout: the granularity at which blocked reads recheck
/// the shutdown flag and streaming loops poll for client disconnects.
const READ_POLL: Duration = Duration::from_millis(50);

/// How often the accept loop re-sweeps the state directory for
/// abandoned journals (also swept once at startup).
const JOURNAL_GC_INTERVAL: Duration = Duration::from_secs(60);

/// Everything the daemon needs to run. Build one with
/// [`ServeConfig::new`] and adjust fields before calling [`serve`].
#[derive(Debug)]
pub struct ServeConfig {
    /// The Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Directory for per-job journals (created if absent).
    pub state_dir: PathBuf,
    /// Worker threads per job (the supervised pool's parallelism).
    pub parallelism: usize,
    /// Jobs run concurrently (runner threads).
    pub max_active: usize,
    /// Jobs admitted beyond the active ones; a full queue answers `busy`.
    pub queue_depth: usize,
    /// Hot capture cache capacity (entries; 0 disables the cache).
    pub cache_entries: usize,
    /// The wait hint a `busy` response carries, in milliseconds.
    pub retry_after_ms: u64,
    /// Supervision policy for job workloads (retries, backoff, deadline,
    /// fault plan). The fault plan's connection fields drive the
    /// accept-path injection too.
    pub supervisor: SupervisorConfig,
    /// Optional on-disk capture store shared with offline sweeps.
    pub store: Option<CaptureStore>,
    /// Age after which an abandoned job journal (interrupted or failed,
    /// never resubmitted) is collected from the state directory. `None`
    /// disables the sweep. Journals of queued or active jobs are never
    /// collected, whatever their age.
    pub journal_gc_age: Option<Duration>,
}

impl ServeConfig {
    /// A small-footprint default: 2 concurrent jobs of 4 workers each,
    /// a queue of 4, an 8-entry hot cache, 250 ms retry hints.
    pub fn new(socket: impl Into<PathBuf>, state_dir: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            state_dir: state_dir.into(),
            parallelism: 4,
            max_active: 2,
            queue_depth: 4,
            cache_entries: 8,
            retry_after_ms: 250,
            supervisor: SupervisorConfig::default(),
            store: None,
            journal_gc_age: Some(Duration::from_secs(7 * 24 * 3600)),
        }
    }
}

/// One admitted job: the runner computes, the connection thread streams.
struct JobHandle {
    id: String,
    spec: JobSpec,
    cancelled: AtomicBool,
    /// The submitting connection's response channel. Behind a `Mutex`
    /// only to make the handle `Sync`; contention is two threads.
    tx: Mutex<mpsc::Sender<Response>>,
}

impl JobHandle {
    fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Sends one response to the submitter; a gone receiver (client
    /// disconnected, stream dropped) cancels the job instead of erroring.
    fn send(&self, response: Response) {
        let tx = self.tx.lock().expect("job sender poisoned");
        if tx.send(response).is_err() {
            self.cancel();
        }
    }
}

struct ServerState {
    config: ServeConfig,
    cache: Arc<HotCaptureCache>,
    queue: Mutex<VecDeque<Arc<JobHandle>>>,
    queue_ready: Condvar,
    /// Queued *and* running jobs, by id — the cancel path and the
    /// duplicate-submission check look here.
    jobs: Mutex<HashMap<String, Arc<JobHandle>>>,
    active: AtomicU64,
    /// Local drain flag (protocol `shutdown`); ORed with the process
    /// signal flag so in-process servers (tests) drain independently.
    draining: AtomicBool,
}

impl ServerState {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    fn status(&self) -> Response {
        Response::Status {
            active: self.active.load(Ordering::SeqCst),
            queued: self.queue.lock().expect("queue poisoned").len() as u64,
            draining: self.draining(),
        }
    }
}

/// Runs the daemon until a shutdown signal or `shutdown` request, then
/// drains: stops admissions, interrupts in-flight jobs at the next
/// workload boundary (journals intact), flushes queued jobs with
/// `interrupted` responses, and removes the socket.
///
/// # Errors
///
/// Returns an error when the socket cannot be bound (including when
/// another daemon already serves on it), the state directory cannot be
/// created, or the listener fails unrecoverably.
pub fn serve(config: ServeConfig) -> io::Result<()> {
    std::fs::create_dir_all(&config.state_dir)?;
    if config.socket.exists() {
        if UnixStream::connect(&config.socket).is_ok() {
            return Err(io::Error::new(
                ErrorKind::AddrInUse,
                format!("another daemon is serving on {}", config.socket.display()),
            ));
        }
        // Stale socket from a crashed daemon: nobody answers, reclaim it.
        std::fs::remove_file(&config.socket)?;
    }
    let listener = UnixListener::bind(&config.socket)?;
    listener.set_nonblocking(true)?;
    signal::install_shutdown_handler();

    let cache = Arc::new(HotCaptureCache::new(config.cache_entries));
    let state = Arc::new(ServerState {
        config,
        cache,
        queue: Mutex::new(VecDeque::new()),
        queue_ready: Condvar::new(),
        jobs: Mutex::new(HashMap::new()),
        active: AtomicU64::new(0),
        draining: AtomicBool::new(false),
    });

    let mut runners = Vec::new();
    for _ in 0..state.config.max_active.max(1) {
        let state = Arc::clone(&state);
        runners.push(std::thread::spawn(move || runner_loop(&state)));
    }

    // Collect journals abandoned before this daemon's lifetime, then
    // re-sweep periodically so a long-lived daemon stays tidy.
    sweep_stale_journals(&state);
    let mut last_gc = std::time::Instant::now();

    let plan = state.config.supervisor.fault_plan;
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut conn_serial: u64 = 0;
    let result = loop {
        if state.draining() {
            break Ok(());
        }
        if last_gc.elapsed() >= JOURNAL_GC_INTERVAL {
            sweep_stale_journals(&state);
            last_gc = std::time::Instant::now();
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                conn_serial += 1;
                let fault =
                    plan.map_or(ConnectionFault::None, |p| p.decide_connection(conn_serial));
                if matches!(fault, ConnectionFault::Refuse) {
                    bump("serve.conn.refused");
                    // Closing without a byte looks like a refused/reset
                    // connection to the client.
                    drop(stream);
                    continue;
                }
                bump("serve.conn.accepted");
                let state = Arc::clone(&state);
                connections.push(std::thread::spawn(move || {
                    handle_connection(&state, stream, conn_serial, fault);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => break Err(e),
        }
        // Reap finished connection threads so a long-lived daemon does
        // not accumulate handles.
        connections = connections
            .into_iter()
            .filter_map(|h| {
                if h.is_finished() {
                    let _ = h.join();
                    None
                } else {
                    Some(h)
                }
            })
            .collect();
    };

    // Drain. Admissions have stopped (the local flag gates them); flush
    // every queued job, then let runners finish their boundary and exit.
    state.draining.store(true, Ordering::SeqCst);
    let flushed: Vec<Arc<JobHandle>> = {
        let mut queue = state.queue.lock().expect("queue poisoned");
        queue.drain(..).collect()
    };
    for handle in flushed {
        handle.cancel();
        let resumable = handle.spec.journal_path(&state.config.state_dir).exists();
        handle.send(Response::Interrupted {
            job: handle.id.clone(),
            resumable,
        });
        bump("serve.jobs.interrupted");
        state.jobs.lock().expect("jobs poisoned").remove(&handle.id);
    }
    state.queue_ready.notify_all();
    for runner in runners {
        let _ = runner.join();
    }
    for connection in connections {
        let _ = connection.join();
    }
    let _ = std::fs::remove_file(&state.config.socket);
    result
}

/// Collects abandoned job journals: any `job-<id>.jsonl` in the state
/// directory whose last modification is older than the configured age
/// and whose id is neither queued nor active. A live job's journal is
/// never touched, whatever its mtime — a queued job can legitimately
/// sit idle past any threshold. Journals the daemon keeps on purpose
/// (interrupted or partially failed jobs, awaiting resubmission) age
/// out here once nobody comes back for them.
fn sweep_stale_journals(state: &ServerState) {
    let Some(max_age) = state.config.journal_gc_age else {
        return;
    };
    let entries = match std::fs::read_dir(&state.config.state_dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    let live: HashSet<String> = state
        .jobs
        .lock()
        .expect("jobs poisoned")
        .keys()
        .cloned()
        .collect();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(id) = name
            .to_str()
            .and_then(|n| n.strip_prefix("job-"))
            .and_then(|n| n.strip_suffix(".jsonl"))
        else {
            continue;
        };
        if live.contains(id) {
            continue;
        }
        let age = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok());
        // An unreadable mtime (or one in the future) counts as fresh:
        // never collect a journal whose age is unknown.
        if age.is_some_and(|a| a >= max_age) && std::fs::remove_file(entry.path()).is_ok() {
            bump("serve.journals.collected");
        }
    }
}

/// One runner thread: pop, run, repeat until drain.
fn runner_loop(state: &Arc<ServerState>) {
    loop {
        let handle = {
            let mut queue = state.queue.lock().expect("queue poisoned");
            loop {
                if let Some(handle) = queue.pop_front() {
                    break Some(handle);
                }
                if state.draining() {
                    break None;
                }
                let (guard, _timeout) = state
                    .queue_ready
                    .wait_timeout(queue, READ_POLL)
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        let Some(handle) = handle else { return };
        if handle.is_cancelled() {
            // Cancelled while queued: never started, journal untouched.
            let resumable = handle.spec.journal_path(&state.config.state_dir).exists();
            handle.send(Response::Interrupted {
                job: handle.id.clone(),
                resumable,
            });
            bump("serve.jobs.interrupted");
        } else {
            state.active.fetch_add(1, Ordering::SeqCst);
            run_job(state, &handle);
            state.active.fetch_sub(1, Ordering::SeqCst);
        }
        state.jobs.lock().expect("jobs poisoned").remove(&handle.id);
    }
}

/// Runs one job to a terminal response: resume from the journal, fan the
/// remainder out under supervision, journal-then-stream each workload.
fn run_job(state: &Arc<ServerState>, handle: &Arc<JobHandle>) {
    let spec = handle.spec;
    let meta = spec.meta();
    let journal = spec.journal_path(&state.config.state_dir);

    // Resume: serve journaled rows first (bit-identical by the row
    // codec), then append new results to the same journal.
    let mut done: HashSet<String> = HashSet::new();
    let mut resumed = 0u64;
    let writer = if journal.exists() {
        match checkpoint::load(&journal) {
            Ok(loaded) if loaded.meta.fingerprint == meta.fingerprint => {
                if let Some(offset) = loaded.truncated_tail {
                    // Drop the crash-interrupted half line so appended
                    // records start on a fresh line.
                    let _ = reap_fault::truncate_file(&journal, offset as u64);
                }
                for (key, rows) in &loaded.completed {
                    let Some(index) = SpecWorkload::ALL.iter().position(|w| w.name() == key) else {
                        continue;
                    };
                    handle.send(Response::Row {
                        index: index as u64,
                        key: key.clone(),
                        resumed: true,
                        rows: rows.clone(),
                    });
                    done.insert(key.clone());
                    resumed += 1;
                    bump("serve.rows.resumed");
                }
                CheckpointWriter::append_to(&journal)
            }
            // Corrupt or foreign journal under our name: recompute from
            // scratch rather than serving rows we cannot trust.
            _ => CheckpointWriter::create(&journal, &meta),
        }
    } else {
        CheckpointWriter::create(&journal, &meta)
    };
    let mut writer = match writer {
        Ok(writer) => writer,
        Err(e) => {
            handle.send(Response::Error {
                message: e.to_string(),
            });
            return;
        }
    };

    let pending: Vec<(u64, SpecWorkload)> = SpecWorkload::ALL
        .iter()
        .enumerate()
        .filter(|(_, w)| !done.contains(w.name()))
        .map(|(i, w)| (i as u64, *w))
        .collect();
    if pending.is_empty() {
        // Remove the journal before answering: `done` is the client's
        // cue that clean completion has no journal left behind, so the
        // delete must not race a client that checks right away.
        let _ = std::fs::remove_file(&journal);
        handle.send(Response::Done {
            job: handle.id.clone(),
            ok: resumed,
            failed: 0,
            resumed,
        });
        bump("serve.jobs.completed");
        return;
    }

    // Per-job budget overrides ride on the daemon's supervision policy.
    let mut supervisor = state.config.supervisor;
    if let Some(retries) = spec.max_retries {
        supervisor.max_retries = retries;
    }
    if let Some(deadline_ms) = spec.deadline_ms {
        supervisor.deadline = Some(Duration::from_millis(deadline_ms));
    }

    let cache = Arc::clone(&state.cache);
    let store = state.config.store.clone();
    let keys: Vec<(u64, &'static str)> = pending.iter().map(|(i, w)| (*i, w.name())).collect();

    let mut ok = resumed;
    let mut failed = 0u64;
    let mut interrupted = false;
    let outcomes = pool_map_supervised(
        pending,
        state.config.parallelism.max(1),
        "serve.pool",
        &supervisor,
        move |(_, workload)| {
            compute_rows(workload, &spec, Some(&cache), store.as_ref()).map_err(|e| e.to_string())
        },
        |slot, outcome| {
            let (index, key) = keys[slot];
            match &outcome.result {
                Ok(Ok(rows)) => {
                    // Journal first, stream second: the journal is never
                    // behind what the client saw.
                    if let Err(e) = writer.record(key, rows) {
                        eprintln!("warning: {e}");
                    }
                    handle.send(Response::Row {
                        index,
                        key: key.to_owned(),
                        resumed: false,
                        rows: rows.clone(),
                    });
                    ok += 1;
                    bump("serve.rows.computed");
                }
                Ok(Err(error)) => {
                    handle.send(Response::Failed {
                        index,
                        key: key.to_owned(),
                        error: error.clone(),
                    });
                    failed += 1;
                }
                // Unclaimed jobs of an interrupted batch: the terminal
                // `interrupted` record covers them.
                Err(JobError::Cancelled) => {}
                Err(e) => {
                    handle.send(Response::Failed {
                        index,
                        key: key.to_owned(),
                        error: e.to_string(),
                    });
                    failed += 1;
                }
            }
            if handle.is_cancelled() || state.draining() {
                interrupted = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    );
    if outcomes
        .iter()
        .any(|o| matches!(o.result, Err(JobError::Cancelled)))
    {
        interrupted = true;
    }

    if interrupted {
        // Journal kept: a resubmission resumes from it.
        handle.send(Response::Interrupted {
            job: handle.id.clone(),
            resumable: true,
        });
        bump("serve.jobs.interrupted");
    } else {
        if failed == 0 {
            // Clean completion: the journal has served its purpose.
            // Remove it before answering so a client that checks the
            // state dir as soon as it reads `done` never races the
            // delete.
            let _ = std::fs::remove_file(&journal);
        }
        // With failures the journal stays: a resubmission resumes the
        // successes and retries only the failed workloads.
        handle.send(Response::Done {
            job: handle.id.clone(),
            ok,
            failed,
            resumed,
        });
        bump("serve.jobs.completed");
    }
}

/// Splits one `\n`-terminated line off the front of `buf`, if present.
fn next_line(buf: &mut Vec<u8>) -> Option<String> {
    let pos = buf.iter().position(|&b| b == b'\n')?;
    let line: Vec<u8> = buf.drain(..=pos).collect();
    Some(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned())
}

fn write_line(stream: &mut UnixStream, response: &Response) -> io::Result<()> {
    let mut line = response.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Reads one request line, rechecking the drain flag on every read
/// timeout. `None`: EOF, I/O failure, or drain.
fn read_request(stream: &mut UnixStream, buf: &mut Vec<u8>, state: &ServerState) -> Option<String> {
    loop {
        if let Some(line) = next_line(buf) {
            return Some(line);
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if state.draining() {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

/// What a mid-stream poll of the client socket found.
enum ClientPoll {
    Idle,
    Cancel,
    Closed,
}

/// Checks the submitting client for a disconnect or an inline `cancel`
/// while its job streams.
fn poll_client(stream: &mut UnixStream, buf: &mut Vec<u8>) -> ClientPoll {
    let mut chunk = [0u8; 256];
    match stream.read(&mut chunk) {
        Ok(0) => return ClientPoll::Closed,
        Ok(n) => buf.extend_from_slice(&chunk[..n]),
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            return ClientPoll::Idle
        }
        Err(e) if e.kind() == ErrorKind::Interrupted => return ClientPoll::Idle,
        Err(_) => return ClientPoll::Closed,
    }
    while let Some(line) = next_line(buf) {
        if matches!(Request::parse(&line), Ok(Request::Cancel { .. })) {
            return ClientPoll::Cancel;
        }
    }
    ClientPoll::Idle
}

/// Serves one connection: read one request, answer it, hang up.
fn handle_connection(
    state: &Arc<ServerState>,
    mut stream: UnixStream,
    conn: u64,
    fault: ConnectionFault,
) {
    // A non-blocking listener's accepted sockets are blocking on Linux,
    // but make it explicit — the timeouts below assume blocking mode.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    if let Some(stall) = state
        .config
        .supervisor
        .fault_plan
        .as_ref()
        .and_then(|p| p.stall())
    {
        // Injected stalled read: the daemon sits on the request exactly
        // as long as the plan says, exercising client-side timeouts.
        bump("serve.conn.stalled");
        std::thread::sleep(stall);
    }
    let mut buf = Vec::new();
    let Some(line) = read_request(&mut stream, &mut buf, state) else {
        return;
    };
    let request = match Request::parse(&line) {
        Ok(request) => request,
        Err(e) => {
            let _ = write_line(
                &mut stream,
                &Response::Error {
                    message: e.to_string(),
                },
            );
            return;
        }
    };
    match request {
        Request::Submit(spec) => handle_submit(state, stream, buf, spec, conn, fault),
        Request::Cancel { job } => {
            let found = state.jobs.lock().expect("jobs poisoned").get(&job).cloned();
            let response = match found {
                Some(handle) => {
                    handle.cancel();
                    bump("serve.jobs.cancelled");
                    Response::Cancelled { job }
                }
                None => Response::Error {
                    message: format!("no such job {job}"),
                },
            };
            let _ = write_line(&mut stream, &response);
        }
        Request::Status => {
            let _ = write_line(&mut stream, &state.status());
        }
        Request::Metrics => {
            let snapshot = reap_obs::global().snapshot();
            let _ = reap_obs::export::write_jsonl(&snapshot, &mut stream);
        }
        Request::Shutdown => {
            state.draining.store(true, Ordering::SeqCst);
            state.queue_ready.notify_all();
            let _ = write_line(&mut stream, &state.status());
        }
    }
}

/// Admits (or sheds) a submit, then forwards the runner's responses to
/// the client while watching for disconnects and inline cancels.
fn handle_submit(
    state: &Arc<ServerState>,
    mut stream: UnixStream,
    mut buf: Vec<u8>,
    spec: JobSpec,
    conn: u64,
    fault: ConnectionFault,
) {
    let id = spec.id();
    // Admission under queue -> jobs lock order (drain uses the same).
    let admitted = {
        let mut queue = state.queue.lock().expect("queue poisoned");
        let mut jobs = state.jobs.lock().expect("jobs poisoned");
        let draining = state.draining();
        let queued = queue.len() as u64;
        let active = state.active.load(Ordering::SeqCst);
        // A duplicate id sheds too: two runners appending one journal
        // would corrupt it. The retry hint lets the client come back
        // after the in-flight twin finishes (and then hit its journal
        // or the hot cache).
        if draining || queued >= state.config.queue_depth as u64 || jobs.contains_key(&id) {
            bump("serve.jobs.busy");
            Err(Response::Busy {
                retry_after_ms: state.config.retry_after_ms,
                active,
                queued,
                draining,
            })
        } else {
            let (tx, rx) = mpsc::channel();
            let handle = Arc::new(JobHandle {
                id: id.clone(),
                spec,
                cancelled: AtomicBool::new(false),
                tx: Mutex::new(tx),
            });
            jobs.insert(id.clone(), Arc::clone(&handle));
            queue.push_back(Arc::clone(&handle));
            Ok((handle, rx))
        }
    };
    let (handle, rx) = match admitted {
        Ok(admitted) => admitted,
        Err(busy) => {
            let _ = write_line(&mut stream, &busy);
            return;
        }
    };
    state.queue_ready.notify_one();
    bump("serve.jobs.accepted");
    if write_line(&mut stream, &Response::Accepted { job: id }).is_err() {
        handle.cancel();
        return;
    }

    // Injected dropped connection: hang up abruptly after a
    // deterministic number of rows (1..=4, drawn from the plan seed).
    let drop_after = matches!(fault, ConnectionFault::Drop).then(|| {
        let seed = state.config.supervisor.fault_plan.map_or(0, |p| p.seed);
        1 + (reap_fault::uniform(seed, conn, 1, 0x5e7e) * 4.0) as u64
    });

    let mut rows_written = 0u64;
    loop {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(response) => {
                if drop_after.is_some_and(|k| rows_written >= k) {
                    bump("serve.conn.dropped");
                    let _ = stream.shutdown(Shutdown::Both);
                    handle.cancel();
                    return;
                }
                let terminal = response.is_terminal();
                let is_row = matches!(response, Response::Row { .. });
                if write_line(&mut stream, &response).is_err() {
                    handle.cancel();
                    return;
                }
                if is_row {
                    rows_written += 1;
                }
                if terminal {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => match poll_client(&mut stream, &mut buf) {
                ClientPoll::Closed => {
                    bump("serve.conn.disconnected");
                    handle.cancel();
                    return;
                }
                ClientPoll::Cancel => {
                    bump("serve.jobs.cancelled");
                    handle.cancel();
                    // Keep forwarding: the runner's terminal
                    // `interrupted` confirms the cancellation.
                }
                ClientPoll::Idle => {}
            },
            // The runner vanished (it never does without a terminal
            // record, but do not spin if it somehow did).
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_core::SweepMode;

    fn state_with(config: ServeConfig) -> ServerState {
        ServerState {
            cache: Arc::new(HotCaptureCache::new(config.cache_entries)),
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            active: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }

    #[test]
    fn journal_gc_collects_orphans_but_never_live_jobs() {
        let dir = std::env::temp_dir().join(format!("reap-serve-gc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        let spec = JobSpec {
            mode: SweepMode::EccSweep,
            accesses: 1000,
            seed: 1,
            max_retries: None,
            deadline_ms: None,
        };
        let live_journal = spec.journal_path(&dir);
        std::fs::write(&live_journal, "live\n").unwrap();
        let orphan = dir.join("job-00000000deadbeef.jsonl");
        std::fs::write(&orphan, "orphan\n").unwrap();
        let unrelated = dir.join("notes.txt");
        std::fs::write(&unrelated, "keep\n").unwrap();

        // Age zero: every non-live journal is immediately stale — the
        // harshest setting the protection must survive.
        let mut config = ServeConfig::new(dir.join("gc.sock"), &dir);
        config.journal_gc_age = Some(Duration::ZERO);
        let state = state_with(config);
        let (tx, _rx) = mpsc::channel();
        state.jobs.lock().unwrap().insert(
            spec.id(),
            Arc::new(JobHandle {
                id: spec.id(),
                spec,
                cancelled: AtomicBool::new(false),
                tx: Mutex::new(tx),
            }),
        );

        sweep_stale_journals(&state);
        assert!(
            live_journal.exists(),
            "a queued/active job's journal must never be collected"
        );
        assert!(!orphan.exists(), "abandoned journal must be collected");
        assert!(unrelated.exists(), "non-journal files are left alone");

        // Once the job is gone (completed/abandoned), its journal ages
        // out like any other.
        state.jobs.lock().unwrap().clear();
        sweep_stale_journals(&state);
        assert!(!live_journal.exists(), "orphaned journal now collectable");

        // Disabled GC never touches anything.
        std::fs::write(&orphan, "orphan\n").unwrap();
        let mut config = ServeConfig::new(dir.join("gc.sock"), &dir);
        config.journal_gc_age = None;
        sweep_stale_journals(&state_with(config));
        assert!(orphan.exists(), "gc disabled must be a no-op");

        std::fs::remove_dir_all(dir).ok();
    }
}
