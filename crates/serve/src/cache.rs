//! A bounded, single-flight, in-memory LRU of exposure captures.
//!
//! The on-disk [`reap_core::CaptureStore`] already amortizes trace
//! passes across processes; the hot cache sits above it and amortizes
//! the *decode* across concurrent jobs inside the daemon. Keys are the
//! capture store's content fingerprint
//! ([`reap_core::capture_store::CaptureKey::fingerprint`]), so the two
//! layers agree about identity by construction.
//!
//! Two disciplines keep it daemon-safe:
//!
//! * **bounded**: at most `capacity` entries, least-recently-used
//!   evicted first — a long-lived daemon must not grow without bound;
//! * **single-flight**: when several jobs ask for the same missing key
//!   at once, exactly one runs the producer; the rest block until the
//!   value lands and then share it. A failed producer wakes the
//!   waiters to retry rather than caching the failure.
//!
//! The mechanics are value-agnostic ([`HotCache`]); the daemon uses the
//! [`HotCaptureCache`] instantiation over [`reap_core::ExposureCapture`].
//!
//! Telemetry (when enabled): `serve.cache.{hit,miss,coalesced,evict}`
//! counters and a `serve.cache.entries` gauge.

use reap_core::ExposureCapture;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Bump a `serve.*` counter when telemetry is enabled.
pub(crate) fn bump(name: &str) {
    if reap_obs::enabled() {
        reap_obs::global().counter(name).add(1);
    }
}

enum Slot<V> {
    /// A producer is computing this entry; waiters sleep on the condvar.
    InFlight,
    /// The value is resident; `last_used` orders eviction.
    Ready { value: Arc<V>, last_used: u64 },
}

struct Inner<V> {
    map: HashMap<u64, Slot<V>>,
    /// Logical clock for LRU ordering (bumped on every touch).
    tick: u64,
}

/// A bounded single-flight LRU keyed by `u64` fingerprints. See the
/// module docs.
pub struct HotCache<V> {
    inner: Mutex<Inner<V>>,
    cond: Condvar,
    capacity: usize,
}

/// The daemon's instantiation: capture-store fingerprints to shared
/// exposure captures.
pub type HotCaptureCache = HotCache<ExposureCapture>;

impl<V> HotCache<V> {
    /// Creates a cache holding at most `capacity` values. A capacity of
    /// 0 disables caching: every call runs its own producer.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// Resident entries (ready, not in-flight).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("cache poisoned");
        inner
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// Whether the cache holds no resident entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the value under `fingerprint`, producing it with
    /// `produce` on a miss. Concurrent callers for the same missing key
    /// coalesce onto one producer run.
    ///
    /// # Errors
    ///
    /// Propagates the producer's error to the caller that ran it;
    /// coalesced waiters retry production themselves (one becomes the
    /// next producer) rather than inheriting a stranger's failure.
    pub fn get_or_capture<E>(
        &self,
        fingerprint: u64,
        produce: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        if self.capacity == 0 {
            bump("serve.cache.miss");
            return produce().map(Arc::new);
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        loop {
            match inner.map.get(&fingerprint) {
                Some(Slot::Ready { value, .. }) => {
                    let value = Arc::clone(value);
                    inner.tick += 1;
                    let tick = inner.tick;
                    if let Some(Slot::Ready { last_used, .. }) = inner.map.get_mut(&fingerprint) {
                        *last_used = tick;
                    }
                    bump("serve.cache.hit");
                    return Ok(value);
                }
                Some(Slot::InFlight) => {
                    bump("serve.cache.coalesced");
                    inner = self.cond.wait(inner).expect("cache poisoned");
                    // Loop: the slot is now Ready (use it), gone (the
                    // producer failed — become the producer), or
                    // InFlight again (another waiter beat us to it).
                }
                None => break,
            }
        }
        // Miss: this caller is the producer. Drop the lock while the
        // (expensive) capture runs.
        inner.map.insert(fingerprint, Slot::InFlight);
        drop(inner);
        bump("serve.cache.miss");
        let produced = produce();
        let mut inner = self.inner.lock().expect("cache poisoned");
        match produced {
            Ok(value) => {
                let value = Arc::new(value);
                inner.tick += 1;
                let tick = inner.tick;
                inner.map.insert(
                    fingerprint,
                    Slot::Ready {
                        value: Arc::clone(&value),
                        last_used: tick,
                    },
                );
                self.evict_over_capacity(&mut inner);
                self.publish_len(&inner);
                drop(inner);
                self.cond.notify_all();
                Ok(value)
            }
            Err(e) => {
                inner.map.remove(&fingerprint);
                drop(inner);
                // Wake everyone: one waiter becomes the new producer.
                self.cond.notify_all();
                Err(e)
            }
        }
    }

    /// Drops the entry under `fingerprint`, if resident (used when a
    /// cached streamed capture turns out to have rotted on disk).
    pub fn evict(&self, fingerprint: u64) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if matches!(inner.map.get(&fingerprint), Some(Slot::Ready { .. })) {
            inner.map.remove(&fingerprint);
            bump("serve.cache.evict");
            self.publish_len(&inner);
        }
    }

    /// Evicts least-recently-used Ready entries until within capacity.
    /// In-flight slots are never evicted (their producers own them).
    fn evict_over_capacity(&self, inner: &mut Inner<V>) {
        loop {
            let resident = inner
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            if resident <= self.capacity {
                return;
            }
            let victim = inner
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, *k)),
                    Slot::InFlight => None,
                })
                .min()
                .map(|(_, k)| k);
            if let Some(key) = victim {
                inner.map.remove(&key);
                bump("serve.cache.evict");
            } else {
                return;
            }
        }
    }

    fn publish_len(&self, inner: &Inner<V>) {
        if reap_obs::enabled() {
            let resident = inner
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            reap_obs::global()
                .gauge("serve.cache.entries")
                .set(resident as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn hit_returns_the_same_arc() {
        let cache: HotCache<String> = HotCache::new(4);
        let a = cache.get_or_capture::<()>(1, || Ok("v".into())).unwrap();
        let b = cache
            .get_or_capture::<()>(1, || panic!("must not produce on a hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_prefers_the_coldest_entry() {
        let cache: HotCache<u64> = HotCache::new(2);
        cache.get_or_capture::<()>(1, || Ok(1)).unwrap();
        cache.get_or_capture::<()>(2, || Ok(2)).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        cache.get_or_capture::<()>(1, || Ok(1)).unwrap();
        cache.get_or_capture::<()>(3, || Ok(3)).unwrap();
        assert_eq!(cache.len(), 2);
        let calls = AtomicUsize::new(0);
        cache
            .get_or_capture::<()>(1, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(1)
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 0, "1 stayed resident");
        cache
            .get_or_capture::<()>(2, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(2)
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1, "2 was evicted");
    }

    #[test]
    fn explicit_evict_drops_only_the_named_entry() {
        let cache: HotCache<u64> = HotCache::new(4);
        cache.get_or_capture::<()>(1, || Ok(1)).unwrap();
        cache.get_or_capture::<()>(2, || Ok(2)).unwrap();
        cache.evict(1);
        cache.evict(99); // absent: no-op
        assert_eq!(cache.len(), 1);
        let calls = AtomicUsize::new(0);
        cache
            .get_or_capture::<()>(1, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(1)
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: HotCache<u64> = HotCache::new(0);
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            cache
                .get_or_capture::<()>(7, || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Ok(1)
                })
                .unwrap();
        }
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_misses_coalesce_onto_one_producer() {
        let cache: Arc<HotCache<u64>> = Arc::new(HotCache::new(4));
        let produced = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let produced = Arc::clone(&produced);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_capture::<()>(42, || {
                        produced.fetch_add(1, Ordering::Relaxed);
                        // Hold the flight long enough for others to pile up.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok(5)
                    })
                    .unwrap()
            }));
        }
        let values: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(produced.load(Ordering::Relaxed), 1, "single flight");
        for v in &values[1..] {
            assert!(Arc::ptr_eq(&values[0], v), "all callers share one Arc");
        }
    }

    #[test]
    fn failed_producer_releases_waiters_to_retry() {
        let cache: Arc<HotCache<u64>> = Arc::new(HotCache::new(4));
        let attempts = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let attempts = Arc::clone(&attempts);
            handles.push(std::thread::spawn(move || {
                cache.get_or_capture(9, || {
                    let n = attempts.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    // First producer fails; a released waiter succeeds.
                    if n == 0 {
                        Err("boom")
                    } else {
                        Ok(2)
                    }
                })
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let failures = results.iter().filter(|r| r.is_err()).count();
        let successes = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(failures, 1, "only the failing producer sees the error");
        assert_eq!(successes, 3);
        assert_eq!(cache.len(), 1);
    }
}
