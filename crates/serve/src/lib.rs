//! `reap serve`: a fault-tolerant, long-lived sweep service.
//!
//! The batch tools (`reap sweep`, `run_sweep_campaign`) pay one trace
//! capture per workload and then answer replay queries cheaply; this
//! crate turns that economy into a daemon. A [`server::Server`] listens
//! on a Unix-domain socket for newline-delimited JSON requests
//! ([`protocol`]) and streams result rows back as JSONL, while staying
//! correct through the failure modes a long-lived process actually
//! meets:
//!
//! * **admission control** — a bounded queue over a fixed runner pool;
//!   a saturated daemon answers a structured `busy` response with a
//!   retry-after hint instead of queueing unboundedly or hanging;
//! * **cancellation** — clients cancel by job id, and a client that
//!   disconnects mid-stream cancels its own job and releases workers;
//! * **graceful drain and crash-safe resume** — SIGTERM/SIGINT stops
//!   admissions and drains in-flight jobs to per-job
//!   `reap-checkpoint/1` journals; a restarted daemon serves the
//!   journaled rows byte-identically and computes only the remainder;
//! * **a bounded hot capture cache** ([`cache::HotCaptureCache`]) — an
//!   LRU keyed by the capture store's content fingerprint, with
//!   single-flight deduplication so concurrent jobs over the same
//!   configuration trigger exactly one capture;
//! * **fault-injectable connection paths** — a [`reap_fault::FaultPlan`]
//!   with `refuse=`/`drop=`/`stall-ms=` specs exercises refused
//!   accepts, dropped streams and stalled reads in chaos tests.
//!
//! The row codec is shared with the checkpoint module
//! (`reap_core::checkpoint::row_to_json`), which is what makes a row
//! served hot, from disk, from a journal, or freshly computed
//! bit-identical to an offline `reap sweep`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod jobs;
pub mod protocol;
pub mod server;
pub mod signal;

pub use cache::HotCaptureCache;
pub use client::{fetch_raw, request_one, submit, ClientConfig, SubmitError, SubmitOutcome};
pub use jobs::{compute_rows, JobSpec};
pub use protocol::{Request, Response};
pub use server::{serve, ServeConfig};
