//! The submitting client: connect, stream, reassemble, retry.
//!
//! [`submit`] drives one job to a final [`SubmitOutcome`] across as many
//! connection attempts as the [`ClientConfig`] allows. Every failure
//! mode the daemon (or an injected fault plan) can produce maps to a
//! retry, not a hang: a `busy` response sleeps for the server's
//! retry-after hint, a refused or dropped connection pauses briefly and
//! reconnects, a stalled server trips the read timeout, and an
//! `interrupted` stream resubmits — the daemon then serves the already
//! journaled rows back (`resumed: true`) and computes only the
//! remainder. Rows reassemble by canonical workload index, so the final
//! outcome is byte-identical no matter how many attempts it took.

use crate::jobs::JobSpec;
use crate::protocol::{Request, Response};
use reap_core::SweepRow;
use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// How a client talks to the daemon.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The daemon's socket path.
    pub socket: PathBuf,
    /// Total connection attempts before giving up (minimum 1).
    pub attempts: u32,
    /// Per-read timeout — the guard against a stalled server.
    pub io_timeout: Duration,
    /// Pause before reconnecting when the server gave no retry hint
    /// (refused, dropped, interrupted).
    pub retry_pause: Duration,
}

impl ClientConfig {
    /// Defaults: 10 attempts, 60 s read timeout, 100 ms reconnect pause.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            attempts: 10,
            io_timeout: Duration::from_secs(60),
            retry_pause: Duration::from_millis(100),
        }
    }
}

/// Why a submission could not produce an outcome.
#[derive(Debug)]
pub enum SubmitError {
    /// A local I/O failure that retrying cannot fix.
    Io(io::Error),
    /// The server spoke something that is not the protocol.
    Protocol(String),
    /// The server answered with a terminal `error` record.
    Server(String),
    /// Every attempt was shed or lost; carries the last failure seen.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last attempt's failure, rendered as text.
        last: String,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Io(e) => write!(f, "i/o error: {e}"),
            SubmitError::Protocol(m) => write!(f, "protocol error: {m}"),
            SubmitError::Server(m) => write!(f, "server error: {m}"),
            SubmitError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last: {last})")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A completed submission, reassembled in canonical workload order.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The job id the daemon assigned (its checkpoint fingerprint).
    pub job: String,
    /// `(workload, rows)` for every workload that produced rows, in
    /// canonical sweep order regardless of arrival order.
    pub rows: Vec<(String, Vec<SweepRow>)>,
    /// `(workload, error)` for workloads that failed after retries.
    pub failed: Vec<(String, String)>,
    /// Rows the final attempt served from a journal instead of
    /// recomputing (the server's count).
    pub resumed: u64,
    /// Connection attempts used.
    pub attempts: u32,
    /// True when attempts ran out on a resumable interrupt — `rows`
    /// holds what was streamed; a later submission can finish the job.
    pub interrupted: bool,
}

/// How one connection attempt ended, when it did not end the submission.
enum AttemptEnd {
    Done {
        job: String,
        resumed: u64,
    },
    Busy {
        retry_after_ms: u64,
    },
    Interrupted {
        job: String,
    },
    /// Refused connect, dropped stream, or a read timeout.
    Lost(String),
}

/// Submits `spec` and drives it to an outcome, retrying per `config`.
///
/// # Errors
///
/// Returns [`SubmitError`] on protocol violations, terminal server
/// errors, or when every attempt was shed or lost without a resumable
/// interrupt to carry partial results.
pub fn submit(config: &ClientConfig, spec: &JobSpec) -> Result<SubmitOutcome, SubmitError> {
    let mut rows: BTreeMap<u64, (String, Vec<SweepRow>)> = BTreeMap::new();
    let mut failed: BTreeMap<u64, (String, String)> = BTreeMap::new();
    let max_attempts = config.attempts.max(1);
    let mut attempts = 0u32;
    let mut last = String::from("no attempt made");
    let mut interrupted_job = None;
    while attempts < max_attempts {
        attempts += 1;
        match attempt(config, spec, &mut rows, &mut failed)? {
            AttemptEnd::Done { job, resumed } => {
                // A workload that failed on an earlier attempt but
                // produced rows later is not a failure.
                failed.retain(|index, _| !rows.contains_key(index));
                return Ok(SubmitOutcome {
                    job,
                    rows: rows.into_values().collect(),
                    failed: failed.into_values().collect(),
                    resumed,
                    attempts,
                    interrupted: false,
                });
            }
            AttemptEnd::Busy { retry_after_ms } => {
                last = format!("busy (retry after {retry_after_ms} ms)");
                interrupted_job = None;
                // Honour the server's hint, bounded so a bad hint cannot
                // park the client.
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(2_000)));
            }
            AttemptEnd::Interrupted { job } => {
                last = format!("job {job} interrupted");
                interrupted_job = Some(job);
                std::thread::sleep(config.retry_pause);
            }
            AttemptEnd::Lost(reason) => {
                last = reason;
                interrupted_job = None;
                std::thread::sleep(config.retry_pause);
            }
        }
    }
    match interrupted_job {
        // Ran out of attempts mid-drain: hand back what streamed, flagged.
        Some(job) => {
            failed.retain(|index, _| !rows.contains_key(index));
            Ok(SubmitOutcome {
                job,
                rows: rows.into_values().collect(),
                failed: failed.into_values().collect(),
                resumed: 0,
                attempts,
                interrupted: true,
            })
        }
        None => Err(SubmitError::Exhausted { attempts, last }),
    }
}

/// One connection attempt: submit, then consume the stream until a
/// terminal record (or the connection is lost).
fn attempt(
    config: &ClientConfig,
    spec: &JobSpec,
    rows: &mut BTreeMap<u64, (String, Vec<SweepRow>)>,
    failed: &mut BTreeMap<u64, (String, String)>,
) -> Result<AttemptEnd, SubmitError> {
    let mut stream = match UnixStream::connect(&config.socket) {
        Ok(stream) => stream,
        // Refused / not-yet-bound sockets are retryable, not fatal.
        Err(e) => return Ok(AttemptEnd::Lost(format!("connect: {e}"))),
    };
    stream
        .set_read_timeout(Some(config.io_timeout))
        .map_err(SubmitError::Io)?;
    let mut line = Request::Submit(*spec).to_line();
    line.push('\n');
    if stream.write_all(line.as_bytes()).is_err() {
        return Ok(AttemptEnd::Lost("connection lost while submitting".into()));
    }

    let mut buf = Vec::new();
    loop {
        let line = match read_line(&mut stream, &mut buf) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(AttemptEnd::Lost("connection dropped mid-stream".into())),
            Err(reason) => return Ok(AttemptEnd::Lost(reason)),
        };
        let response = Response::parse(&line).map_err(|e| SubmitError::Protocol(e.to_string()))?;
        match response {
            Response::Accepted { .. } => {}
            Response::Row {
                index,
                key,
                rows: r,
                ..
            } => {
                rows.insert(index, (key, r));
            }
            Response::Failed { index, key, error } => {
                failed.insert(index, (key, error));
            }
            Response::Busy { retry_after_ms, .. } => {
                return Ok(AttemptEnd::Busy { retry_after_ms })
            }
            Response::Done { job, resumed, .. } => return Ok(AttemptEnd::Done { job, resumed }),
            Response::Interrupted { job, .. } => return Ok(AttemptEnd::Interrupted { job }),
            Response::Cancelled { job } => {
                return Err(SubmitError::Server(format!("job {job} was cancelled")))
            }
            Response::Error { message } => return Err(SubmitError::Server(message)),
            Response::Status { .. } => {
                return Err(SubmitError::Protocol(
                    "unexpected status record in a submit stream".into(),
                ))
            }
        }
    }
}

/// Reads one line; `Ok(None)` is EOF, `Err` is a lost-connection reason
/// (read timeout included — the stalled-server guard).
fn read_line(stream: &mut UnixStream, buf: &mut Vec<u8>) -> Result<Option<String>, String> {
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            return Ok(Some(
                String::from_utf8_lossy(&line[..line.len() - 1]).into_owned(),
            ));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err("read timed out (stalled server?)".into())
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
    }
}

/// Sends one non-submit request and returns the first response line.
///
/// Used by the CLI for `status`, `cancel` and `shutdown`; `metrics`
/// streams raw JSONL and is read with [`fetch_raw`] instead.
///
/// # Errors
///
/// Returns [`SubmitError::Io`] when the daemon is unreachable and
/// [`SubmitError::Protocol`] when the reply does not parse.
pub fn request_one(config: &ClientConfig, request: &Request) -> Result<Response, SubmitError> {
    let mut stream = UnixStream::connect(&config.socket).map_err(SubmitError::Io)?;
    stream
        .set_read_timeout(Some(config.io_timeout))
        .map_err(SubmitError::Io)?;
    let mut line = request.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).map_err(SubmitError::Io)?;
    let mut buf = Vec::new();
    match read_line(&mut stream, &mut buf) {
        Ok(Some(line)) => Response::parse(&line).map_err(|e| SubmitError::Protocol(e.to_string())),
        Ok(None) => Err(SubmitError::Protocol(
            "server closed without a reply".into(),
        )),
        Err(reason) => Err(SubmitError::Protocol(reason)),
    }
}

/// Sends one request and returns the raw bytes the server streams until
/// EOF (the `metrics` reply is `reap-obs/2` JSONL, not protocol records).
///
/// # Errors
///
/// Returns [`SubmitError::Io`] when the daemon is unreachable or the
/// read fails.
pub fn fetch_raw(config: &ClientConfig, request: &Request) -> Result<Vec<u8>, SubmitError> {
    let mut stream = UnixStream::connect(&config.socket).map_err(SubmitError::Io)?;
    stream
        .set_read_timeout(Some(config.io_timeout))
        .map_err(SubmitError::Io)?;
    let mut line = request.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).map_err(SubmitError::Io)?;
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(out),
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(out)
            }
            Err(e) => return Err(SubmitError::Io(e)),
        }
    }
}
