//! Job identity and the job body shared by the daemon and its tests.
//!
//! A job is one full sweep (21 workloads) at a `(mode, accesses, seed)`
//! point — exactly the unit `reap sweep` runs offline. Its identity is
//! the `reap-checkpoint/1` fingerprint of that configuration, which
//! doubles as the journal filename: a resubmitted identical request
//! finds its own journal by construction, and a different configuration
//! cannot collide with it.

use crate::cache::HotCaptureCache;
use reap_core::capture_store::CaptureKey;
use reap_core::checkpoint::CheckpointMeta;
use reap_core::simulator::SimulationError;
use reap_core::sweep::replay_ecc_sweep_with;
use reap_core::{
    CaptureStore, EccStrength, Experiment, ExperimentError, Simulator, SweepMode, SweepRow,
};
use reap_trace::SpecWorkload;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One submitted job: a full sweep at one configuration point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Standard single-point sweep or the per-strength ECC sweep.
    pub mode: SweepMode,
    /// Measured accesses per workload.
    pub accesses: u64,
    /// Trace seed.
    pub seed: u64,
    /// Per-workload retry budget override (daemon default otherwise).
    pub max_retries: Option<u32>,
    /// Per-workload deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// The canonical job list: every workload name, in sweep order.
    pub fn keys() -> Vec<String> {
        SpecWorkload::ALL
            .iter()
            .map(|w| w.name().to_owned())
            .collect()
    }

    /// The job's checkpoint meta record (mode, budgets, seed, job list).
    pub fn meta(&self) -> CheckpointMeta {
        CheckpointMeta::new(self.mode.tag(), self.accesses, self.seed, &Self::keys())
    }

    /// The job id: the checkpoint fingerprint as 16 hex digits.
    ///
    /// Retry/deadline overrides are deliberately excluded — they change
    /// how hard the daemon tries, never what the rows contain, so two
    /// submissions differing only in budgets share one journal.
    pub fn id(&self) -> String {
        format!("{:016x}", self.meta().fingerprint)
    }

    /// The job's journal path under `state_dir`.
    pub fn journal_path(&self, state_dir: &Path) -> PathBuf {
        state_dir.join(format!("job-{}.jsonl", self.id()))
    }
}

/// Computes one workload's rows for `spec` — the daemon's job body.
///
/// The capture is sourced through up to three layers, outermost first:
/// the in-memory [`HotCaptureCache`] (keyed by the capture store's
/// content fingerprint, single-flight), the on-disk `store`, and a cold
/// trace capture. All three yield bit-identical rows; the property test
/// in `tests/` pins that.
///
/// # Errors
///
/// Returns [`ExperimentError`] when the configuration cannot be
/// instantiated. Capture-stream defects are never errors: they fall
/// back to a fresh capture, like the offline sweep paths.
pub fn compute_rows(
    workload: SpecWorkload,
    spec: &JobSpec,
    cache: Option<&HotCaptureCache>,
    store: Option<&CaptureStore>,
) -> Result<Vec<SweepRow>, ExperimentError> {
    let experiment = Experiment::paper_hierarchy()
        .workload(workload)
        .accesses(spec.accesses)
        .seed(spec.seed);
    let Some(cache) = cache else {
        // No hot layer: defer to the exact offline code paths.
        return match spec.mode {
            SweepMode::Standard => {
                let report = experiment.run_with(store)?;
                Ok(vec![SweepRow::from_report(None, &report)])
            }
            SweepMode::EccSweep => Ok(replay_ecc_sweep_with(&experiment, store)?
                .into_iter()
                .map(|(ecc, report)| SweepRow::from_report(Some(ecc), &report))
                .collect()),
        };
    };

    let fingerprint = CaptureKey::new(workload, spec.seed, experiment.config()).fingerprint();
    let capture = cache.get_or_capture(fingerprint, || experiment.capture_with(store))?;

    let points = match spec.mode {
        SweepMode::Standard => vec![Simulator::new(experiment.config().clone())?],
        SweepMode::EccSweep => EccStrength::ALL
            .into_iter()
            .map(|ecc| {
                let mut config = experiment.config().clone();
                config.ecc = ecc;
                Simulator::new(config)
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let reports = match Simulator::replay_batch(&points, &capture) {
        // A cached streamed capture can rot on disk between caching and
        // this replay; recapture instead of failing the job (and drop
        // the bad entry so later jobs do not trip over it again).
        Err(SimulationError::CaptureStream(defect)) => {
            eprintln!("warning: hot capture failed mid-replay ({defect}); recapturing");
            cache.evict(fingerprint);
            let fresh = Arc::new(experiment.capture_with(None)?);
            Simulator::replay_batch(&points, &fresh)?
        }
        other => other?,
    };
    Ok(match spec.mode {
        SweepMode::Standard => reports
            .into_iter()
            .map(|report| SweepRow::from_report(None, &report))
            .collect(),
        SweepMode::EccSweep => EccStrength::ALL
            .into_iter()
            .zip(reports)
            .map(|(ecc, report)| SweepRow::from_report(Some(ecc), &report))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(mode: SweepMode) -> JobSpec {
        JobSpec {
            mode,
            accesses: 2000,
            seed: 3,
            max_retries: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn job_id_tracks_configuration_not_budgets() {
        let base = spec(SweepMode::EccSweep);
        assert_eq!(base.id(), base.id());
        assert_eq!(base.id().len(), 16);
        let with_budgets = JobSpec {
            max_retries: Some(9),
            deadline_ms: Some(1000),
            ..base
        };
        assert_eq!(base.id(), with_budgets.id(), "budgets don't change rows");
        for other in [
            spec(SweepMode::Standard),
            JobSpec {
                accesses: 2001,
                ..base
            },
            JobSpec { seed: 4, ..base },
        ] {
            assert_ne!(base.id(), other.id(), "{other:?}");
        }
    }

    #[test]
    fn journal_path_embeds_the_id() {
        let s = spec(SweepMode::Standard);
        let path = s.journal_path(Path::new("/tmp/state"));
        assert_eq!(
            path,
            Path::new("/tmp/state").join(format!("job-{}.jsonl", s.id()))
        );
    }

    #[test]
    fn hot_cached_rows_match_the_offline_path() {
        let s = spec(SweepMode::EccSweep);
        let workload = SpecWorkload::Hmmer;
        let offline = compute_rows(workload, &s, None, None).unwrap();
        let cache = HotCaptureCache::new(4);
        let cold = compute_rows(workload, &s, Some(&cache), None).unwrap();
        let hot = compute_rows(workload, &s, Some(&cache), None).unwrap();
        for (a, b) in offline.iter().zip(&cold).chain(offline.iter().zip(&hot)) {
            assert_eq!(a.ecc, b.ecc);
            assert_eq!(a.mttf_gain.to_bits(), b.mttf_gain.to_bits());
            assert_eq!(a.energy_overhead.to_bits(), b.energy_overhead.to_bits());
            assert_eq!(a.l2_hit_rate.to_bits(), b.l2_hit_rate.to_bits());
            assert_eq!(a.efail_conv.to_bits(), b.efail_conv.to_bits());
            assert_eq!(a.max_n, b.max_n);
        }
    }
}
