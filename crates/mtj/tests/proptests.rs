//! Property-based tests for the STT-MRAM device model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reap_mtj::{
    read_current_for_probability, read_disturbance_probability, retention_failure_probability,
    MtjArray, MtjParams, VariationModel,
};

proptest! {
    /// Eq. (1) always yields a valid probability for any valid card.
    #[test]
    fn disturbance_probability_is_valid(
        delta in 20.0..100.0f64,
        ratio in 0.05..0.99f64,
        t_read_ns in 0.1..10.0f64,
    ) {
        let params = MtjParams::builder()
            .thermal_stability(delta)
            .read_current(ratio * 100e-6)
            .read_pulse(t_read_ns * 1e-9)
            .build()
            .unwrap();
        let p = read_disturbance_probability(&params);
        prop_assert!(p > 0.0 && p < 1.0, "p = {p}");
    }

    /// Disturbance probability is monotone in the read current.
    #[test]
    fn disturbance_monotone_in_current(
        lo in 0.1..0.5f64,
        gap in 0.01..0.45f64,
    ) {
        let base = MtjParams::default();
        let p_lo = read_disturbance_probability(&base.with_read_current(lo * 100e-6).unwrap());
        let p_hi = read_disturbance_probability(
            &base.with_read_current((lo + gap) * 100e-6).unwrap(),
        );
        prop_assert!(p_hi > p_lo);
    }

    /// Disturbance probability is antitone in the thermal stability factor.
    #[test]
    fn disturbance_antitone_in_stability(
        delta in 20.0..90.0f64,
        bump in 1.0..30.0f64,
    ) {
        let base = MtjParams::default();
        let p_lo = read_disturbance_probability(&base.with_thermal_stability(delta + bump).unwrap());
        let p_hi = read_disturbance_probability(&base.with_thermal_stability(delta).unwrap());
        prop_assert!(p_hi > p_lo);
    }

    /// The inverse solver round-trips through Eq. (1) across twelve decades.
    #[test]
    fn inverse_current_solver_round_trips(exp in -12.0..-1.5f64) {
        let target = 10.0_f64.powf(exp);
        let params = MtjParams::default();
        if let Some(i) = read_current_for_probability(&params, target) {
            let p = read_disturbance_probability(&params.with_read_current(i).unwrap());
            prop_assert!((p / target - 1.0).abs() < 1e-6, "target {target}, got {p}");
        }
    }

    /// Retention failure probability is a valid, monotone CDF of time.
    #[test]
    fn retention_is_monotone_cdf(t1 in 1.0..1e9f64, scale in 1.01..100.0f64) {
        let params = MtjParams::default().with_thermal_stability(35.0).unwrap();
        let p1 = retention_failure_probability(&params, t1);
        let p2 = retention_failure_probability(&params, t1 * scale);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 >= p1);
    }

    /// Reads can only clear bits, never set them, and `count_ones` never grows.
    #[test]
    fn array_reads_are_unidirectional(
        payload in proptest::collection::vec(any::<u8>(), 64),
        p in 0.0..1.0f64,
        seed in any::<u64>(),
    ) {
        let mut array = MtjArray::with_probability(512, p);
        array.write_bytes(&payload);
        let before: Vec<u8> = array.snapshot();
        let ones_before = array.count_ones();
        let mut rng = StdRng::seed_from_u64(seed);
        let after = array.read(&mut rng);
        prop_assert!(array.count_ones() <= ones_before);
        for (b, a) in before.iter().zip(after.iter()) {
            prop_assert_eq!(a & !b, 0, "a stored 0 flipped to 1");
        }
    }

    /// Writing always heals: after a write the contents equal the payload.
    #[test]
    fn array_write_heals(
        payload in proptest::collection::vec(any::<u8>(), 32),
        seed in any::<u64>(),
    ) {
        let mut array = MtjArray::with_probability(256, 0.9);
        let mut rng = StdRng::seed_from_u64(seed);
        array.write_bytes(&payload);
        let _ = array.read(&mut rng);
        array.write_bytes(&payload);
        prop_assert_eq!(array.snapshot(), payload);
    }

    /// Variation sampling always produces valid cards with valid probabilities.
    #[test]
    fn variation_samples_are_valid(
        sd in 0.0..0.3f64,
        si in 0.0..0.3f64,
        sr in 0.0..0.3f64,
        seed in any::<u64>(),
    ) {
        let model = VariationModel::new(sd, si, sr);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = model.sample(&MtjParams::default(), &mut rng);
        prop_assert!(s.params.read_overdrive() < 1.0);
        prop_assert!(s.params.write_overdrive() > 1.0);
        prop_assert!(s.read_disturbance > 0.0 && s.read_disturbance < 1.0);
    }
}
