//! Stateful model of a single STT-MRAM cell.

use crate::disturbance::read_disturbance_probability;
use crate::params::MtjParams;
use rand::Rng;
use std::fmt;

/// Magnetization of the MTJ free layer relative to the reference layer.
///
/// Parallel alignment has low resistance and encodes logic `0`;
/// anti-parallel alignment has high resistance and encodes logic `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Magnetization {
    /// Low-resistance state, logic `0`.
    #[default]
    Parallel,
    /// High-resistance state, logic `1`.
    AntiParallel,
}

impl Magnetization {
    /// The logic value this magnetization encodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_mtj::Magnetization;
    /// assert!(!Magnetization::Parallel.as_bit());
    /// assert!(Magnetization::AntiParallel.as_bit());
    /// ```
    pub fn as_bit(self) -> bool {
        matches!(self, Magnetization::AntiParallel)
    }

    /// The magnetization that encodes `bit`.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Magnetization::AntiParallel
        } else {
            Magnetization::Parallel
        }
    }
}

impl fmt::Display for Magnetization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Magnetization::Parallel => f.write_str("P"),
            Magnetization::AntiParallel => f.write_str("AP"),
        }
    }
}

/// Result of reading a cell: the sensed bit and whether this read disturbed
/// the cell.
///
/// Read disturbance is unidirectional (§II of the paper): the read current
/// flows in the write-`0` direction, so only a stored `1` can flip, and a
/// disturbed read senses the *flipped* value — the paper counts the final
/// demand read itself among the error trials ("plus one, to count the last
/// read access").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The bit delivered by the sense amplifier.
    pub value: bool,
    /// Whether the cell flipped `1 → 0` during this read.
    pub disturbed: bool,
}

/// A single STT-MRAM cell with persistent magnetization state.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use reap_mtj::{MtjCell, MtjParams};
///
/// let params = MtjParams::default();
/// let mut cell = MtjCell::new(params);
/// cell.write(true);
/// let mut rng = StdRng::seed_from_u64(0);
/// let out = cell.read(&mut rng);
/// // At the nominal card p ≈ 1.5e-8, a single read virtually never disturbs.
/// assert!(out.value);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjCell {
    params: MtjParams,
    state: Magnetization,
}

impl MtjCell {
    /// Creates a cell in the parallel (`0`) state.
    pub fn new(params: MtjParams) -> Self {
        Self {
            params,
            state: Magnetization::Parallel,
        }
    }

    /// The cell's parameter card.
    pub fn params(&self) -> &MtjParams {
        &self.params
    }

    /// Current magnetization.
    pub fn state(&self) -> Magnetization {
        self.state
    }

    /// Current resistance (Ω), determined by the magnetization.
    pub fn resistance(&self) -> f64 {
        match self.state {
            Magnetization::Parallel => self.params.r_parallel(),
            Magnetization::AntiParallel => self.params.r_antiparallel(),
        }
    }

    /// Writes a bit deterministically (the WER of the write pulse is modeled
    /// separately in the [`mod@crate::write`] module; the REAP study assumes reliable
    /// writes, as writes rewrite and thereby *heal* accumulated disturbance).
    pub fn write(&mut self, bit: bool) {
        self.state = Magnetization::from_bit(bit);
    }

    /// Reads the cell, stochastically applying read disturbance.
    ///
    /// A stored `1` flips to `0` with probability Eq. (1); a stored `0` is
    /// immune (unidirectional read current). The sensed value reflects any
    /// flip that occurred during this read.
    pub fn read<R: Rng + ?Sized>(&mut self, rng: &mut R) -> ReadOutcome {
        self.read_with_probability(read_disturbance_probability(&self.params), rng)
    }

    /// Like [`read`](Self::read), but with an explicit per-read disturbance
    /// probability — used by Monte-Carlo experiments that amplify the
    /// physical probability to make failures observable in tractable time.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn read_with_probability<R: Rng + ?Sized>(&mut self, p: f64, rng: &mut R) -> ReadOutcome {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let disturbed = self.state == Magnetization::AntiParallel && rng.gen::<f64>() < p;
        if disturbed {
            self.state = Magnetization::Parallel;
        }
        ReadOutcome {
            value: self.state.as_bit(),
            disturbed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cell() -> MtjCell {
        MtjCell::new(MtjParams::default())
    }

    #[test]
    fn new_cell_starts_parallel() {
        assert_eq!(cell().state(), Magnetization::Parallel);
        assert!(!cell().state().as_bit());
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = cell();
        for bit in [true, false, true, true, false] {
            c.write(bit);
            assert_eq!(c.read(&mut rng).value, bit);
        }
    }

    #[test]
    fn resistance_tracks_state() {
        let mut c = cell();
        c.write(false);
        assert_eq!(c.resistance(), MtjParams::default().r_parallel());
        c.write(true);
        assert_eq!(c.resistance(), MtjParams::default().r_antiparallel());
    }

    #[test]
    fn zero_state_is_immune_to_disturbance() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = cell();
        c.write(false);
        for _ in 0..10_000 {
            let out = c.read_with_probability(1.0, &mut rng);
            assert!(!out.disturbed);
            assert!(!out.value);
        }
    }

    #[test]
    fn one_state_always_flips_at_probability_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = cell();
        c.write(true);
        let out = c.read_with_probability(1.0, &mut rng);
        assert!(out.disturbed);
        assert!(!out.value, "disturbed read senses the flipped value");
        assert_eq!(c.state(), Magnetization::Parallel);
    }

    #[test]
    fn disturbance_frequency_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = 0.05;
        let trials = 100_000;
        let mut disturbed = 0u32;
        for _ in 0..trials {
            let mut c = cell();
            c.write(true);
            if c.read_with_probability(p, &mut rng).disturbed {
                disturbed += 1;
            }
        }
        let freq = f64::from(disturbed) / trials as f64;
        assert!((freq - p).abs() < 0.005, "freq = {freq}");
    }

    #[test]
    fn rewrite_heals_disturbed_cell() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = cell();
        c.write(true);
        let _ = c.read_with_probability(1.0, &mut rng); // flips to 0
        c.write(true); // heal
        assert_eq!(c.state(), Magnetization::AntiParallel);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_probability_above_one() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut c = cell();
        let _ = c.read_with_probability(1.5, &mut rng);
    }

    #[test]
    fn magnetization_from_bit_round_trips() {
        assert!(Magnetization::from_bit(true).as_bit());
        assert!(!Magnetization::from_bit(false).as_bit());
    }

    #[test]
    fn magnetization_display() {
        assert_eq!(Magnetization::Parallel.to_string(), "P");
        assert_eq!(Magnetization::AntiParallel.to_string(), "AP");
    }
}
