//! Thermal retention-failure model.
//!
//! Even without any access, thermal agitation can flip an MTJ free layer.
//! The mean time between spontaneous flips follows the Néel–Arrhenius law
//! `tau_ret = tau * exp(Delta)`; the probability of at least one flip within
//! an interval `t` is `1 - exp(-t / tau_ret)`.
//!
//! Retention errors are second-order for the REAP-cache study (Δ ≈ 60 gives
//! a retention time of ~10¹⁷ s), but the model is needed to justify *why*
//! read disturbance — not retention — dominates the STT-MRAM cache error
//! rate, and it participates in the ablation benches.

use crate::params::MtjParams;

/// Probability that a stored bit spontaneously flips within `interval`
/// seconds, with no access activity.
///
/// # Examples
///
/// ```
/// use reap_mtj::{retention_failure_probability, MtjParams};
///
/// let p_year = retention_failure_probability(&MtjParams::default(), 3.15e7);
/// // With Δ = 60 the retention failure over a year is far below the
/// // per-read disturbance probability (~1e-8).
/// assert!(p_year < 1e-9);
/// ```
pub fn retention_failure_probability(params: &MtjParams, interval: f64) -> f64 {
    if interval <= 0.0 {
        return 0.0;
    }
    let tau_ret = params.attempt_period() * params.thermal_stability().exp();
    -(-interval / tau_ret).exp_m1()
}

/// Mean retention time (s): expected time until a spontaneous flip.
///
/// # Examples
///
/// ```
/// use reap_mtj::MtjParams;
/// use reap_mtj::retention::mean_retention_time;
///
/// let t = mean_retention_time(&MtjParams::default());
/// assert!(t > 1e16, "Δ = 60 retains for ~3.6e9 years");
/// ```
pub fn mean_retention_time(params: &MtjParams) -> f64 {
    params.attempt_period() * params.thermal_stability().exp()
}

/// Thermal stability factor required to retain data for `target` seconds
/// with failure probability at most `p_max`.
///
/// Returns `None` for out-of-range inputs (`target <= 0`, `p_max` outside
/// `(0, 1)`).
///
/// # Examples
///
/// ```
/// use reap_mtj::MtjParams;
/// use reap_mtj::retention::required_stability;
///
/// // Ten years at 1e-9 failure probability needs roughly Δ ≈ 60.
/// let delta = required_stability(&MtjParams::default(), 3.15e8, 1e-9).expect("in range");
/// assert!(delta > 55.0 && delta < 65.0, "delta = {delta}");
/// ```
pub fn required_stability(params: &MtjParams, target: f64, p_max: f64) -> Option<f64> {
    let target_valid = target.is_finite() && target > 0.0;
    let p_valid = p_max > 0.0 && p_max < 1.0;
    if !target_valid || !p_valid {
        return None;
    }
    // p = 1 - exp(-t / (tau e^Δ))  =>  Δ = ln( t / (tau * -ln(1-p)) )
    let denom = params.attempt_period() * -(-p_max).ln_1p();
    Some((target / denom).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interval_never_fails() {
        assert_eq!(
            retention_failure_probability(&MtjParams::default(), 0.0),
            0.0
        );
    }

    #[test]
    fn failure_probability_monotone_in_interval() {
        let p = MtjParams::default();
        let day = retention_failure_probability(&p, 86_400.0);
        let year = retention_failure_probability(&p, 3.15e7);
        assert!(year > day);
    }

    #[test]
    fn lower_stability_fails_sooner() {
        let stable = MtjParams::default();
        let flaky = MtjParams::default().with_thermal_stability(30.0).unwrap();
        let t = 1.0;
        assert!(
            retention_failure_probability(&flaky, t) > retention_failure_probability(&stable, t)
        );
    }

    #[test]
    fn mean_retention_time_matches_neel_arrhenius() {
        let p = MtjParams::default();
        let expected = 1e-9 * 60.0_f64.exp();
        assert!((mean_retention_time(&p) / expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn required_stability_round_trips() {
        let base = MtjParams::default();
        let delta = required_stability(&base, 3.15e7, 1e-6).unwrap();
        let card = base.with_thermal_stability(delta).unwrap();
        let p = retention_failure_probability(&card, 3.15e7);
        assert!((p / 1e-6 - 1.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn required_stability_rejects_bad_inputs() {
        let p = MtjParams::default();
        assert_eq!(required_stability(&p, -1.0, 1e-6), None);
        assert_eq!(required_stability(&p, 1.0, 0.0), None);
        assert_eq!(required_stability(&p, 1.0, 1.0), None);
    }
}
