//! Device parameters of an STT-MRAM (MTJ + access transistor) cell.

use std::error::Error;
use std::fmt;

/// Physical and electrical parameters of an STT-MRAM cell.
///
/// All currents are in amperes, times in seconds, resistances in ohms.
/// Construct with [`MtjParams::builder`] (validated) or use the calibrated
/// [`Default`] card, which targets a 22 nm perpendicular MTJ and yields a
/// read-disturbance probability of ≈ 1.5 × 10⁻⁸ per read — the operating
/// point of the paper's running example.
///
/// # Examples
///
/// ```
/// use reap_mtj::MtjParams;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = MtjParams::builder()
///     .thermal_stability(62.0)
///     .read_current(65e-6)
///     .build()?;
/// assert_eq!(p.thermal_stability(), 62.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjParams {
    delta: f64,
    ic0: f64,
    i_read: f64,
    i_write: f64,
    t_read: f64,
    t_write: f64,
    tau: f64,
    r_parallel: f64,
    r_antiparallel: f64,
}

impl MtjParams {
    /// Starts building a parameter set from the default card.
    pub fn builder() -> MtjParamsBuilder {
        MtjParamsBuilder::new()
    }

    /// Thermal stability factor Δ = E_b / k_B·T (dimensionless).
    pub fn thermal_stability(&self) -> f64 {
        self.delta
    }

    /// Critical switching current at 0 K, `Ic0` (A).
    pub fn critical_current(&self) -> f64 {
        self.ic0
    }

    /// Read current `I_read` (A). Always below [`critical_current`].
    ///
    /// [`critical_current`]: Self::critical_current
    pub fn read_current(&self) -> f64 {
        self.i_read
    }

    /// Write current `I_write` (A). Always above [`critical_current`].
    ///
    /// [`critical_current`]: Self::critical_current
    pub fn write_current(&self) -> f64 {
        self.i_write
    }

    /// Read pulse width `t_read` (s).
    pub fn read_pulse(&self) -> f64 {
        self.t_read
    }

    /// Write pulse width `t_write` (s).
    pub fn write_pulse(&self) -> f64 {
        self.t_write
    }

    /// Thermal attempt period τ (s); the paper assumes 1 ns.
    pub fn attempt_period(&self) -> f64 {
        self.tau
    }

    /// Resistance in the parallel (logic `0`) state (Ω).
    pub fn r_parallel(&self) -> f64 {
        self.r_parallel
    }

    /// Resistance in the anti-parallel (logic `1`) state (Ω).
    pub fn r_antiparallel(&self) -> f64 {
        self.r_antiparallel
    }

    /// Tunnel magneto-resistance ratio, `(R_ap - R_p) / R_p`.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = reap_mtj::MtjParams::default();
    /// assert!(p.tmr() > 0.5);
    /// ```
    pub fn tmr(&self) -> f64 {
        (self.r_antiparallel - self.r_parallel) / self.r_parallel
    }

    /// Read-current overdrive ratio `I_read / Ic0` (always < 1).
    pub fn read_overdrive(&self) -> f64 {
        self.i_read / self.ic0
    }

    /// Write-current overdrive ratio `I_write / Ic0` (always > 1).
    pub fn write_overdrive(&self) -> f64 {
        self.i_write / self.ic0
    }

    /// Returns a copy with a different read current.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `i_read` is not in `(0, Ic0)`.
    pub fn with_read_current(&self, i_read: f64) -> Result<Self, ParamsError> {
        MtjParamsBuilder::from(*self).read_current(i_read).build()
    }

    /// Returns a copy with a different thermal stability factor.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `delta` is not positive and finite.
    pub fn with_thermal_stability(&self, delta: f64) -> Result<Self, ParamsError> {
        MtjParamsBuilder::from(*self)
            .thermal_stability(delta)
            .build()
    }
}

impl Default for MtjParams {
    /// Calibrated 22 nm perpendicular-MTJ card.
    ///
    /// Δ = 60, Ic0 = 100 µA, I_read = 70 µA, I_write = 150 µA,
    /// t_read = 1 ns, t_write = 10 ns, τ = 1 ns, R_p = 3 kΩ, R_ap = 6 kΩ.
    /// Read disturbance ≈ 1.5 × 10⁻⁸ per read of a stored `1`.
    fn default() -> Self {
        Self {
            delta: 60.0,
            ic0: 100e-6,
            i_read: 70e-6,
            i_write: 150e-6,
            t_read: 1e-9,
            t_write: 10e-9,
            tau: 1e-9,
            r_parallel: 3_000.0,
            r_antiparallel: 6_000.0,
        }
    }
}

impl fmt::Display for MtjParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MTJ(Δ={:.1}, Ic0={:.1}µA, Iread={:.1}µA, Iwrite={:.1}µA, tread={:.2}ns)",
            self.delta,
            self.ic0 * 1e6,
            self.i_read * 1e6,
            self.i_write * 1e6,
            self.t_read * 1e9
        )
    }
}

/// Builder for [`MtjParams`] with validation on [`build`](Self::build).
///
/// # Examples
///
/// ```
/// use reap_mtj::MtjParamsBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = MtjParamsBuilder::new()
///     .critical_current(120e-6)
///     .read_current(80e-6)
///     .write_current(180e-6)
///     .build()?;
/// assert!(p.read_overdrive() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MtjParamsBuilder {
    params: MtjParams,
}

impl MtjParamsBuilder {
    /// Creates a builder seeded with the default parameter card.
    pub fn new() -> Self {
        Self {
            params: MtjParams::default(),
        }
    }

    /// Sets the thermal stability factor Δ.
    pub fn thermal_stability(mut self, delta: f64) -> Self {
        self.params.delta = delta;
        self
    }

    /// Sets the critical switching current Ic0 (A).
    pub fn critical_current(mut self, ic0: f64) -> Self {
        self.params.ic0 = ic0;
        self
    }

    /// Sets the read current (A).
    pub fn read_current(mut self, i_read: f64) -> Self {
        self.params.i_read = i_read;
        self
    }

    /// Sets the write current (A).
    pub fn write_current(mut self, i_write: f64) -> Self {
        self.params.i_write = i_write;
        self
    }

    /// Sets the read pulse width (s).
    pub fn read_pulse(mut self, t_read: f64) -> Self {
        self.params.t_read = t_read;
        self
    }

    /// Sets the write pulse width (s).
    pub fn write_pulse(mut self, t_write: f64) -> Self {
        self.params.t_write = t_write;
        self
    }

    /// Sets the thermal attempt period τ (s).
    pub fn attempt_period(mut self, tau: f64) -> Self {
        self.params.tau = tau;
        self
    }

    /// Sets the parallel-state resistance (Ω).
    pub fn r_parallel(mut self, r: f64) -> Self {
        self.params.r_parallel = r;
        self
    }

    /// Sets the anti-parallel-state resistance (Ω).
    pub fn r_antiparallel(mut self, r: f64) -> Self {
        self.params.r_antiparallel = r;
        self
    }

    /// Validates and produces the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] describing the first violated constraint:
    /// all quantities must be positive and finite, `I_read < Ic0`,
    /// `I_write > Ic0`, and `R_ap > R_p`.
    pub fn build(self) -> Result<MtjParams, ParamsError> {
        let p = self.params;
        fn pos(name: &'static str, v: f64) -> Result<(), ParamsError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(ParamsError::NotPositive { name, value: v })
            }
        }
        pos("delta", p.delta)?;
        pos("ic0", p.ic0)?;
        pos("i_read", p.i_read)?;
        pos("i_write", p.i_write)?;
        pos("t_read", p.t_read)?;
        pos("t_write", p.t_write)?;
        pos("tau", p.tau)?;
        pos("r_parallel", p.r_parallel)?;
        pos("r_antiparallel", p.r_antiparallel)?;
        if p.i_read >= p.ic0 {
            return Err(ParamsError::ReadCurrentTooHigh {
                i_read: p.i_read,
                ic0: p.ic0,
            });
        }
        if p.i_write <= p.ic0 {
            return Err(ParamsError::WriteCurrentTooLow {
                i_write: p.i_write,
                ic0: p.ic0,
            });
        }
        if p.r_antiparallel <= p.r_parallel {
            return Err(ParamsError::InvertedResistance {
                r_p: p.r_parallel,
                r_ap: p.r_antiparallel,
            });
        }
        Ok(p)
    }
}

impl Default for MtjParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl From<MtjParams> for MtjParamsBuilder {
    fn from(params: MtjParams) -> Self {
        Self { params }
    }
}

/// Error produced when validating [`MtjParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ParamsError {
    /// A quantity that must be positive and finite was not.
    NotPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The read current reaches or exceeds the critical current, so every
    /// read would be a destructive write.
    ReadCurrentTooHigh {
        /// Offending read current (A).
        i_read: f64,
        /// Critical current (A).
        ic0: f64,
    },
    /// The write current does not exceed the critical current, so writes
    /// would never complete deterministically.
    WriteCurrentTooLow {
        /// Offending write current (A).
        i_write: f64,
        /// Critical current (A).
        ic0: f64,
    },
    /// The anti-parallel resistance does not exceed the parallel resistance.
    InvertedResistance {
        /// Parallel-state resistance (Ω).
        r_p: f64,
        /// Anti-parallel-state resistance (Ω).
        r_ap: f64,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParamsError::NotPositive { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be positive and finite, got {value}"
                )
            }
            ParamsError::ReadCurrentTooHigh { i_read, ic0 } => write!(
                f,
                "read current {:.3e} A must be below the critical current {:.3e} A",
                i_read, ic0
            ),
            ParamsError::WriteCurrentTooLow { i_write, ic0 } => write!(
                f,
                "write current {:.3e} A must exceed the critical current {:.3e} A",
                i_write, ic0
            ),
            ParamsError::InvertedResistance { r_p, r_ap } => write!(
                f,
                "anti-parallel resistance {r_ap} Ω must exceed parallel resistance {r_p} Ω"
            ),
        }
    }
}

impl Error for ParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_card_is_valid() {
        let p = MtjParams::default();
        assert!(MtjParamsBuilder::from(p).build().is_ok());
    }

    #[test]
    fn default_overdrives_are_sane() {
        let p = MtjParams::default();
        assert!(p.read_overdrive() > 0.0 && p.read_overdrive() < 1.0);
        assert!(p.write_overdrive() > 1.0);
    }

    #[test]
    fn tmr_of_default_card() {
        let p = MtjParams::default();
        assert!(
            (p.tmr() - 1.0).abs() < 1e-12,
            "Rap=2Rp gives TMR of exactly 1"
        );
    }

    #[test]
    fn rejects_read_current_above_critical() {
        let err = MtjParams::builder()
            .read_current(200e-6)
            .build()
            .unwrap_err();
        assert!(matches!(err, ParamsError::ReadCurrentTooHigh { .. }));
    }

    #[test]
    fn rejects_write_current_below_critical() {
        let err = MtjParams::builder()
            .write_current(50e-6)
            .build()
            .unwrap_err();
        assert!(matches!(err, ParamsError::WriteCurrentTooLow { .. }));
    }

    #[test]
    fn rejects_negative_delta() {
        let err = MtjParams::builder()
            .thermal_stability(-3.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ParamsError::NotPositive { name: "delta", .. }
        ));
    }

    #[test]
    fn rejects_nan_pulse() {
        let err = MtjParams::builder()
            .read_pulse(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ParamsError::NotPositive { name: "t_read", .. }
        ));
    }

    #[test]
    fn rejects_inverted_resistances() {
        let err = MtjParams::builder()
            .r_antiparallel(1_000.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ParamsError::InvertedResistance { .. }));
    }

    #[test]
    fn with_read_current_round_trips() {
        let p = MtjParams::default().with_read_current(42e-6).unwrap();
        assert_eq!(p.read_current(), 42e-6);
        // Unrelated fields untouched.
        assert_eq!(
            p.thermal_stability(),
            MtjParams::default().thermal_stability()
        );
    }

    #[test]
    fn display_mentions_key_parameters() {
        let s = MtjParams::default().to_string();
        assert!(s.contains("Δ=60.0"));
        assert!(s.contains("Ic0=100.0µA"));
    }

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let err = MtjParams::builder()
            .read_current(200e-6)
            .build()
            .unwrap_err();
        let s = err.to_string();
        assert!(s.starts_with("read current"));
        assert!(!s.ends_with('.'));
    }
}
