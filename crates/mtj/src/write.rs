//! Write-error-rate model for the programming pulse.
//!
//! Writing an MTJ applies a current above `Ic0`. Switching is still
//! stochastic: the cell switches with a rate that grows with the overdrive
//! `I_write / Ic0 - 1`. We use the thermal-activation form (Sun model,
//! extended past `Ic0`), the same family of expressions the paper's
//! references refs. 12/13 of the paper use:
//!
//! ```text
//! tau_sw = tau * exp( Delta * (1 - I_write/Ic0) )      (< tau, since I > Ic0)
//! WER    = exp( -t_write / tau_sw )
//! ```
//!
//! The write-error rate matters for the disruptive-reading-and-restoring
//! baseline (§II of the paper): restoring after every read performs extra
//! writes, each of which can fail with this probability.

use crate::params::MtjParams;

/// Probability that a write pulse fails to switch the cell (WER).
///
/// # Examples
///
/// ```
/// use reap_mtj::{write_error_rate, MtjParams};
///
/// let wer = write_error_rate(&MtjParams::default());
/// assert!(wer < 1e-12, "a 10 ns pulse at 1.5x overdrive is reliable: {wer}");
/// ```
pub fn write_error_rate(params: &MtjParams) -> f64 {
    ln_write_error_rate(params).exp()
}

/// Natural logarithm of the write-error rate.
///
/// WER values underflow `f64` at realistic overdrives (e.g. the default
/// card gives `ln WER ≈ -2e13`); use this form when comparing or summing
/// write-error rates.
///
/// # Examples
///
/// ```
/// use reap_mtj::MtjParams;
/// use reap_mtj::write::ln_write_error_rate;
///
/// assert!(ln_write_error_rate(&MtjParams::default()) < -1e6);
/// ```
pub fn ln_write_error_rate(params: &MtjParams) -> f64 {
    -params.write_pulse() / switching_time(params)
}

/// Characteristic switching time (s) of the write pulse.
///
/// # Examples
///
/// ```
/// use reap_mtj::MtjParams;
/// use reap_mtj::write::switching_time;
///
/// let t = switching_time(&MtjParams::default());
/// assert!(t < MtjParams::default().attempt_period());
/// ```
pub fn switching_time(params: &MtjParams) -> f64 {
    let exponent = params.thermal_stability() * (1.0 - params.write_overdrive());
    params.attempt_period() * exponent.exp()
}

/// Write pulse width (s) needed to reach a target write-error rate.
///
/// Returns `None` if `target` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use reap_mtj::{write_error_rate, MtjParams};
/// use reap_mtj::write::pulse_for_error_rate;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = MtjParams::default();
/// let t = pulse_for_error_rate(&params, 1e-15).expect("in range");
/// let tuned = reap_mtj::MtjParamsBuilder::from(params).write_pulse(t).build()?;
/// assert!((write_error_rate(&tuned).log10() - (-15.0)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn pulse_for_error_rate(params: &MtjParams, target: f64) -> Option<f64> {
    if !(target > 0.0 && target < 1.0) {
        return None;
    }
    Some(-target.ln() * switching_time(params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MtjParamsBuilder;

    #[test]
    fn wer_decreases_with_longer_pulse() {
        let short = MtjParamsBuilder::new().write_pulse(2e-9).build().unwrap();
        let long = MtjParamsBuilder::new().write_pulse(20e-9).build().unwrap();
        assert!(ln_write_error_rate(&long) < ln_write_error_rate(&short));
    }

    #[test]
    fn wer_decreases_with_higher_current() {
        let weak = MtjParamsBuilder::new()
            .write_current(120e-6)
            .build()
            .unwrap();
        let strong = MtjParamsBuilder::new()
            .write_current(200e-6)
            .build()
            .unwrap();
        assert!(ln_write_error_rate(&strong) < ln_write_error_rate(&weak));
    }

    #[test]
    fn wer_is_representable_at_mild_overdrive() {
        // 1.05x overdrive, 1 ns pulse: tau_sw = 1ns * e^{-3} => WER = e^{-e^3}.
        let mild = MtjParamsBuilder::new()
            .write_current(105e-6)
            .write_pulse(1e-9)
            .build()
            .unwrap();
        let wer = write_error_rate(&mild);
        assert!(wer > 0.0 && wer < 1.0);
        let expected = (-(3.0_f64).exp()).exp();
        assert!((wer / expected - 1.0).abs() < 1e-9);
    }

    #[test]
    fn switching_faster_than_attempt_period_above_critical() {
        let p = MtjParams::default();
        assert!(switching_time(&p) < p.attempt_period());
    }

    #[test]
    fn pulse_for_error_rate_round_trips() {
        let p = MtjParams::default();
        let t = pulse_for_error_rate(&p, 1e-12).unwrap();
        let tuned = MtjParamsBuilder::from(p).write_pulse(t).build().unwrap();
        let wer = write_error_rate(&tuned);
        assert!((wer / 1e-12 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pulse_for_error_rate_rejects_bad_targets() {
        let p = MtjParams::default();
        assert_eq!(pulse_for_error_rate(&p, 0.0), None);
        assert_eq!(pulse_for_error_rate(&p, 1.0), None);
        assert_eq!(pulse_for_error_rate(&p, -0.5), None);
    }
}
