//! Temperature dependence of the MTJ parameters.
//!
//! The thermal stability factor is an energy barrier over `k_B·T`:
//! `Δ(T) = E_b(T) / (k_B·T)`, and the barrier itself softens as the
//! free-layer magnetization `M_s(T)` decreases toward the Curie point:
//! `E_b ∝ M_s²(T)` with `M_s(T) ≈ M_s(0)·(1 − T/T_c)^0.5` (mean-field).
//! The critical current scales with the same barrier. Read disturbance is
//! exponential in Δ, so a hot die is *dramatically* more disturb-prone —
//! the reason cache-level mitigation must hold margin at `T_max`, not at
//! room temperature.

use crate::params::{MtjParams, MtjParamsBuilder, ParamsError};

/// Reference temperature at which a card's Δ and Ic0 are specified (K).
pub const REFERENCE_TEMPERATURE: f64 = 300.0;

/// Curie temperature of the CoFeB free layer (K).
pub const CURIE_TEMPERATURE: f64 = 700.0;

/// Rescales a parameter card from [`REFERENCE_TEMPERATURE`] to the
/// operating temperature `t_kelvin`.
///
/// Both the thermal stability factor and the critical current are scaled
/// by the barrier softening `(1 − T/T_c) / (1 − T_ref/T_c)` and Δ
/// additionally by `T_ref / T` (it is a barrier *per thermal energy*).
///
/// # Errors
///
/// Returns [`ParamsError`] if the scaled card becomes invalid (e.g. the
/// critical current drops to or below the read current near the Curie
/// point) or `t_kelvin` is outside `(0, T_c)`.
///
/// # Examples
///
/// ```
/// use reap_mtj::temperature::at_temperature;
/// use reap_mtj::{read_disturbance_probability, MtjParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cold = MtjParams::default();
/// let hot = at_temperature(&cold, 360.0)?;
/// assert!(hot.thermal_stability() < cold.thermal_stability());
/// assert!(read_disturbance_probability(&hot) > read_disturbance_probability(&cold));
/// # Ok(())
/// # }
/// ```
pub fn at_temperature(card: &MtjParams, t_kelvin: f64) -> Result<MtjParams, ParamsError> {
    if !(t_kelvin > 0.0 && t_kelvin < CURIE_TEMPERATURE) {
        return Err(ParamsError::NotPositive {
            name: "t_kelvin",
            value: t_kelvin,
        });
    }
    let softening =
        (1.0 - t_kelvin / CURIE_TEMPERATURE) / (1.0 - REFERENCE_TEMPERATURE / CURIE_TEMPERATURE);
    let delta = card.thermal_stability() * softening * (REFERENCE_TEMPERATURE / t_kelvin);
    let ic0 = card.critical_current() * softening;
    MtjParamsBuilder::from(*card)
        .thermal_stability(delta)
        .critical_current(ic0)
        .build()
}

/// The highest operating temperature (K) at which the card still meets a
/// target read-disturbance probability, found by bisection over
/// `[REFERENCE_TEMPERATURE, T_c)`.
///
/// Returns `None` if even the reference temperature misses the target, or
/// every temperature up to the search ceiling meets it.
///
/// # Examples
///
/// ```
/// use reap_mtj::temperature::max_operating_temperature;
/// use reap_mtj::MtjParams;
///
/// let t = max_operating_temperature(&MtjParams::default(), 1e-6).expect("bounded");
/// assert!(t > 300.0 && t < 700.0);
/// ```
pub fn max_operating_temperature(card: &MtjParams, p_target: f64) -> Option<f64> {
    let p_at = |t: f64| {
        at_temperature(card, t).map(|c| crate::disturbance::read_disturbance_probability(&c))
    };
    let p_ref = p_at(REFERENCE_TEMPERATURE).ok()?;
    if p_ref > p_target {
        return None;
    }
    let ceiling = CURIE_TEMPERATURE - 1.0;
    match p_at(ceiling) {
        Ok(p) if p <= p_target => return None, // never violated below ceiling
        _ => {}
    }
    let (mut lo, mut hi) = (REFERENCE_TEMPERATURE, ceiling);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        match p_at(mid) {
            Ok(p) if p <= p_target => lo = mid,
            _ => hi = mid,
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disturbance::read_disturbance_probability;

    #[test]
    fn reference_temperature_is_identity() {
        let card = MtjParams::default();
        let same = at_temperature(&card, REFERENCE_TEMPERATURE).unwrap();
        assert!((same.thermal_stability() - card.thermal_stability()).abs() < 1e-9);
        assert!((same.critical_current() - card.critical_current()).abs() < 1e-12);
    }

    #[test]
    fn heating_softens_the_barrier() {
        let card = MtjParams::default();
        let mut last_delta = card.thermal_stability();
        let mut last_p = read_disturbance_probability(&card);
        for t in [320.0, 350.0, 380.0, 400.0] {
            let hot = at_temperature(&card, t).unwrap();
            assert!(hot.thermal_stability() < last_delta, "Δ must fall with T");
            let p = read_disturbance_probability(&hot);
            assert!(p > last_p, "P_rd must rise with T");
            last_delta = hot.thermal_stability();
            last_p = p;
        }
    }

    #[test]
    fn cooling_hardens_the_barrier() {
        let card = MtjParams::default();
        let cold = at_temperature(&card, 250.0).unwrap();
        assert!(cold.thermal_stability() > card.thermal_stability());
    }

    #[test]
    fn out_of_range_temperatures_rejected() {
        let card = MtjParams::default();
        assert!(at_temperature(&card, 0.0).is_err());
        assert!(at_temperature(&card, -10.0).is_err());
        assert!(at_temperature(&card, CURIE_TEMPERATURE).is_err());
    }

    #[test]
    fn near_curie_card_becomes_invalid() {
        // Ic0 collapses below I_read well before T_c.
        let card = MtjParams::default();
        assert!(at_temperature(&card, 660.0).is_err());
    }

    #[test]
    fn max_operating_temperature_brackets_the_target() {
        let card = MtjParams::default();
        let target = 1e-6;
        let t = max_operating_temperature(&card, target).unwrap();
        let p_at_t = read_disturbance_probability(&at_temperature(&card, t).unwrap());
        let p_above = read_disturbance_probability(&at_temperature(&card, t + 2.0).unwrap());
        assert!(p_at_t <= target * 1.001, "p({t}) = {p_at_t}");
        assert!(p_above > target, "p({}) = {p_above}", t + 2.0);
    }

    #[test]
    fn unreachable_targets_return_none() {
        let card = MtjParams::default();
        // Already violated at the reference temperature.
        assert_eq!(max_operating_temperature(&card, 1e-12), None);
    }
}
