//! Read-disturbance probability model (Eq. (1) of the paper).

use crate::params::MtjParams;

/// Thermally-activated switching *rate* (1/s) of a stored `1` under the read
/// current, i.e. the argument of the outer exponential in Eq. (1) divided by
/// the pulse width.
///
/// `rate = (1/tau) * exp(-Delta * (1 - I_read/Ic0))`
///
/// # Examples
///
/// ```
/// use reap_mtj::{MtjParams, read_disturbance_rate};
///
/// let r = read_disturbance_rate(&MtjParams::default());
/// assert!(r > 0.0);
/// ```
pub fn read_disturbance_rate(params: &MtjParams) -> f64 {
    let exponent = -params.thermal_stability() * (1.0 - params.read_overdrive());
    exponent.exp() / params.attempt_period()
}

/// Probability that a single read of a stored `1` flips the cell to `0`
/// (Eq. (1)).
///
/// Computed as `-expm1(-t_read * rate)` for numerical accuracy at the tiny
/// probabilities (≈ 1e-8 and below) the model operates at.
///
/// # Examples
///
/// ```
/// use reap_mtj::{MtjParams, read_disturbance_probability};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nominal = read_disturbance_probability(&MtjParams::default());
/// // Raising the read current raises the disturbance probability.
/// let hot = MtjParams::default().with_read_current(90e-6)?;
/// assert!(read_disturbance_probability(&hot) > nominal);
/// # Ok(())
/// # }
/// ```
pub fn read_disturbance_probability(params: &MtjParams) -> f64 {
    let lambda = read_disturbance_rate(params) * params.read_pulse();
    -(-lambda).exp_m1()
}

/// Solves Eq. (1) for the read current that yields a target disturbance
/// probability, holding every other parameter fixed.
///
/// Useful for design-space exploration: "how much read-current margin does a
/// target error rate leave?". Returns `None` when the target is not
/// reachable with `0 < I_read < Ic0` (e.g. a target above the probability at
/// `I_read → Ic0`, or a target below the probability at `I_read → 0`).
///
/// # Examples
///
/// ```
/// use reap_mtj::{MtjParams, read_current_for_probability, read_disturbance_probability};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = MtjParams::default();
/// let i = read_current_for_probability(&params, 1e-6).expect("reachable");
/// let check = params.with_read_current(i)?;
/// let p = read_disturbance_probability(&check);
/// assert!((p.log10() - (-6.0)).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn read_current_for_probability(params: &MtjParams, target: f64) -> Option<f64> {
    if !(target > 0.0 && target < 1.0) {
        return None;
    }
    // Invert analytically: p = 1 - exp(-(t/tau) e^{-Δ(1-I/Ic0)})
    //   => -ln(1-p) * tau/t = e^{-Δ(1-I/Ic0)}
    //   => 1 - I/Ic0 = -ln( -ln(1-p) * tau/t ) / Δ
    let lhs = -(-target).ln_1p() * params.attempt_period() / params.read_pulse();
    if lhs <= 0.0 {
        return None;
    }
    let one_minus_ratio = -lhs.ln() / params.thermal_stability();
    let ratio = 1.0 - one_minus_ratio;
    if ratio <= 0.0 || ratio >= 1.0 {
        return None;
    }
    Some(ratio * params.critical_current())
}

/// A parameter sweep over read current, producing `(I_read, P_rd)` pairs.
///
/// The iterator yields `points` evenly spaced currents in
/// `[i_min, i_max]` (inclusive), clamped to stay strictly below `Ic0`.
///
/// # Examples
///
/// ```
/// use reap_mtj::{DisturbanceSweep, MtjParams};
///
/// let sweep = DisturbanceSweep::over_read_current(MtjParams::default(), 40e-6, 90e-6, 6);
/// let pts: Vec<(f64, f64)> = sweep.collect();
/// assert_eq!(pts.len(), 6);
/// // Monotonically increasing in current.
/// assert!(pts.windows(2).all(|w| w[1].1 >= w[0].1));
/// ```
#[derive(Debug, Clone)]
pub struct DisturbanceSweep {
    params: MtjParams,
    i_min: f64,
    i_max: f64,
    points: usize,
    next: usize,
}

impl DisturbanceSweep {
    /// Creates a sweep over read current in `[i_min, i_max]` with `points`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `points == 0` or `i_min > i_max`.
    pub fn over_read_current(params: MtjParams, i_min: f64, i_max: f64, points: usize) -> Self {
        assert!(points > 0, "sweep needs at least one point");
        assert!(i_min <= i_max, "sweep range is inverted");
        Self {
            params,
            i_min,
            i_max,
            points,
            next: 0,
        }
    }
}

impl Iterator for DisturbanceSweep {
    type Item = (f64, f64);

    fn next(&mut self) -> Option<(f64, f64)> {
        if self.next >= self.points {
            return None;
        }
        let t = if self.points == 1 {
            0.0
        } else {
            self.next as f64 / (self.points - 1) as f64
        };
        self.next += 1;
        let raw = self.i_min + t * (self.i_max - self.i_min);
        // Stay strictly inside the valid read-current range.
        let i = raw.min(self.params.critical_current() * (1.0 - 1e-9));
        let p = self
            .params
            .with_read_current(i)
            .map(|pp| read_disturbance_probability(&pp))
            .unwrap_or(f64::NAN);
        Some((i, p))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.points - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for DisturbanceSweep {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_probability_matches_paper_operating_point() {
        // Δ=60, I/Ic0=0.7, t=τ  =>  p = 1 - exp(-e^{-18}) ≈ 1.523e-8.
        let p = read_disturbance_probability(&MtjParams::default());
        let expected = (-18.0_f64).exp();
        assert!(
            (p - expected).abs() / expected < 1e-6,
            "p = {p}, expected ≈ {expected}"
        );
    }

    #[test]
    fn probability_increases_with_current() {
        let base = MtjParams::default();
        let mut last = 0.0;
        for ua in [30.0, 50.0, 70.0, 90.0, 99.0] {
            let p = read_disturbance_probability(&base.with_read_current(ua * 1e-6).unwrap());
            assert!(p > last, "p({ua}µA) = {p} not > {last}");
            last = p;
        }
    }

    #[test]
    fn probability_decreases_with_stability() {
        let lo = MtjParams::default().with_thermal_stability(40.0).unwrap();
        let hi = MtjParams::default().with_thermal_stability(80.0).unwrap();
        assert!(read_disturbance_probability(&lo) > read_disturbance_probability(&hi));
    }

    #[test]
    fn probability_scales_linearly_with_pulse_width_when_small() {
        let p1 = read_disturbance_probability(&MtjParams::default());
        let long = MtjParams::builder().read_pulse(2e-9).build().unwrap();
        let p2 = read_disturbance_probability(&long);
        assert!(
            (p2 / p1 - 2.0).abs() < 1e-6,
            "doubling t_read should double tiny p"
        );
    }

    #[test]
    fn inverse_solver_round_trips() {
        let params = MtjParams::default();
        for target in [1e-10, 1e-8, 1e-6, 1e-4] {
            let i = read_current_for_probability(&params, target).expect("reachable");
            let p = read_disturbance_probability(&params.with_read_current(i).unwrap());
            assert!(
                (p / target - 1.0).abs() < 1e-9,
                "target {target}: got {p} at I={i}"
            );
        }
    }

    #[test]
    fn inverse_solver_rejects_unreachable_targets() {
        let params = MtjParams::default();
        assert_eq!(read_current_for_probability(&params, 0.0), None);
        assert_eq!(read_current_for_probability(&params, 1.0), None);
        // Probability at I→Ic0 is ~1-exp(-1)≈0.63; 0.99 is unreachable.
        assert_eq!(read_current_for_probability(&params, 0.99), None);
        // Probability at I→0 is ~e^{-60}; far below that is unreachable.
        assert_eq!(read_current_for_probability(&params, 1e-300), None);
    }

    #[test]
    fn sweep_covers_range_inclusively() {
        let pts: Vec<_> =
            DisturbanceSweep::over_read_current(MtjParams::default(), 40e-6, 80e-6, 5).collect();
        assert_eq!(pts.len(), 5);
        assert!((pts[0].0 - 40e-6).abs() < 1e-18);
        assert!((pts[4].0 - 80e-6).abs() < 1e-18);
    }

    #[test]
    fn sweep_single_point_sits_at_minimum() {
        let pts: Vec<_> =
            DisturbanceSweep::over_read_current(MtjParams::default(), 55e-6, 80e-6, 1).collect();
        assert_eq!(pts.len(), 1);
        assert!((pts[0].0 - 55e-6).abs() < 1e-18);
    }

    #[test]
    fn sweep_clamps_below_critical_current() {
        let pts: Vec<_> =
            DisturbanceSweep::over_read_current(MtjParams::default(), 90e-6, 200e-6, 3).collect();
        for (i, p) in pts {
            assert!(i < 100e-6);
            assert!(p.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn sweep_rejects_zero_points() {
        let _ = DisturbanceSweep::over_read_current(MtjParams::default(), 1e-6, 2e-6, 0);
    }
}
