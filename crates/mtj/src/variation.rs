//! Process variation: per-cell parameter sampling.
//!
//! Fabricated MTJs deviate from the nominal card: the thermal stability
//! factor and critical current vary (approximately Gaussian) with oxide
//! thickness and free-layer geometry, and the two resistance states vary
//! log-normally. Variation widens the tail of the read-disturbance
//! distribution — the worst cells dominate the block failure probability —
//! so Monte-Carlo experiments sample per-cell parameters through this model.

use crate::disturbance::read_disturbance_probability;
use crate::params::MtjParams;
use rand::Rng;

/// Relative (σ/µ) process-variation magnitudes for the cell parameters.
///
/// # Examples
///
/// ```
/// use reap_mtj::VariationModel;
///
/// let v = VariationModel::new(0.05, 0.04, 0.03);
/// assert_eq!(v.sigma_delta(), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    sigma_delta: f64,
    sigma_ic0: f64,
    sigma_resistance: f64,
}

impl VariationModel {
    /// Creates a variation model from relative sigmas for Δ, Ic0 and the
    /// resistances.
    ///
    /// # Panics
    ///
    /// Panics if any sigma is negative or not finite.
    pub fn new(sigma_delta: f64, sigma_ic0: f64, sigma_resistance: f64) -> Self {
        for (name, s) in [
            ("sigma_delta", sigma_delta),
            ("sigma_ic0", sigma_ic0),
            ("sigma_resistance", sigma_resistance),
        ] {
            assert!(
                s.is_finite() && s >= 0.0,
                "{name} must be finite and non-negative"
            );
        }
        Self {
            sigma_delta,
            sigma_ic0,
            sigma_resistance,
        }
    }

    /// A model with no variation: every sampled cell equals the nominal card.
    pub fn none() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Typical 22 nm variation magnitudes (σΔ/Δ = 5 %, σIc0/Ic0 = 4 %,
    /// σR/R = 3 %).
    pub fn typical() -> Self {
        Self::new(0.05, 0.04, 0.03)
    }

    /// Relative sigma of the thermal stability factor.
    pub fn sigma_delta(&self) -> f64 {
        self.sigma_delta
    }

    /// Relative sigma of the critical current.
    pub fn sigma_ic0(&self) -> f64 {
        self.sigma_ic0
    }

    /// Relative sigma of the resistance states.
    pub fn sigma_resistance(&self) -> f64 {
        self.sigma_resistance
    }

    /// Samples one cell's parameters around the `nominal` card.
    ///
    /// Sampled values are clamped so the card stays physically valid
    /// (`I_read < Ic0 < I_write`, positive resistances); the clamp only
    /// engages beyond ±4σ at the [`typical`](Self::typical) magnitudes.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use reap_mtj::{MtjParams, VariationModel};
    ///
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let sample = VariationModel::typical().sample(&MtjParams::default(), &mut rng);
    /// assert!(sample.params.thermal_stability() > 0.0);
    /// ```
    pub fn sample<R: Rng + ?Sized>(&self, nominal: &MtjParams, rng: &mut R) -> CellSample {
        let delta = gaussian(rng, nominal.thermal_stability(), self.sigma_delta)
            .max(nominal.thermal_stability() * 0.2);
        // Keep Ic0 strictly between I_read and I_write so the card stays valid.
        let ic0_lo = nominal.read_current() * 1.01;
        let ic0_hi = nominal.write_current() * 0.99;
        let ic0 = gaussian(rng, nominal.critical_current(), self.sigma_ic0).clamp(ic0_lo, ic0_hi);
        let r_p = lognormal(rng, nominal.r_parallel(), self.sigma_resistance);
        let r_ap_nominal = nominal.r_antiparallel() / nominal.r_parallel() * r_p;
        let r_ap = lognormal(rng, r_ap_nominal, self.sigma_resistance).max(r_p * 1.05);

        let params = crate::params::MtjParamsBuilder::from(*nominal)
            .thermal_stability(delta)
            .critical_current(ic0)
            .r_parallel(r_p)
            .r_antiparallel(r_ap)
            .build()
            .expect("clamped sample must be valid");
        let read_disturbance = read_disturbance_probability(&params);
        CellSample {
            params,
            read_disturbance,
        }
    }

    /// Samples `count` cells and returns the empirical mean and maximum
    /// read-disturbance probability — the figure of merit the tail of the
    /// variation distribution controls.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use reap_mtj::{MtjParams, VariationModel};
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let (mean, max) = VariationModel::typical()
    ///     .disturbance_statistics(&MtjParams::default(), 1_000, &mut rng);
    /// assert!(max >= mean);
    /// ```
    pub fn disturbance_statistics<R: Rng + ?Sized>(
        &self,
        nominal: &MtjParams,
        count: usize,
        rng: &mut R,
    ) -> (f64, f64) {
        assert!(count > 0, "need at least one sample");
        let mut sum = 0.0;
        let mut max = 0.0_f64;
        for _ in 0..count {
            let p = self.sample(nominal, rng).read_disturbance;
            sum += p;
            max = max.max(p);
        }
        (sum / count as f64, max)
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::typical()
    }
}

/// One sampled cell: its parameter card and the derived per-read
/// disturbance probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSample {
    /// The sampled parameter card.
    pub params: MtjParams,
    /// Read-disturbance probability of this particular cell.
    pub read_disturbance: f64,
}

/// Box–Muller Gaussian sample with mean `mu` and relative sigma
/// `rel_sigma` (σ = µ·rel_sigma).
fn gaussian<R: Rng + ?Sized>(rng: &mut R, mu: f64, rel_sigma: f64) -> f64 {
    if rel_sigma == 0.0 {
        return mu;
    }
    mu + mu * rel_sigma * standard_normal(rng)
}

/// Log-normal sample whose median is `median` and whose log-sigma equals
/// `rel_sigma` (a good approximation of relative sigma for small values).
fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, rel_sigma: f64) -> f64 {
    if rel_sigma == 0.0 {
        return median;
    }
    median * (rel_sigma * standard_normal(rng)).exp()
}

/// Standard normal variate via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 (ln of zero).
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_variation_reproduces_nominal() {
        let mut rng = StdRng::seed_from_u64(3);
        let nominal = MtjParams::default();
        let s = VariationModel::none().sample(&nominal, &mut rng);
        assert_eq!(s.params, nominal);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let nominal = MtjParams::default();
        let a = VariationModel::typical().sample(&nominal, &mut StdRng::seed_from_u64(42));
        let b = VariationModel::typical().sample(&nominal, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn samples_stay_physically_valid() {
        let mut rng = StdRng::seed_from_u64(9);
        let nominal = MtjParams::default();
        let model = VariationModel::new(0.2, 0.2, 0.2); // extreme variation
        for _ in 0..2_000 {
            let s = model.sample(&nominal, &mut rng);
            assert!(s.params.read_overdrive() < 1.0);
            assert!(s.params.write_overdrive() > 1.0);
            assert!(s.params.r_antiparallel() > s.params.r_parallel());
            assert!(s.read_disturbance > 0.0 && s.read_disturbance < 1.0);
        }
    }

    #[test]
    fn sample_mean_delta_near_nominal() {
        let mut rng = StdRng::seed_from_u64(11);
        let nominal = MtjParams::default();
        let model = VariationModel::typical();
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| model.sample(&nominal, &mut rng).params.thermal_stability())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean / nominal.thermal_stability() - 1.0).abs() < 0.01,
            "mean Δ = {mean}"
        );
    }

    #[test]
    fn variation_raises_mean_disturbance() {
        // Because p is convex (exponential) in Δ, E[p(Δ)] > p(E[Δ]).
        let nominal = MtjParams::default();
        let p_nominal = read_disturbance_probability(&nominal);
        let mut rng = StdRng::seed_from_u64(5);
        let (mean, max) =
            VariationModel::typical().disturbance_statistics(&nominal, 20_000, &mut rng);
        assert!(
            mean > p_nominal,
            "mean {mean} should exceed nominal {p_nominal}"
        );
        assert!(max > 10.0 * p_nominal, "tail cells dominate: max {max}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        let _ = VariationModel::new(-0.1, 0.0, 0.0);
    }
}
