//! Bit-packed array of STT-MRAM cells with stochastic read disturbance.
//!
//! [`MtjArray`] backs the Monte-Carlo experiments: it stores actual bit
//! contents (e.g. one cache line's data + ECC check bits) and injects
//! `1 → 0` flips on every read according to a per-read probability. For
//! efficiency the array is bit-packed in `u64` words and the number of flips
//! per read is drawn from the exact per-bit Bernoulli process (each stored
//! `1` is tested independently), which is what the analytical model in
//! `reap-reliability` assumes.

use crate::disturbance::read_disturbance_probability;
use crate::params::MtjParams;
use rand::Rng;

/// A fixed-width array of MTJ cells storing raw bits.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use reap_mtj::{MtjArray, MtjParams};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut line = MtjArray::new(512, MtjParams::default());
/// line.write_bytes(&[0xFF; 64]);
/// assert_eq!(line.count_ones(), 512);
/// let data = line.read(&mut rng);
/// assert_eq!(data.len(), 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MtjArray {
    words: Vec<u64>,
    bits: usize,
    read_disturbance: f64,
}

impl MtjArray {
    /// Creates an array of `bits` cells, all in the `0` state, using the
    /// disturbance probability derived from `params`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn new(bits: usize, params: MtjParams) -> Self {
        Self::with_probability(bits, read_disturbance_probability(&params))
    }

    /// Creates an array with an explicit per-read, per-cell disturbance
    /// probability (used to amplify error rates in Monte-Carlo runs).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `p` is outside `[0, 1]`.
    pub fn with_probability(bits: usize, p: f64) -> Self {
        assert!(bits > 0, "array needs at least one cell");
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let words = vec![0u64; bits.div_ceil(64)];
        Self {
            words,
            bits,
            read_disturbance: p,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether the array has zero cells (never true: construction requires
    /// at least one cell).
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// The per-read, per-cell disturbance probability in force.
    pub fn read_disturbance(&self) -> f64 {
        self.read_disturbance
    }

    /// Number of cells currently storing `1` — the `n` of Eqs. (2)–(6).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Writes raw bytes into the array (deterministic; writing heals any
    /// accumulated disturbance). Extra bits beyond `bytes` are cleared.
    /// A zero-padded partial final byte is accepted, so a codeword whose
    /// width is not a multiple of 8 (e.g. a 78-bit BCH word in 10 bytes)
    /// round-trips through an array of exactly its width.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds more bytes than the array's rounded-up
    /// byte width, or if any *set* bit falls at or past [`Self::len`].
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        assert!(
            bytes.len() <= self.bits.div_ceil(8),
            "payload wider than array"
        );
        let rem = self.bits % 8;
        if rem != 0 && bytes.len() == self.bits.div_ceil(8) {
            assert!(
                bytes[bytes.len() - 1] >> rem == 0,
                "payload sets bits past the array width"
            );
        }
        self.words.fill(0);
        for (i, &b) in bytes.iter().enumerate() {
            self.words[i / 8] |= u64::from(b) << ((i % 8) * 8);
        }
        self.mask_tail();
    }

    /// Sets or clears a single bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.bits, "bit index {index} out of range");
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Reads a single bit without disturbance (an ideal probe, for tests
    /// and assertions).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get_bit(&self, index: usize) -> bool {
        assert!(index < self.bits, "bit index {index} out of range");
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Performs a destructive-capable read of the whole array: every stored
    /// `1` independently flips to `0` with the configured probability, and
    /// the returned bytes reflect the post-flip contents.
    ///
    /// Returns `len().div_ceil(8)` bytes, little-endian bit order within
    /// each byte.
    pub fn read<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<u8> {
        self.disturb(rng);
        self.snapshot()
    }

    /// Applies one read's worth of disturbance without returning data
    /// (models a concealed read, where the data is discarded at the MUX).
    /// Returns the number of bits flipped by this read.
    pub fn disturb<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        if self.read_disturbance == 0.0 {
            return 0;
        }
        let mut flipped = 0;
        for wi in 0..self.words.len() {
            let mut w = self.words[wi];
            if w == 0 {
                continue;
            }
            let mut clear = 0u64;
            while w != 0 {
                let bit = w.trailing_zeros();
                w &= w - 1;
                if rng.gen::<f64>() < self.read_disturbance {
                    clear |= 1u64 << bit;
                    flipped += 1;
                }
            }
            self.words[wi] &= !clear;
        }
        flipped
    }

    /// Copies the current contents out as bytes without disturbing them
    /// (an ideal probe).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.div_ceil(8)];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = (self.words[i / 8] >> ((i % 8) * 8)) as u8;
        }
        out
    }

    fn mask_tail(&mut self) {
        let rem = self.bits % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn write_read_round_trip_without_disturbance() {
        let mut a = MtjArray::with_probability(512, 0.0);
        let payload: Vec<u8> = (0..64).map(|i| i as u8).collect();
        a.write_bytes(&payload);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(a.read(&mut rng), payload);
    }

    #[test]
    fn count_ones_matches_payload() {
        let mut a = MtjArray::with_probability(64, 0.0);
        a.write_bytes(&[0b1010_1010; 8]);
        assert_eq!(a.count_ones(), 32);
    }

    #[test]
    fn non_byte_aligned_width_accepts_zero_padded_payload() {
        // A 78-bit codeword serialises to 10 bytes with two zero tail
        // bits; the array must round-trip it (BCH t=2 over 64-bit data).
        let mut a = MtjArray::with_probability(78, 0.0);
        let mut payload = [0xFFu8; 10];
        payload[9] = 0b0011_1111; // bits 72..78 set, 78..80 clear
        a.write_bytes(&payload);
        assert_eq!(a.count_ones(), 78);
        assert_eq!(a.snapshot(), payload);
    }

    #[test]
    #[should_panic(expected = "past the array width")]
    fn set_bits_past_the_width_are_rejected() {
        let mut a = MtjArray::with_probability(78, 0.0);
        let mut payload = [0u8; 10];
        payload[9] = 0b0100_0000; // bit 78 — outside the array
        a.write_bytes(&payload);
    }

    #[test]
    #[should_panic(expected = "payload wider than array")]
    fn too_many_bytes_are_rejected() {
        let mut a = MtjArray::with_probability(78, 0.0);
        a.write_bytes(&[0u8; 11]);
    }

    #[test]
    fn set_and_get_bit() {
        let mut a = MtjArray::with_probability(100, 0.0);
        a.set_bit(99, true);
        assert!(a.get_bit(99));
        assert_eq!(a.count_ones(), 1);
        a.set_bit(99, false);
        assert_eq!(a.count_ones(), 0);
    }

    #[test]
    fn probability_one_wipes_all_ones_on_read() {
        let mut a = MtjArray::with_probability(128, 1.0);
        a.write_bytes(&[0xFF; 16]);
        let mut rng = StdRng::seed_from_u64(1);
        let data = a.read(&mut rng);
        assert!(data.iter().all(|&b| b == 0));
        assert_eq!(a.count_ones(), 0);
    }

    #[test]
    fn disturb_reports_flip_count() {
        let mut a = MtjArray::with_probability(256, 1.0);
        a.write_bytes(&[0x0F; 32]);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(a.disturb(&mut rng), 128);
        assert_eq!(a.disturb(&mut rng), 0, "nothing left to flip");
    }

    #[test]
    fn flips_are_unidirectional() {
        let mut a = MtjArray::with_probability(64, 0.5);
        a.write_bytes(&[0b0101_0101; 8]);
        let before: Vec<bool> = (0..64).map(|i| a.get_bit(i)).collect();
        let mut rng = StdRng::seed_from_u64(3);
        a.disturb(&mut rng);
        for (i, was_set) in before.iter().enumerate() {
            if !was_set {
                assert!(!a.get_bit(i), "a stored 0 must never flip to 1");
            }
        }
    }

    #[test]
    fn average_flip_rate_matches_probability() {
        let p = 0.01;
        let mut rng = StdRng::seed_from_u64(4);
        let mut flips = 0usize;
        let reads = 2_000;
        for _ in 0..reads {
            let mut a = MtjArray::with_probability(512, p);
            a.write_bytes(&[0xFF; 64]);
            flips += a.disturb(&mut rng);
        }
        let rate = flips as f64 / (reads as f64 * 512.0);
        assert!((rate - p).abs() < 0.001, "rate = {rate}");
    }

    #[test]
    fn rewriting_heals_accumulation() {
        let mut a = MtjArray::with_probability(64, 1.0);
        a.write_bytes(&[0xFF; 8]);
        let mut rng = StdRng::seed_from_u64(5);
        a.disturb(&mut rng);
        assert_eq!(a.count_ones(), 0);
        a.write_bytes(&[0xFF; 8]);
        assert_eq!(a.count_ones(), 64);
    }

    #[test]
    fn non_multiple_of_64_width_is_supported() {
        let mut a = MtjArray::with_probability(72, 0.0);
        a.write_bytes(&[0xAB; 9]);
        assert_eq!(a.snapshot(), vec![0xAB; 9]);
        assert_eq!(a.len(), 72);
    }

    #[test]
    #[should_panic(expected = "wider than array")]
    fn rejects_oversized_payload() {
        let mut a = MtjArray::with_probability(64, 0.0);
        a.write_bytes(&[0u8; 9]);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn rejects_zero_width() {
        let _ = MtjArray::with_probability(0, 0.0);
    }

    #[test]
    fn default_params_probability_is_tiny() {
        let a = MtjArray::new(512, MtjParams::default());
        assert!(a.read_disturbance() < 1e-7);
    }
}
