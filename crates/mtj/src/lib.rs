//! STT-MRAM device model: MTJ cells, read disturbance, retention, write
//! errors and process variation.
//!
//! This crate implements the device-physics substrate of the REAP-cache
//! study. The central quantity is the *read-disturbance probability* of a
//! Spin-Transfer Torque MRAM cell — the probability that the unidirectional
//! read current unintentionally flips a stored `1` to `0` (Eq. (1) of the
//! paper):
//!
//! ```text
//! P_rd = 1 - exp( -(t_read / tau) * exp( -Delta * (1 - I_read / Ic0) ) )
//! ```
//!
//! where `tau` is the thermal attempt period (~1 ns), `Delta` the thermal
//! stability factor, `I_read` the read current and `Ic0` the critical
//! switching current at 0 K.
//!
//! > Note on the paper's typesetting: the DATE'19 text prints the inner
//! > exponent as `-Delta (I_read - Ic0)/Ic0`, which for `I_read < Ic0` would
//! > be *positive* and drive `P_rd → 1`. The physically meaningful (and
//! > standard, cf. the paper's refs refs. 12/13 of the paper) form has the exponent
//! > `-Delta (1 - I_read/Ic0) < 0`; we implement that form, which also
//! > reproduces the paper's own numeric example (`P_rd ≈ 1e-8`).
//!
//! # Examples
//!
//! ```
//! use reap_mtj::{MtjParams, read_disturbance_probability};
//!
//! let params = MtjParams::default();
//! let p = read_disturbance_probability(&params);
//! // The paper's running example assumes P_rd-cell ~ 1e-8.
//! assert!(p > 1e-9 && p < 1e-7, "p = {p}");
//! ```
//!
//! The crate also provides:
//! * [`MtjCell`] / [`MtjArray`] — stateful bit-level cell and array models
//!   with stochastic disturbance injection for Monte-Carlo experiments,
//! * [`variation`] — per-cell process variation (Gaussian `Delta`, `Ic0`,
//!   log-normal resistances),
//! * [`retention`] — thermal retention-failure model,
//! * [`mod@write`] — write-error-rate model for the programming pulse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod cell;
pub mod disturbance;
pub mod params;
pub mod retention;
pub mod temperature;
pub mod variation;
pub mod write;

pub use array::MtjArray;
pub use cell::{Magnetization, MtjCell, ReadOutcome};
pub use disturbance::{
    read_current_for_probability, read_disturbance_probability, read_disturbance_rate,
    DisturbanceSweep,
};
pub use params::{MtjParams, MtjParamsBuilder, ParamsError};
pub use retention::retention_failure_probability;
pub use variation::{CellSample, VariationModel};
pub use write::write_error_rate;
