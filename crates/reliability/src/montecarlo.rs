//! Bit-level Monte-Carlo fault injection against real ECC codecs.
//!
//! The analytical model ([`crate::model`]) abstracts a cache line as "`n`
//! ones, each flipping with probability `p`". This module validates that
//! abstraction end to end: it stores *actual encoded codewords* in an
//! [`MtjArray`], applies the stochastic unidirectional disturbance of the
//! device model on every read, and runs a *real decoder* from
//! [`reap_ecc`] — either once at the end (conventional cache) or after
//! every read with correction + scrubbing (REAP).
//!
//! Physical disturbance probabilities (~1e-8) would need 10¹² trials to
//! observe failures, so experiments amplify `p`; the analytical model is
//! evaluated at the same amplified `p` for comparison.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reap_ecc::{DecodeOutcome, EccCode};
use reap_mtj::MtjArray;

/// When the decoder runs relative to reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPolicy {
    /// Decode only after the final read (the conventional cache: all
    /// preceding reads were concealed).
    AtEnd,
    /// Decode after *every* read, write corrected data back (REAP).
    EveryRead,
}

/// Outcome counts of a Monte-Carlo campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McLineResult {
    /// Trials whose final delivered data equalled the original data.
    pub correct: u64,
    /// Trials where the decoder reported an uncorrectable error.
    pub detected: u64,
    /// Trials where the decoder silently delivered wrong data
    /// (miscorrection) — counted separately because the paper's "failure"
    /// covers both.
    pub silent_corruption: u64,
    /// Total trials.
    pub trials: u64,
}

impl McLineResult {
    /// Observed failure rate: anything that is not a correct delivery.
    ///
    /// An empty campaign (`trials == 0`) has observed no failures, so the
    /// rate is 0.0 — not the NaN the raw division would produce.
    pub fn failure_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        (self.detected + self.silent_corruption) as f64 / self.trials as f64
    }

    /// 95 % Wilson score interval for the failure rate — tells whether an
    /// observed MC/model discrepancy is statistically meaningful.
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_reliability::McLineResult;
    ///
    /// let r = McLineResult { correct: 990, detected: 10, silent_corruption: 0, trials: 1000 };
    /// let (lo, hi) = r.failure_rate_ci95();
    /// assert!(lo < 0.01 && 0.01 < hi);
    /// ```
    pub fn failure_rate_ci95(&self) -> (f64, f64) {
        // Zero trials carry zero information: the interval is the whole
        // [0, 1] range rather than the NaNs of a zero-denominator Wilson
        // score.
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.failure_rate();
        let z = 1.959_963_984_540_054; // Φ⁻¹(0.975)
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

/// A Monte-Carlo experiment on a single protected cache line.
///
/// # Examples
///
/// ```
/// use reap_ecc::HsiaoSecDed;
/// use reap_reliability::{MonteCarloLine, montecarlo::CheckPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = HsiaoSecDed::new(64)?;
/// let mc = MonteCarloLine::new(&code, 1e-3, 42);
/// let conv = mc.run(50, 2_000, CheckPolicy::AtEnd);
/// let reap = mc.run(50, 2_000, CheckPolicy::EveryRead);
/// assert!(conv.failure_rate() > reap.failure_rate());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MonteCarloLine<'a> {
    code: &'a dyn EccCode,
    p_rd: f64,
    seed: u64,
}

impl<'a> MonteCarloLine<'a> {
    /// Creates an experiment for `code` at amplified disturbance
    /// probability `p_rd`.
    ///
    /// # Panics
    ///
    /// Panics if `p_rd` is outside `[0, 1]`.
    pub fn new(code: &'a dyn EccCode, p_rd: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_rd),
            "probability out of range: {p_rd}"
        );
        Self { code, p_rd, seed }
    }

    /// Runs `trials` independent lines, each read `n_reads` times, and
    /// reports the outcome counts.
    ///
    /// Each trial draws fresh random data, encodes it, stores the codeword
    /// in an MTJ array, applies `n_reads` disturbing reads under the given
    /// [`CheckPolicy`], and compares the finally delivered data with the
    /// truth.
    ///
    /// # Panics
    ///
    /// Panics if `n_reads == 0` or `trials == 0`.
    pub fn run(&self, n_reads: u64, trials: u64, policy: CheckPolicy) -> McLineResult {
        assert!(n_reads > 0, "need at least one read");
        assert!(trials > 0, "need at least one trial");
        let mut span = reap_obs::span("montecarlo");
        let progress = reap_obs::progress_enabled()
            .then(|| reap_obs::Progress::new(format!("mc {}", self.code.name()), Some(trials)));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let data_bytes = self.code.data_bits().div_ceil(8);
        let mut result = McLineResult {
            trials,
            ..McLineResult::default()
        };
        for _ in 0..trials {
            let mut data = vec![0u8; data_bytes];
            rng.fill(&mut data[..]);
            let rem = self.code.data_bits() % 8;
            if rem != 0 {
                let last = data.len() - 1;
                data[last] &= (1 << rem) - 1;
            }
            let cw = self.code.encode(&data);
            let mut array = MtjArray::with_probability(self.code.code_bits(), self.p_rd);
            array.write_bytes(cw.as_bytes());
            let (delivered, outcome) = match policy {
                CheckPolicy::AtEnd => {
                    // n_reads - 1 concealed reads, then the checked demand read.
                    for _ in 0..n_reads {
                        array.disturb(&mut rng);
                    }
                    let word = array.snapshot();
                    let out = self.code.decode(&word);
                    (out.data, out.outcome)
                }
                CheckPolicy::EveryRead => {
                    let mut last = (data.clone(), DecodeOutcome::Clean);
                    for _ in 0..n_reads {
                        array.disturb(&mut rng);
                        let word = array.snapshot();
                        let out = self.code.decode(&word);
                        if out.outcome.is_detected_uncorrectable() {
                            last = (out.data, out.outcome);
                            break;
                        }
                        // Scrub: write the corrected codeword back.
                        if out.outcome.is_corrected() {
                            let fixed = self.code.encode(&out.data);
                            array.write_bytes(fixed.as_bytes());
                        }
                        last = (out.data, out.outcome);
                    }
                    last
                }
            };
            if outcome.is_detected_uncorrectable() {
                result.detected += 1;
            } else if delivered != data {
                result.silent_corruption += 1;
            } else {
                result.correct += 1;
            }
            if let Some(p) = &progress {
                p.tick(1);
            }
        }
        if let Some(p) = &progress {
            p.finish();
        }
        span.add_events(trials);
        if span.is_recording() {
            let r = reap_obs::global();
            r.counter("mc.trials").add(result.trials);
            r.counter("mc.correct").add(result.correct);
            r.counter("mc.detected").add(result.detected);
            r.counter("mc.silent_corruption")
                .add(result.silent_corruption);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AccumulationModel;
    use reap_ecc::HsiaoSecDed;

    #[test]
    fn zero_trials_yield_finite_rate_and_vacuous_interval() {
        let empty = McLineResult::default();
        assert_eq!(empty.failure_rate(), 0.0);
        assert_eq!(empty.failure_rate_ci95(), (0.0, 1.0));
    }

    #[test]
    fn zero_probability_never_fails() {
        let code = HsiaoSecDed::new(64).unwrap();
        let mc = MonteCarloLine::new(&code, 0.0, 1);
        let r = mc.run(100, 200, CheckPolicy::AtEnd);
        assert_eq!(r.correct, 200);
        assert_eq!(r.failure_rate(), 0.0);
    }

    #[test]
    fn reap_policy_beats_at_end_checking() {
        let code = HsiaoSecDed::new(64).unwrap();
        let mc = MonteCarloLine::new(&code, 2e-3, 2);
        let conv = mc.run(60, 3_000, CheckPolicy::AtEnd);
        let reap = mc.run(60, 3_000, CheckPolicy::EveryRead);
        assert!(
            conv.failure_rate() > 5.0 * reap.failure_rate(),
            "conv {} vs reap {}",
            conv.failure_rate(),
            reap.failure_rate()
        );
    }

    #[test]
    fn conventional_rate_matches_analytical_model() {
        let code = HsiaoSecDed::new(64).unwrap();
        let p = 1e-3;
        let n_reads = 40u64;
        let trials = 20_000u64;
        let mc = MonteCarloLine::new(&code, p, 3);
        let observed = mc.run(n_reads, trials, CheckPolicy::AtEnd).failure_rate();
        // Analytical: average over the binomial weight of random codewords
        // ≈ use expected ones = code_bits / 2.
        let model = AccumulationModel::sec(p);
        let expected = model.fail_conventional(code.code_bits() as u32 / 2, n_reads);
        assert!(
            (observed / expected - 1.0).abs() < 0.25,
            "observed {observed}, model {expected}"
        );
    }

    #[test]
    fn detected_failures_dominate_for_secded() {
        // SEC-DED turns double errors into *detected* failures rather than
        // silent corruption; silent corruption needs >= 3 flips, which is
        // rare at this amplification (mean cumulative flips < 1).
        let code = HsiaoSecDed::new(64).unwrap();
        let mc = MonteCarloLine::new(&code, 3e-4, 4);
        let r = mc.run(60, 20_000, CheckPolicy::AtEnd);
        assert!(
            r.detected > 0,
            "double errors must occur at this amplification"
        );
        assert!(
            r.detected > 3 * r.silent_corruption,
            "detected {} vs silent {}",
            r.detected,
            r.silent_corruption
        );
    }

    #[test]
    fn wilson_interval_brackets_the_estimate() {
        let r = McLineResult {
            correct: 900,
            detected: 80,
            silent_corruption: 20,
            trials: 1000,
        };
        let (lo, hi) = r.failure_rate_ci95();
        let p = r.failure_rate();
        assert!(lo < p && p < hi);
        assert!(hi - lo < 0.05, "1000 trials give a tight interval");
    }

    #[test]
    fn wilson_interval_handles_zero_failures() {
        let r = McLineResult {
            correct: 500,
            detected: 0,
            silent_corruption: 0,
            trials: 500,
        };
        let (lo, hi) = r.failure_rate_ci95();
        assert!(lo < 1e-12, "lower bound collapses to zero: {lo}");
        assert!(hi > 0.0 && hi < 0.02, "rule-of-three-ish upper bound: {hi}");
    }

    #[test]
    fn more_trials_tighten_the_interval() {
        let small = McLineResult {
            correct: 90,
            detected: 10,
            silent_corruption: 0,
            trials: 100,
        };
        let large = McLineResult {
            correct: 9_000,
            detected: 1_000,
            silent_corruption: 0,
            trials: 10_000,
        };
        let w = |r: &McLineResult| {
            let (lo, hi) = r.failure_rate_ci95();
            hi - lo
        };
        assert!(w(&large) < w(&small) / 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one read")]
    fn zero_reads_rejected() {
        let code = HsiaoSecDed::new(64).unwrap();
        let mc = MonteCarloLine::new(&code, 0.1, 5);
        let _ = mc.run(0, 10, CheckPolicy::AtEnd);
    }
}
