//! Analysis-point evaluation of a captured exposure stream.
//!
//! The two-phase simulation splits a run into *capture* (drive the trace
//! through the cache once, recording each exposure event's accumulated
//! read count `N` and content-version key) and *replay* (evaluate the
//! recorded stream under any ECC strength / MTJ operating point). This
//! module is the replay half's scoring engine: [`ReplayAggregator`]
//! consumes `(kind, line weight, N)` records in capture order and
//! accumulates the same Eq. (3)/(6) failure sums a live
//! `ReliabilityObserver` would, bit for bit — the live observer *is* a
//! thin wrapper over this type, so there is exactly one copy of the math.

use crate::histogram::LogHistogram;
use crate::model::AccumulationModel;
use crate::mttf::FailureAggregator;

/// The three exposure-event classes that reach the reliability laws.
///
/// The capture phase filters cache events down to these: demand checks
/// are always scored; scrub checks matter only for dirty lines (a clean
/// line failing a scrub is invalidated and refetched); evictions matter
/// only for dirty lines with accumulated unchecked reads (the write-back
/// path consumes the possibly-corrupt content). Events outside these
/// classes contribute exactly `0.0` to every sum, so dropping them at
/// capture time preserves bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExposureKind {
    /// A demand read hit: the conventional scheme's one ECC check, scored
    /// under all three laws and binned into the histogram.
    Demand,
    /// A scrub sweep checked a dirty line; scored under the conventional
    /// law only (REAP never accumulates, serial never conceals).
    DirtyScrub,
    /// A dirty line with unchecked reads left the cache; its accumulated
    /// failure probability is charged to the write-back exposure metric.
    DirtyEviction,
}

/// Accumulates Eq. (3)/(6) failure probabilities from exposure records.
///
/// One instance scores all schemes simultaneously:
///
/// * **conventional** — `P_unc(N·n, p, t)` (Eq. (3)): the `N` reads since
///   the last check accumulate into one big binomial experiment;
/// * **REAP** — `1 − (1 − P_unc(n, p, t))^N` (Eq. (6)): each of the `N`
///   reads was individually checked and corrected;
/// * **serial / restore** — `P_unc(n, p, t)`: each demand read faces
///   exactly one read's disturbance.
///
/// Per-read probabilities are looked up from a table over the line weight
/// `n` (0 ..= stored bits), making the per-record cost O(1).
///
/// # Examples
///
/// ```
/// use reap_reliability::{AccumulationModel, ExposureKind, ReplayAggregator};
///
/// let mut agg = ReplayAggregator::new(AccumulationModel::sec(1e-8), 576);
/// agg.record(ExposureKind::Demand, 288, 100);
/// assert!(agg.conventional().expected_failures() > agg.reap().expected_failures());
/// ```
#[derive(Debug, Clone)]
pub struct ReplayAggregator {
    model: AccumulationModel,
    /// `fail_single(n)` for n in 0..=max_ones.
    single_read_table: Vec<f64>,
    conventional: FailureAggregator,
    reap: FailureAggregator,
    serial: FailureAggregator,
    histogram: LogHistogram,
    /// Failure probability that left the cache unchecked in dirty victims
    /// (consumed by the write-back path) — the paper ignores this; we
    /// track it as an extension metric.
    writeback_exposure: f64,
}

impl ReplayAggregator {
    /// Creates an aggregator for lines of at most `max_ones` stored `1`s
    /// (i.e. the stored line width in bits).
    ///
    /// # Panics
    ///
    /// Panics if `max_ones == 0`.
    pub fn new(model: AccumulationModel, max_ones: u32) -> Self {
        assert!(max_ones > 0, "line width must be positive");
        let single_read_table = (0..=max_ones).map(|n| model.fail_single(n)).collect();
        Self {
            model,
            single_read_table,
            conventional: FailureAggregator::new(),
            reap: FailureAggregator::new(),
            serial: FailureAggregator::new(),
            histogram: LogHistogram::new(),
            writeback_exposure: 0.0,
        }
    }

    /// Reassembles an aggregator from externally accumulated state — the
    /// hand-off point for the batched multi-point kernel
    /// (`MultiReplayAggregator::finish`), which accumulates per-point
    /// state itself and then presents each point as an ordinary
    /// `ReplayAggregator` to downstream report assembly.
    ///
    /// The lookup table is rebuilt from `(model, max_ones)` exactly as
    /// [`ReplayAggregator::new`] would, so the result is indistinguishable
    /// from an aggregator that recorded the same stream directly.
    ///
    /// # Panics
    ///
    /// Panics if `max_ones == 0`.
    pub fn from_parts(
        model: AccumulationModel,
        max_ones: u32,
        conventional: FailureAggregator,
        reap: FailureAggregator,
        serial: FailureAggregator,
        histogram: LogHistogram,
        writeback_exposure: f64,
    ) -> Self {
        let mut agg = Self::new(model, max_ones);
        agg.conventional = conventional;
        agg.reap = reap;
        agg.serial = serial;
        agg.histogram = histogram;
        agg.writeback_exposure = writeback_exposure;
        agg
    }

    /// Scores one exposure record. Records must be fed in capture order:
    /// the running sums are floating-point, so ordering is part of the
    /// bit-identity contract with a single-pass run.
    pub fn record(&mut self, kind: ExposureKind, line_ones: u32, unchecked_reads: u64) {
        match kind {
            ExposureKind::Demand => {
                let p_conv = self.model.fail_conventional(line_ones, unchecked_reads);
                self.conventional.record(p_conv);
                // Eq. (6): 1 - (1 - u)^N from the table entry, without
                // recomputing the binomial tail. The u ∈ {0, 1} corners
                // are pinned exactly as in `AccumulationModel::fail_reap`
                // (0 × -inf would otherwise go NaN at u = 1, N = 0).
                let u = self.single(line_ones);
                let p_reap = if u == 0.0 || unchecked_reads == 0 {
                    0.0
                } else if u == 1.0 {
                    1.0
                } else {
                    -(unchecked_reads as f64 * (-u).ln_1p()).exp_m1()
                };
                self.reap.record(p_reap);
                self.serial.record(u);
                self.histogram.record(unchecked_reads, p_conv);
            }
            ExposureKind::DirtyScrub => {
                self.conventional
                    .record(self.model.fail_conventional(line_ones, unchecked_reads));
            }
            ExposureKind::DirtyEviction => {
                self.writeback_exposure += self.model.fail_conventional(line_ones, unchecked_reads);
            }
        }
    }

    /// Scores a whole stream of `(kind, line_ones, unchecked_reads)`
    /// records, in iteration order. A convenience for streaming feeders
    /// (the capture-replay path pulls records off a bounded-memory
    /// iterator rather than holding a slice); exactly equivalent to
    /// calling [`record`](Self::record) per item.
    pub fn record_all<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = (ExposureKind, u32, u64)>,
    {
        for (kind, line_ones, unchecked_reads) in records {
            self.record(kind, line_ones, unchecked_reads);
        }
    }

    /// The accumulation model in force.
    pub fn model(&self) -> &AccumulationModel {
        &self.model
    }

    /// Expected failures under the conventional scheme.
    pub fn conventional(&self) -> &FailureAggregator {
        &self.conventional
    }

    /// Expected failures under REAP.
    pub fn reap(&self) -> &FailureAggregator {
        &self.reap
    }

    /// Expected failures under the serial tag-first scheme and the
    /// disruptive-restore baseline (one read's disturbance per demand).
    pub fn serial(&self) -> &FailureAggregator {
        &self.serial
    }

    /// The concealed-read histogram with per-bin conventional failure
    /// contribution (Fig. 3 data).
    pub fn histogram(&self) -> &LogHistogram {
        &self.histogram
    }

    /// Unchecked failure probability carried out by dirty evictions.
    pub fn writeback_exposure(&self) -> f64 {
        self.writeback_exposure
    }

    fn single(&self, n_ones: u32) -> f64 {
        *self
            .single_read_table
            .get(n_ones as usize)
            .unwrap_or_else(|| self.single_read_table.last().expect("non-empty table"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aggregator() -> ReplayAggregator {
        ReplayAggregator::new(AccumulationModel::sec(1e-6), 576)
    }

    #[test]
    fn table_matches_direct_model() {
        let agg = aggregator();
        for n in [0u32, 1, 100, 288, 576] {
            assert_eq!(agg.single(n), agg.model().fail_single(n), "n = {n}");
        }
    }

    #[test]
    fn demand_scores_all_three_schemes() {
        let mut agg = aggregator();
        agg.record(ExposureKind::Demand, 288, 1000);
        let conv = agg.conventional().expected_failures();
        let reap = agg.reap().expected_failures();
        let gain = conv / reap;
        assert!(gain > 500.0 && gain <= 1000.5, "gain = {gain}");
        assert_eq!(agg.serial().events(), 1);
        assert_eq!(agg.histogram().total_count(), 1);
    }

    #[test]
    fn reap_matches_eq_six_closed_form() {
        let mut agg = aggregator();
        agg.record(ExposureKind::Demand, 300, 77);
        let expected = agg.model().fail_reap(300, 77);
        assert!(
            (agg.reap().expected_failures() / expected - 1.0).abs() < 1e-12,
            "aggregator must reproduce Eq. (6)"
        );
    }

    #[test]
    fn dirty_scrub_feeds_conventional_only() {
        let mut agg = aggregator();
        agg.record(ExposureKind::DirtyScrub, 288, 40);
        assert_eq!(
            agg.conventional().expected_failures(),
            agg.model().fail_conventional(288, 40)
        );
        assert_eq!(agg.reap().events(), 0);
        assert_eq!(agg.histogram().total_count(), 0);
    }

    #[test]
    fn dirty_eviction_feeds_writeback_exposure_only() {
        let mut agg = aggregator();
        agg.record(ExposureKind::DirtyEviction, 288, 500);
        assert!(agg.writeback_exposure() > 0.0);
        assert_eq!(agg.conventional().events(), 0);
    }

    #[test]
    fn record_all_matches_per_record_feeding() {
        let stream = [
            (ExposureKind::Demand, 288u32, 1000u64),
            (ExposureKind::DirtyScrub, 300, 40),
            (ExposureKind::Demand, 100, 3),
            (ExposureKind::DirtyEviction, 288, 500),
        ];
        let mut fed = aggregator();
        fed.record_all(stream);
        let mut reference = aggregator();
        for (kind, ones, n) in stream {
            reference.record(kind, ones, n);
        }
        assert_eq!(
            fed.conventional().expected_failures().to_bits(),
            reference.conventional().expected_failures().to_bits()
        );
        assert_eq!(
            fed.reap().expected_failures().to_bits(),
            reference.reap().expected_failures().to_bits()
        );
        assert_eq!(
            fed.writeback_exposure().to_bits(),
            reference.writeback_exposure().to_bits()
        );
    }

    #[test]
    fn out_of_range_ones_clamp_to_widest_entry() {
        let agg = aggregator();
        assert_eq!(agg.single(10_000), agg.single(576));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = ReplayAggregator::new(AccumulationModel::sec(1e-8), 0);
    }
}
