//! Pareto dominance and front extraction for design-space exploration.
//!
//! The explorer ranks design points by three objectives at once: MTTF
//! (maximize), dynamic energy (minimize) and array area (minimize). No
//! single scalar orders such points, so the explorer reports the *Pareto
//! front* — the set of points no other point beats on every axis.
//!
//! All comparisons go through [`f64::total_cmp`] / [`Mttf::total_cmp`]:
//! the hardened metrics no longer produce NaN, but a NaN that slips in
//! anyway sorts deterministically (above `+inf`) instead of silently
//! mis-sorting the front, and `inf` MTTFs (zero expected failures —
//! routine on short captures) order correctly above every finite value.
//!
//! # Examples
//!
//! ```
//! use reap_reliability::{pareto_front_indices, Mttf, ParetoPoint};
//!
//! let points = [
//!     ParetoPoint::new(Mttf::from_seconds(1e9), 2.0, 4.0), // beaten by the next
//!     ParetoPoint::new(Mttf::from_seconds(2e9), 1.0, 4.0),
//!     ParetoPoint::new(Mttf::from_seconds(1e6), 0.1, 4.0), // cheap but fragile: kept
//! ];
//! assert_eq!(pareto_front_indices(&points), vec![1, 2]);
//! ```

use crate::mttf::Mttf;
use std::cmp::Ordering;

/// One design point's objective values.
///
/// MTTF is maximized; energy and area are minimized. The struct carries
/// no identity — callers keep their own rows and index into them with
/// [`pareto_front_indices`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Mean time to failure (maximize; `inf` = zero expected failures).
    pub mttf: Mttf,
    /// Dynamic energy in joules (minimize).
    pub energy_j: f64,
    /// Array area in mm² (minimize).
    pub area_mm2: f64,
}

impl ParetoPoint {
    /// Bundles the three objectives.
    pub fn new(mttf: Mttf, energy_j: f64, area_mm2: f64) -> Self {
        Self {
            mttf,
            energy_j,
            area_mm2,
        }
    }

    /// Whether `self` Pareto-dominates `other`: at least as good on every
    /// objective (MTTF ≥, energy ≤, area ≤ under the total order) and
    /// strictly better on at least one. Two identical points do not
    /// dominate each other — both stay on the front, so ties survive
    /// deterministically rather than depending on input order.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let mttf = self.mttf.total_cmp(&other.mttf);
        let energy = self.energy_j.total_cmp(&other.energy_j);
        let area = self.area_mm2.total_cmp(&other.area_mm2);
        let no_worse =
            mttf != Ordering::Less && energy != Ordering::Greater && area != Ordering::Greater;
        let better =
            mttf == Ordering::Greater || energy == Ordering::Less || area == Ordering::Less;
        no_worse && better
    }
}

/// Extracts the Pareto front: indices (in input order) of every point not
/// dominated by any other point.
///
/// O(n²) pairwise — exploration grids are hundreds to low thousands of
/// points, far below where a divide-and-conquer front pays off. The
/// returned indices are strictly increasing, so output is deterministic
/// for a fixed input order regardless of how the points were computed.
pub fn pareto_front_indices(points: &[ParetoPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().any(|other| other.dominates(&points[i])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(mttf: f64, energy: f64, area: f64) -> ParetoPoint {
        ParetoPoint::new(Mttf::from_seconds(mttf), energy, area)
    }

    #[test]
    fn strictly_better_point_dominates() {
        assert!(p(2.0, 1.0, 1.0).dominates(&p(1.0, 2.0, 2.0)));
        assert!(!p(1.0, 2.0, 2.0).dominates(&p(2.0, 1.0, 1.0)));
    }

    #[test]
    fn equal_points_do_not_dominate_each_other() {
        let a = p(1.0, 1.0, 1.0);
        assert!(!a.dominates(&a));
        assert_eq!(pareto_front_indices(&[a, a]), vec![0, 1]);
    }

    #[test]
    fn one_axis_improvement_with_ties_elsewhere_dominates() {
        assert!(p(2.0, 1.0, 1.0).dominates(&p(1.0, 1.0, 1.0)));
        assert!(p(1.0, 0.5, 1.0).dominates(&p(1.0, 1.0, 1.0)));
        assert!(p(1.0, 1.0, 0.5).dominates(&p(1.0, 1.0, 1.0)));
    }

    #[test]
    fn tradeoffs_are_incomparable() {
        // Better MTTF but worse energy: neither dominates.
        let a = p(2.0, 2.0, 1.0);
        let b = p(1.0, 1.0, 1.0);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        assert_eq!(pareto_front_indices(&[a, b]), vec![0, 1]);
    }

    #[test]
    fn infinite_mttf_dominates_finite_at_equal_cost() {
        let zero_failures = p(f64::INFINITY, 1.0, 1.0);
        let finite = p(1e12, 1.0, 1.0);
        assert!(zero_failures.dominates(&finite));
        assert_eq!(pareto_front_indices(&[finite, zero_failures]), vec![1]);
    }

    #[test]
    fn two_infinite_mttfs_tie_on_the_mttf_axis() {
        // The normalized_to fix's scenario: both points failure-free.
        // The cheaper one wins; equal-cost ones are both kept.
        let a = p(f64::INFINITY, 1.0, 1.0);
        let b = p(f64::INFINITY, 2.0, 1.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert_eq!(pareto_front_indices(&[a, b]), vec![0]);
    }

    #[test]
    fn front_of_a_chain_is_its_best_point() {
        let pts = [p(1.0, 4.0, 4.0), p(2.0, 3.0, 3.0), p(3.0, 2.0, 2.0)];
        assert_eq!(pareto_front_indices(&pts), vec![2]);
    }

    #[test]
    fn empty_input_gives_empty_front() {
        assert!(pareto_front_indices(&[]).is_empty());
    }
}
