//! Batched multi-point replay: score every sweep point in one pass.
//!
//! An ECC sweep (`replay_ecc_sweep`, `reap sweep --ecc-sweep`) evaluates
//! the same captured exposure stream under several analysis points — one
//! per `EccStrength` × MTJ operating point. Walking the stream once per
//! point repeats all the per-record bookkeeping (and the stream itself
//! falls out of cache between walks). [`MultiReplayAggregator`] instead
//! carries the state of *all* points and scores each record against every
//! point before moving to the next record, so the stream is traversed
//! exactly once.
//!
//! Two data-layout tricks make the inner loop cheap:
//!
//! * the per-point `single_read_table`s are stacked into one row-major
//!   `points × stride` matrix (`stride = global max_ones + 1`), each row
//!   pre-clamped to its own point's width, so per-record lookups walk a
//!   single contiguous allocation; a parallel matrix caches
//!   `ln(1 − u)` so the Eq. (6) REAP term needs one `exp_m1` per point
//!   instead of `ln_1p` + `exp_m1`;
//! * the conventional tail `fail_conventional(ones, N)` is memoized in a
//!   dense `(point, ones, N)` table for `N ≤ 64` — the `N` distribution
//!   is heavily concentrated at small values (most demand reads conceal
//!   nothing), so the binomial tail series runs once per distinct key
//!   instead of once per record.
//!
//! # Bit-identity contract
//!
//! The batched kernel is **bit-identical** to running `points.len()`
//! independent [`ReplayAggregator`]s over the stream in capture order:
//! each point's floating-point sums see the same values in the same
//! order (records outer, points inner preserves per-point record order),
//! the stacked rows reproduce the per-point clamp semantics exactly, and
//! every memoized value is the output of the same pure function on the
//! same inputs. `crates/core/tests/proptests.rs` pins this contract.

use crate::histogram::LogHistogram;
use crate::model::AccumulationModel;
use crate::mttf::FailureAggregator;
use crate::replay::{ExposureKind, ReplayAggregator};

/// Largest `N` covered by the dense `fail_conventional` memo. Beyond
/// this the tail is computed directly (still bit-identical — the memo
/// only caches, never approximates).
const MEMO_MAX_READS: u64 = 64;

/// Per-point accumulation state, mirroring one [`ReplayAggregator`].
#[derive(Debug, Clone)]
struct PointState {
    model: AccumulationModel,
    max_ones: u32,
    conventional: FailureAggregator,
    reap: FailureAggregator,
    serial: FailureAggregator,
    histogram: LogHistogram,
    writeback_exposure: f64,
}

/// Scores a captured exposure stream against many analysis points in a
/// single pass, bit-identical to independent per-point replays.
///
/// # Examples
///
/// ```
/// use reap_reliability::{
///     AccumulationModel, ExposureKind, MultiReplayAggregator, ReplayAggregator,
/// };
///
/// let points = vec![
///     (AccumulationModel::new(1e-8, 1), 522),
///     (AccumulationModel::new(1e-8, 2), 532),
/// ];
/// let mut multi = MultiReplayAggregator::new(points.clone());
/// let mut solo: Vec<_> = points
///     .iter()
///     .map(|&(m, w)| ReplayAggregator::new(m, w))
///     .collect();
/// multi.record(ExposureKind::Demand, &[260, 265], 40);
/// solo[0].record(ExposureKind::Demand, 260, 40);
/// solo[1].record(ExposureKind::Demand, 265, 40);
/// for (got, want) in multi.finish().iter().zip(&solo) {
///     assert_eq!(
///         got.conventional().expected_failures(),
///         want.conventional().expected_failures(),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MultiReplayAggregator {
    points: Vec<PointState>,
    /// Row length of the stacked tables: global `max_ones + 1`.
    stride: usize,
    /// Row-major `points × stride`: `single[p][n] =
    /// fail_single(min(n, max_ones_p))`, reproducing each point's own
    /// clamp-to-last-entry lookup semantics.
    single: Vec<f64>,
    /// `ln(1 − single[p][n])` for the Eq. (6) closed form.
    ln1m_single: Vec<f64>,
    /// Dense `(point, ones, N)` memo of `fail_conventional(ones, N)` for
    /// `N ∈ [0, MEMO_MAX_READS]`, NaN meaning "not yet computed".
    conv_memo: Vec<f64>,
}

impl MultiReplayAggregator {
    /// Creates a batched aggregator for the given `(model, max_ones)`
    /// analysis points. `max_ones` is the stored line width in bits for
    /// that point (data + check bits), exactly as passed to
    /// [`ReplayAggregator::new`].
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or any `max_ones == 0`.
    pub fn new(points: Vec<(AccumulationModel, u32)>) -> Self {
        assert!(!points.is_empty(), "need at least one analysis point");
        let stride = points
            .iter()
            .map(|&(_, w)| {
                assert!(w > 0, "line width must be positive");
                w as usize + 1
            })
            .max()
            .expect("non-empty");
        let mut single = Vec::with_capacity(points.len() * stride);
        let mut ln1m_single = Vec::with_capacity(points.len() * stride);
        for &(model, max_ones) in &points {
            for n in 0..stride {
                let u = model.fail_single((n as u32).min(max_ones));
                single.push(u);
                ln1m_single.push((-u).ln_1p());
            }
        }
        let conv_memo = vec![f64::NAN; points.len() * stride * (MEMO_MAX_READS as usize + 1)];
        let points = points
            .into_iter()
            .map(|(model, max_ones)| PointState {
                model,
                max_ones,
                conventional: FailureAggregator::new(),
                reap: FailureAggregator::new(),
                serial: FailureAggregator::new(),
                histogram: LogHistogram::new(),
                writeback_exposure: 0.0,
            })
            .collect();
        Self {
            points,
            stride,
            single,
            ln1m_single,
            conv_memo,
        }
    }

    /// Number of analysis points being scored.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Scores one exposure record against every point. `line_ones[p]` is
    /// the stored-`1` count of the line *as sampled for point `p`'s
    /// stored width* — widths differ across ECC strengths, so the caller
    /// samples once per distinct width and scatters.
    ///
    /// Records must be fed in capture order (the bit-identity contract).
    ///
    /// # Panics
    ///
    /// Panics if `line_ones.len() != self.num_points()`.
    pub fn record(&mut self, kind: ExposureKind, line_ones: &[u32], unchecked_reads: u64) {
        assert_eq!(
            line_ones.len(),
            self.points.len(),
            "one ones-count per analysis point"
        );
        match kind {
            ExposureKind::Demand => {
                for (p, &ones) in line_ones.iter().enumerate() {
                    let p_conv = self.conventional_tail(p, ones, unchecked_reads);
                    let row = p * self.stride;
                    let idx = row + (ones as usize).min(self.stride - 1);
                    let u = self.single[idx];
                    // Eq. (6): 1 - (1 - u)^N via the precomputed ln(1-u).
                    let p_reap = if u == 0.0 {
                        0.0
                    } else {
                        -(unchecked_reads as f64 * self.ln1m_single[idx]).exp_m1()
                    };
                    let point = &mut self.points[p];
                    point.conventional.record(p_conv);
                    point.reap.record(p_reap);
                    point.serial.record(u);
                    point.histogram.record(unchecked_reads, p_conv);
                }
            }
            ExposureKind::DirtyScrub => {
                for (p, &ones) in line_ones.iter().enumerate() {
                    let p_conv = self.conventional_tail(p, ones, unchecked_reads);
                    self.points[p].conventional.record(p_conv);
                }
            }
            ExposureKind::DirtyEviction => {
                for (p, &ones) in line_ones.iter().enumerate() {
                    let p_conv = self.conventional_tail(p, ones, unchecked_reads);
                    self.points[p].writeback_exposure += p_conv;
                }
            }
        }
    }

    /// Scores a whole stream of `(kind, line_ones, unchecked_reads)`
    /// records, in iteration order — the streaming-feeder counterpart of
    /// [`record`](Self::record), for callers that pull records off a
    /// bounded-memory iterator instead of holding a slice. Exactly
    /// equivalent to calling `record` per item.
    ///
    /// # Panics
    ///
    /// Panics if any item's `line_ones.len() != self.num_points()`.
    pub fn record_all<'a, I>(&mut self, records: I)
    where
        I: IntoIterator<Item = (ExposureKind, &'a [u32], u64)>,
    {
        for (kind, line_ones, unchecked_reads) in records {
            self.record(kind, line_ones, unchecked_reads);
        }
    }

    /// Tears the batch apart into one [`ReplayAggregator`] per point, in
    /// construction order, each indistinguishable from an independent
    /// replay of the stream.
    pub fn finish(self) -> Vec<ReplayAggregator> {
        self.points
            .into_iter()
            .map(|p| {
                ReplayAggregator::from_parts(
                    p.model,
                    p.max_ones,
                    p.conventional,
                    p.reap,
                    p.serial,
                    p.histogram,
                    p.writeback_exposure,
                )
            })
            .collect()
    }

    /// `fail_conventional(ones, n_reads)` for point `p`, memoized over
    /// the dense small-`N` region. The memo stores exact outputs of the
    /// pure model function, so hits and misses are bit-identical.
    fn conventional_tail(&mut self, p: usize, ones: u32, n_reads: u64) -> f64 {
        if n_reads <= MEMO_MAX_READS && (ones as usize) < self.stride {
            let idx = (p * self.stride + ones as usize) * (MEMO_MAX_READS as usize + 1)
                + n_reads as usize;
            let cached = self.conv_memo[idx];
            if !cached.is_nan() {
                return cached;
            }
            let value = self.points[p].model.fail_conventional(ones, n_reads);
            self.conv_memo[idx] = value;
            value
        } else {
            self.points[p].model.fail_conventional(ones, n_reads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<(AccumulationModel, u32)> {
        vec![
            (AccumulationModel::new(1e-6, 1), 522),
            (AccumulationModel::new(1e-6, 2), 532),
            (AccumulationModel::new(1e-5, 3), 542),
        ]
    }

    /// Feeds the same records to the batch and to independent per-point
    /// aggregators, asserting bit-equality of every observable.
    fn assert_matches_solo(records: &[(ExposureKind, Vec<u32>, u64)]) {
        let pts = points();
        let mut multi = MultiReplayAggregator::new(pts.clone());
        let mut solo: Vec<ReplayAggregator> = pts
            .iter()
            .map(|&(m, w)| ReplayAggregator::new(m, w))
            .collect();
        for (kind, ones, n) in records {
            multi.record(*kind, ones, *n);
            for (p, agg) in solo.iter_mut().enumerate() {
                agg.record(*kind, ones[p], *n);
            }
        }
        for (got, want) in multi.finish().iter().zip(&solo) {
            assert_eq!(
                got.conventional().expected_failures().to_bits(),
                want.conventional().expected_failures().to_bits()
            );
            assert_eq!(got.conventional().events(), want.conventional().events());
            assert_eq!(
                got.reap().expected_failures().to_bits(),
                want.reap().expected_failures().to_bits()
            );
            assert_eq!(
                got.serial().expected_failures().to_bits(),
                want.serial().expected_failures().to_bits()
            );
            assert_eq!(
                got.writeback_exposure().to_bits(),
                want.writeback_exposure().to_bits()
            );
            assert_eq!(got.histogram(), want.histogram());
        }
    }

    #[test]
    fn matches_independent_aggregators_bitwise() {
        let mut records = Vec::new();
        let mut state = 0x9e37u64;
        for i in 0..500u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let kind = match state % 5 {
                0 => ExposureKind::DirtyScrub,
                1 => ExposureKind::DirtyEviction,
                _ => ExposureKind::Demand,
            };
            let ones = vec![
                (state >> 16) as u32 % 523,
                (state >> 24) as u32 % 533,
                (state >> 32) as u32 % 543,
            ];
            // Mix of memoized small N and direct-computed large N.
            let n = 1 + (state >> 40) % if i % 7 == 0 { 100_000 } else { 8 };
            records.push((kind, ones, n));
        }
        assert_matches_solo(&records);
    }

    #[test]
    fn record_all_matches_per_record_feeding() {
        let records = [
            (ExposureKind::Demand, [288u32, 300, 310], 1000u64),
            (ExposureKind::DirtyScrub, [100, 110, 120], 40),
            (ExposureKind::DirtyEviction, [288, 300, 310], 500),
        ];
        let mut fed = MultiReplayAggregator::new(points());
        fed.record_all(records.iter().map(|(k, ones, n)| (*k, &ones[..], *n)));
        let mut reference = MultiReplayAggregator::new(points());
        for (kind, ones, n) in &records {
            reference.record(*kind, ones, *n);
        }
        for (got, want) in fed.finish().iter().zip(reference.finish().iter()) {
            assert_eq!(
                got.conventional().expected_failures().to_bits(),
                want.conventional().expected_failures().to_bits()
            );
            assert_eq!(
                got.writeback_exposure().to_bits(),
                want.writeback_exposure().to_bits()
            );
        }
    }

    #[test]
    fn memo_hits_and_misses_agree() {
        // Repeat the exact same key so the second call is a memo hit.
        let records = vec![
            (ExposureKind::Demand, vec![260, 260, 260], 3),
            (ExposureKind::Demand, vec![260, 260, 260], 3),
            (ExposureKind::Demand, vec![260, 260, 260], MEMO_MAX_READS),
            (
                ExposureKind::Demand,
                vec![260, 260, 260],
                MEMO_MAX_READS + 1,
            ),
        ];
        assert_matches_solo(&records);
    }

    #[test]
    fn out_of_range_ones_clamp_like_each_point() {
        // 10_000 exceeds every width; each point clamps to its own max.
        let records = vec![(ExposureKind::Demand, vec![10_000, 10_000, 10_000], 5)];
        assert_matches_solo(&records);
    }

    #[test]
    fn finish_preserves_point_order() {
        let pts = points();
        let multi = MultiReplayAggregator::new(pts.clone());
        let finished = multi.finish();
        assert_eq!(finished.len(), pts.len());
        for (agg, (model, _)) in finished.iter().zip(&pts) {
            assert_eq!(agg.model(), model);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_point_set() {
        let _ = MultiReplayAggregator::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "one ones-count per analysis point")]
    fn rejects_mismatched_ones_slice() {
        let mut multi = MultiReplayAggregator::new(points());
        multi.record(ExposureKind::Demand, &[1], 1);
    }
}
