//! Batched multi-point replay: score every sweep point in one pass.
//!
//! An ECC sweep (`replay_ecc_sweep`, `reap sweep --ecc-sweep`) evaluates
//! the same captured exposure stream under several analysis points — one
//! per `EccStrength` × MTJ operating point. Walking the stream once per
//! point repeats all the per-record bookkeeping (and the stream itself
//! falls out of cache between walks). [`MultiReplayAggregator`] instead
//! carries the state of *all* points and scores each record against every
//! point before moving to the next record, so the stream is traversed
//! exactly once.
//!
//! Two kernels implement the same contract:
//!
//! * [`MultiReplayAggregator`] — the production kernel. All per-point
//!   state lives in flat structure-of-arrays lanes (`conv_sum[p]`,
//!   `reap_sum[p]`, …), the per-record hot path walks points in explicit
//!   4-wide chunks (table gathers, dense memo probes and the three
//!   scheme accumulations are all straight-line array arithmetic the
//!   compiler can vectorize), and both the Eq. (3) conventional tail
//!   *and* the Eq. (6) REAP term are memoized over the dense small-`N`
//!   region, so the `exp_m1` transcendental runs once per distinct
//!   `(point, ones, N)` key instead of once per record.
//! * [`ScalarMultiReplayAggregator`] — the original points-inner scalar
//!   kernel (PR 4), kept verbatim as the reference implementation. The
//!   benchmark suite and the proptests pin the vectorized kernel
//!   bit-identical to it.
//!
//! Shared data-layout tricks:
//!
//! * the per-point `single_read_table`s are stacked into one
//!   point-innermost `stride × points` matrix (`stride = global
//!   max_ones + 1`, each column pre-clamped to its own point's width),
//!   so one record's per-point gather — a handful of distinct `ones`
//!   values across adjacent `p` — touches a couple of cache lines
//!   inside a single contiguous allocation; a parallel matrix caches
//!   `ln(1 − u)` so the Eq. (6) REAP term needs one `exp_m1` per key
//!   instead of `ln_1p` + `exp_m1`;
//! * the conventional tail `fail_conventional(ones, N)` is memoized in a
//!   dense `(point, ones, N)` table for `N ≤ 64` — the `N` distribution
//!   is heavily concentrated at small values (most demand reads conceal
//!   nothing), so the binomial tail series runs once per distinct key
//!   instead of once per record;
//! * histogram bin membership and event counts depend only on the record
//!   (`N` and kind), not on the point, so the vectorized kernel keeps
//!   *one* shared count vector and per-point failure lanes, rebuilding
//!   per-point [`LogHistogram`]s only at [`finish`].
//!
//! # Bit-identity contract
//!
//! In [`KernelMode::Exact`] (the default) both kernels are
//! **bit-identical** to running `points.len()` independent
//! [`ReplayAggregator`]s over the stream in capture order: each point's
//! floating-point sums see the same values in the same order (records
//! outer, points inner preserves per-point record order), the stacked
//! rows reproduce the per-point clamp semantics exactly, and every
//! memoized value is the output of the same pure function on the same
//! inputs. `crates/core/tests/proptests.rs` pins this contract.
//!
//! [`KernelMode::FastMath`] relaxes it: when the Eq. (6) argument
//! `x = N·ln(1−u)` satisfies `|x| < 1e-8`, the kernel uses the linear
//! approximation `exp(x) − 1 ≈ x` instead of calling `exp_m1`. The
//! truncation error of that shortcut is `x²/2 + O(x³)`, i.e. a
//! *relative* error below `|x|/2 < 5e-9` per event, so every
//! accumulated scheme sum is within `5e-9` relative of the exact
//! kernel's. A bounded-error test pins that envelope.
//!
//! [`finish`]: MultiReplayAggregator::finish

use crate::histogram::LogHistogram;
use crate::model::AccumulationModel;
use crate::mttf::FailureAggregator;
use crate::replay::{ExposureKind, ReplayAggregator};

/// Largest `N` covered by the dense `fail_conventional`/`fail_reap`
/// memos. Beyond this the terms are computed directly (still
/// bit-identical — the memos only cache, never approximate).
const MEMO_MAX_READS: u64 = 64;

/// Lane width of the explicit point-chunking in the vectorized kernel.
const LANES: usize = 4;

/// XOR mask for memo cells: a cell stores `bits(value) ^ MEMO_XOR`, so
/// the zero cells a freshly zero-allocated memo starts with decode to a
/// quiet NaN (the "not computed" sentinel). Zeroed allocation is backed
/// by copy-on-write zero pages, so building the memos costs nothing
/// until cells are actually probed — the kernel's fixed setup cost no
/// longer scales with `points × stride` on short captures. A computed
/// term whose bits happened to equal the mask would re-encode to zero
/// and merely be recomputed on the next probe; terms are finite
/// probabilities, never NaN, so that cannot occur.
const MEMO_XOR: u64 = 0x7ff8_0000_0000_0000;

/// Decodes a memo cell (NaN = not computed).
#[inline(always)]
fn memo_get(cell: u64) -> f64 {
    f64::from_bits(cell ^ MEMO_XOR)
}

/// Encodes a computed term into its memo-cell representation.
#[inline(always)]
fn memo_put(value: f64) -> u64 {
    value.to_bits() ^ MEMO_XOR
}

/// Number of log₂ histogram bins a `u64` read count can land in.
const HIST_BINS: usize = 64;

/// Numerical mode of the batched kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Bit-identical to independent per-point [`ReplayAggregator`]s
    /// (the default — accumulation order and every intermediate are
    /// preserved exactly).
    #[default]
    Exact,
    /// Permits the documented small-argument `exp_m1` shortcut in the
    /// Eq. (6) REAP term: for `|N·ln(1−u)| < 1e-8` the linear
    /// approximation is used, bounding each event's relative error by
    /// `5e-9` (and therefore each accumulated sum's relative error by
    /// the same factor). Not bit-identical to [`KernelMode::Exact`].
    FastMath,
}

/// Eq. (6) REAP term `1 − (1 − u)^N` from the precomputed `ln(1 − u)`,
/// with the degenerate corners pinned exactly as in
/// [`AccumulationModel::fail_reap`]: zero reads can't fail, and a
/// certainly-failing read (`u = 1`, where `ln(1 − u) = −inf`) fails for
/// any `N ≥ 1`. Without the guards `0 × −inf` goes NaN.
#[inline]
fn reap_term(u: f64, ln1m_u: f64, n_reads: u64, fast: bool) -> f64 {
    if u == 0.0 || n_reads == 0 {
        0.0
    } else if u == 1.0 {
        1.0
    } else {
        let x = n_reads as f64 * ln1m_u;
        if fast && x > -1e-8 {
            // exp(x) - 1 = x + x²/2 + …; dropping the tail keeps the
            // relative error below |x|/2 < 5e-9.
            -x
        } else {
            -x.exp_m1()
        }
    }
}

/// Scores a captured exposure stream against many analysis points in a
/// single pass — the vectorized structure-of-arrays kernel,
/// bit-identical (in [`KernelMode::Exact`]) to independent per-point
/// replays and to [`ScalarMultiReplayAggregator`].
///
/// # Examples
///
/// ```
/// use reap_reliability::{
///     AccumulationModel, ExposureKind, MultiReplayAggregator, ReplayAggregator,
/// };
///
/// let points = vec![
///     (AccumulationModel::new(1e-8, 1), 522),
///     (AccumulationModel::new(1e-8, 2), 532),
/// ];
/// let mut multi = MultiReplayAggregator::new(points.clone());
/// let mut solo: Vec<_> = points
///     .iter()
///     .map(|&(m, w)| ReplayAggregator::new(m, w))
///     .collect();
/// multi.record(ExposureKind::Demand, &[260, 265], 40);
/// solo[0].record(ExposureKind::Demand, 260, 40);
/// solo[1].record(ExposureKind::Demand, 265, 40);
/// for (got, want) in multi.finish().iter().zip(&solo) {
///     assert_eq!(
///         got.conventional().expected_failures(),
///         want.conventional().expected_failures(),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MultiReplayAggregator {
    /// Per-point accumulation models, indexed like every lane array.
    models: Vec<AccumulationModel>,
    /// Per-point stored line widths (`max_ones`).
    widths: Vec<u32>,
    mode: KernelMode,
    /// Row length of the stacked tables: global `max_ones + 1`.
    stride: usize,
    /// Point-innermost `stride × points`: `single[n * points + p] =
    /// fail_single(min(n, max_ones_p))`, reproducing each point's own
    /// clamp-to-last-entry lookup semantics. Points are innermost so one
    /// record's per-point gather (few distinct `ones` values, adjacent
    /// `p`) touches a couple of cache lines, not one row per point.
    single: Vec<f64>,
    /// `ln(1 − single[..])` for the Eq. (6) closed form, same layout.
    ln1m_single: Vec<f64>,
    /// Dense memo of `fail_conventional(ones, N)` and the Eq. (6) REAP
    /// term for `N ∈ [0, MEMO_MAX_READS]`. The two are always probed
    /// together for the same `(ones, N, p)` key, so they interleave in
    /// one table: the conventional value at
    /// `((ones * 65 + N) * points + p) * 2` and the REAP term right
    /// after it — a 4-lane probe's eight loads then land in one
    /// 64-byte line instead of two. Point-innermost for the same
    /// gather locality as the stacked tables. Cells hold
    /// `bits(value) ^ MEMO_XOR`, so the all-zero state a fresh zeroed
    /// allocation starts in decodes to NaN — the "not yet computed"
    /// sentinel — without a multi-megabyte fill pass, and untouched
    /// pages are never committed. See [`memo_get`]/[`memo_put`].
    /// Caching the (pure) terms keeps `exp_m1` off the per-record
    /// path.
    memo: Vec<u64>,
    /// Per-point running sums — the lanes the hot loop writes.
    conv_sum: Vec<f64>,
    reap_sum: Vec<f64>,
    serial_sum: Vec<f64>,
    wb_sum: Vec<f64>,
    /// Point-innermost `HIST_BINS × points` per-bin conventional
    /// failure sums (one record hits one bin across all points).
    hist_fail: Vec<f64>,
    /// Shared per-bin demand counts (bin membership depends only on `N`,
    /// so every point's count vector is identical).
    hist_counts: Vec<u64>,
    /// Allocated-bin watermark, mirroring `LogHistogram`'s growth:
    /// highest touched bin + 1.
    hist_len: usize,
    /// Largest demand `N` observed (shared across points).
    hist_max_n: u64,
    /// Demand records seen (= per-point reap/serial event counts).
    demand_events: u64,
    /// Dirty-scrub records seen (demand + scrub = conventional events).
    scrub_events: u64,
}

impl MultiReplayAggregator {
    /// Creates a batched aggregator for the given `(model, max_ones)`
    /// analysis points in [`KernelMode::Exact`]. `max_ones` is the
    /// stored line width in bits for that point (data + check bits),
    /// exactly as passed to [`ReplayAggregator::new`].
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or any `max_ones == 0`.
    pub fn new(points: Vec<(AccumulationModel, u32)>) -> Self {
        Self::with_mode(points, KernelMode::Exact)
    }

    /// Creates a batched aggregator with an explicit [`KernelMode`].
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or any `max_ones == 0`.
    pub fn with_mode(points: Vec<(AccumulationModel, u32)>, mode: KernelMode) -> Self {
        assert!(!points.is_empty(), "need at least one analysis point");
        let stride = points
            .iter()
            .map(|&(_, w)| {
                assert!(w > 0, "line width must be positive");
                w as usize + 1
            })
            .max()
            .expect("non-empty");
        let npts = points.len();
        let mut single = Vec::with_capacity(npts * stride);
        let mut ln1m_single = Vec::with_capacity(npts * stride);
        for n in 0..stride {
            for &(model, max_ones) in &points {
                let u = model.fail_single((n as u32).min(max_ones));
                single.push(u);
                ln1m_single.push((-u).ln_1p());
            }
        }
        let memo_cells = npts * stride * (MEMO_MAX_READS as usize + 1);
        let (models, widths) = points.into_iter().unzip();
        Self {
            models,
            widths,
            mode,
            stride,
            single,
            ln1m_single,
            memo: vec![0; memo_cells * 2],
            conv_sum: vec![0.0; npts],
            reap_sum: vec![0.0; npts],
            serial_sum: vec![0.0; npts],
            wb_sum: vec![0.0; npts],
            hist_fail: vec![0.0; npts * HIST_BINS],
            hist_counts: vec![0; HIST_BINS],
            hist_len: 0,
            hist_max_n: 0,
            demand_events: 0,
            scrub_events: 0,
        }
    }

    /// Number of analysis points being scored.
    pub fn num_points(&self) -> usize {
        self.models.len()
    }

    /// The kernel's numerical mode.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Scores one exposure record against every point. `line_ones[p]` is
    /// the stored-`1` count of the line *as sampled for point `p`'s
    /// stored width* — widths differ across ECC strengths, so the caller
    /// samples once per distinct width and scatters.
    ///
    /// Records must be fed in capture order (the bit-identity contract).
    ///
    /// # Panics
    ///
    /// Panics if `line_ones.len() != self.num_points()`, or on a demand
    /// record with `unchecked_reads == 0` (every demand read counts
    /// itself, so `N ≥ 1`).
    pub fn record(&mut self, kind: ExposureKind, line_ones: &[u32], unchecked_reads: u64) {
        assert_eq!(
            line_ones.len(),
            self.models.len(),
            "one ones-count per analysis point"
        );
        match kind {
            ExposureKind::Demand => {
                self.record_demand_run(&[(ExposureKind::Demand, unchecked_reads)], line_ones)
            }
            ExposureKind::DirtyScrub => {
                self.scrub_events += 1;
                for (p, &ones) in line_ones.iter().enumerate() {
                    let p_conv = self.conventional_tail(p, ones, unchecked_reads);
                    self.conv_sum[p] += p_conv;
                }
            }
            ExposureKind::DirtyEviction => {
                for (p, &ones) in line_ones.iter().enumerate() {
                    let p_conv = self.conventional_tail(p, ones, unchecked_reads);
                    self.wb_sum[p] += p_conv;
                }
            }
        }
    }

    /// Scores a block of exposure records at once: `records[r]` is
    /// `(kind, unchecked_reads)` and `ones[r * points .. (r+1) * points]`
    /// its per-point stored-`1` counts, exactly as [`record`](Self::record)
    /// would take them. Bit-identical to calling `record` per item in
    /// order — runs of consecutive demand records are handed to the
    /// run-blocked hot loop, which keeps each lane's running sums in
    /// registers across the run instead of a load/add/store round trip
    /// per record (per point the additions still happen in record
    /// order, so the float sums are unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `ones.len() != records.len() * self.num_points()`, or
    /// on a demand record with `unchecked_reads == 0`.
    pub fn record_block(&mut self, records: &[(ExposureKind, u64)], ones: &[u32]) {
        let npts = self.models.len();
        assert_eq!(
            ones.len(),
            records.len() * npts,
            "one ones-count per record per analysis point"
        );
        let mut i = 0;
        while i < records.len() {
            let (kind, reads) = records[i];
            match kind {
                ExposureKind::Demand => {
                    let mut j = i + 1;
                    while j < records.len() && records[j].0 == ExposureKind::Demand {
                        j += 1;
                    }
                    self.record_demand_run(&records[i..j], &ones[i * npts..j * npts]);
                    i = j;
                }
                _ => {
                    self.record(kind, &ones[i * npts..(i + 1) * npts], reads);
                    i += 1;
                }
            }
        }
    }

    /// The demand hot path: record-level bookkeeping for the whole run
    /// first, then the per-point work in explicit 4-wide lanes with the
    /// running sums register-blocked across the run. Every record in
    /// `run` is a demand record; `ones` is record-major,
    /// `run.len() * points` wide.
    fn record_demand_run(&mut self, run: &[(ExposureKind, u64)], ones: &[u32]) {
        for &(_, n) in run {
            assert!(n >= 1, "N counts the demand read itself, so N >= 1");
            let bin = (63 - n.leading_zeros()) as usize;
            if bin >= self.hist_len {
                self.hist_len = bin + 1;
            }
            self.hist_counts[bin] += 1;
            if n > self.hist_max_n {
                self.hist_max_n = n;
            }
        }
        self.demand_events += run.len() as u64;

        let stride = self.stride;
        let memo_w = MEMO_MAX_READS as usize + 1;
        let npts = self.models.len();

        let mut p = 0;
        while p + LANES <= npts {
            // The four lanes' sums live in registers for the whole run;
            // per point the additions still happen in record order, so
            // this is the same float sum the per-record path produces.
            let mut cs = [0.0f64; LANES];
            let mut rs = [0.0f64; LANES];
            let mut ss = [0.0f64; LANES];
            cs.copy_from_slice(&self.conv_sum[p..p + LANES]);
            rs.copy_from_slice(&self.reap_sum[p..p + LANES]);
            ss.copy_from_slice(&self.serial_sum[p..p + LANES]);
            for (r, &(_, n)) in run.iter().enumerate() {
                let row = &ones[r * npts..(r + 1) * npts];
                let bin = (63 - n.leading_zeros()) as usize;
                let memoable = n <= MEMO_MAX_READS;
                // 4-wide gather from the stacked single table. ln(1-u)
                // is only needed to *compute* a REAP term, so it stays
                // out of the steady-state loop and is loaded on memo
                // misses only.
                let mut u = [0.0f64; LANES];
                let mut ti = [0usize; LANES];
                for l in 0..LANES {
                    ti[l] = (row[p + l] as usize).min(stride - 1) * npts + p + l;
                    u[l] = self.single[ti[l]];
                }
                let mut pc = [0.0f64; LANES];
                let mut pr = [0.0f64; LANES];
                // 4-wide dense memo probe. Sampled ones-counts are
                // always within each point's width, so the
                // all-lanes-in-range test only fails on out-of-contract
                // callers (who still get the per-lane clamp semantics
                // via the slow path).
                let in_range = memoable && (0..LANES).all(|l| (row[p + l] as usize) < stride);
                if in_range {
                    let mut mi = [0usize; LANES];
                    for l in 0..LANES {
                        mi[l] = ((row[p + l] as usize * memo_w + n as usize) * npts + p + l) * 2;
                    }
                    for l in 0..LANES {
                        pc[l] = memo_get(self.memo[mi[l]]);
                        pr[l] = memo_get(self.memo[mi[l] + 1]);
                    }
                    // Cached cells are finite probabilities and NaN
                    // marks "not computed", so one NaN-sum test covers
                    // all lanes.
                    let probe = pc[0] + pc[1] + pc[2] + pc[3] + pr[0] + pr[1] + pr[2] + pr[3];
                    if probe.is_nan() {
                        let fast = self.mode == KernelMode::FastMath;
                        for l in 0..LANES {
                            if pc[l].is_nan() {
                                let v = self.models[p + l].fail_conventional(row[p + l], n);
                                self.memo[mi[l]] = memo_put(v);
                                pc[l] = v;
                            }
                            if pr[l].is_nan() {
                                let v = reap_term(u[l], self.ln1m_single[ti[l]], n, fast);
                                self.memo[mi[l] + 1] = memo_put(v);
                                pr[l] = v;
                            }
                        }
                    }
                } else {
                    for l in 0..LANES {
                        let (c, rr) = self.demand_terms(p + l, row[p + l], n, u[l]);
                        pc[l] = c;
                        pr[l] = rr;
                    }
                }
                // Straight-line lane accumulation into the register
                // sums; only the histogram (whose bin varies by record)
                // writes through to memory here.
                for l in 0..LANES {
                    cs[l] += pc[l];
                    rs[l] += pr[l];
                    ss[l] += u[l];
                    self.hist_fail[bin * npts + p + l] += pc[l];
                }
            }
            self.conv_sum[p..p + LANES].copy_from_slice(&cs);
            self.reap_sum[p..p + LANES].copy_from_slice(&rs);
            self.serial_sum[p..p + LANES].copy_from_slice(&ss);
            p += LANES;
        }
        // Remainder points, one lane at a time, same register blocking.
        while p < npts {
            let mut c = self.conv_sum[p];
            let mut rsum = self.reap_sum[p];
            let mut s = self.serial_sum[p];
            for (r, &(_, n)) in run.iter().enumerate() {
                let ones_p = ones[r * npts + p];
                let bin = (63 - n.leading_zeros()) as usize;
                let idx = (ones_p as usize).min(stride - 1) * npts + p;
                let u = self.single[idx];
                let (pc, pr) = self.demand_terms(p, ones_p, n, u);
                c += pc;
                rsum += pr;
                s += u;
                self.hist_fail[bin * npts + p] += pc;
            }
            self.conv_sum[p] = c;
            self.reap_sum[p] = rsum;
            self.serial_sum[p] = s;
            p += 1;
        }
    }

    /// Memoized `(fail_conventional, reap_term)` for one point — the
    /// scalar fallback shared by the remainder loop and the mixed
    /// in-range/out-of-range lane path. Loads `ln(1-u)` itself, and
    /// only when it actually has to evaluate the REAP term.
    #[inline]
    fn demand_terms(&mut self, p: usize, ones: u32, n: u64, u: f64) -> (f64, f64) {
        let fast = self.mode == KernelMode::FastMath;
        let npts = self.models.len();
        let l1m_at = (ones as usize).min(self.stride - 1) * npts + p;
        if n <= MEMO_MAX_READS && (ones as usize) < self.stride {
            let mi = ((ones as usize * (MEMO_MAX_READS as usize + 1) + n as usize) * npts + p) * 2;
            let mut pc = memo_get(self.memo[mi]);
            if pc.is_nan() {
                pc = self.models[p].fail_conventional(ones, n);
                self.memo[mi] = memo_put(pc);
            }
            let mut pr = memo_get(self.memo[mi + 1]);
            if pr.is_nan() {
                pr = reap_term(u, self.ln1m_single[l1m_at], n, fast);
                self.memo[mi + 1] = memo_put(pr);
            }
            (pc, pr)
        } else {
            (
                self.models[p].fail_conventional(ones, n),
                reap_term(u, self.ln1m_single[l1m_at], n, fast),
            )
        }
    }

    /// Scores a whole stream of `(kind, line_ones, unchecked_reads)`
    /// records, in iteration order — the streaming-feeder counterpart of
    /// [`record`](Self::record), for callers that pull records off a
    /// bounded-memory iterator instead of holding a slice. Exactly
    /// equivalent to calling `record` per item.
    ///
    /// # Panics
    ///
    /// Panics if any item's `line_ones.len() != self.num_points()`.
    pub fn record_all<'a, I>(&mut self, records: I)
    where
        I: IntoIterator<Item = (ExposureKind, &'a [u32], u64)>,
    {
        for (kind, line_ones, unchecked_reads) in records {
            self.record(kind, line_ones, unchecked_reads);
        }
    }

    /// Tears the batch apart into one [`ReplayAggregator`] per point, in
    /// construction order, each indistinguishable from an independent
    /// replay of the stream.
    pub fn finish(self) -> Vec<ReplayAggregator> {
        let conv_events = self.demand_events + self.scrub_events;
        let shared_counts = self.hist_counts[..self.hist_len].to_vec();
        self.models
            .iter()
            .zip(&self.widths)
            .enumerate()
            .map(|(p, (&model, &width))| {
                let npts = self.models.len();
                let histogram = LogHistogram::from_parts(
                    shared_counts.clone(),
                    (0..self.hist_len)
                        .map(|bin| self.hist_fail[bin * npts + p])
                        .collect(),
                    self.hist_max_n,
                );
                ReplayAggregator::from_parts(
                    model,
                    width,
                    FailureAggregator::from_parts(self.conv_sum[p], conv_events),
                    FailureAggregator::from_parts(self.reap_sum[p], self.demand_events),
                    FailureAggregator::from_parts(self.serial_sum[p], self.demand_events),
                    histogram,
                    self.wb_sum[p],
                )
            })
            .collect()
    }

    /// `fail_conventional(ones, n_reads)` for point `p`, memoized over
    /// the dense small-`N` region. The memo stores exact outputs of the
    /// pure model function, so hits and misses are bit-identical.
    fn conventional_tail(&mut self, p: usize, ones: u32, n_reads: u64) -> f64 {
        if n_reads <= MEMO_MAX_READS && (ones as usize) < self.stride {
            let idx = ((ones as usize * (MEMO_MAX_READS as usize + 1) + n_reads as usize)
                * self.models.len()
                + p)
                * 2;
            let cached = memo_get(self.memo[idx]);
            if !cached.is_nan() {
                return cached;
            }
            let value = self.models[p].fail_conventional(ones, n_reads);
            self.memo[idx] = memo_put(value);
            value
        } else {
            self.models[p].fail_conventional(ones, n_reads)
        }
    }
}

/// Per-point accumulation state of the scalar reference kernel,
/// mirroring one [`ReplayAggregator`].
#[derive(Debug, Clone)]
struct PointState {
    model: AccumulationModel,
    max_ones: u32,
    conventional: FailureAggregator,
    reap: FailureAggregator,
    serial: FailureAggregator,
    histogram: LogHistogram,
    writeback_exposure: f64,
}

/// The original points-inner scalar batched kernel (PR 4), kept as the
/// reference implementation the vectorized [`MultiReplayAggregator`] is
/// benchmarked and property-tested against. Same bit-identity contract,
/// same API surface, no lane batching and no REAP-term memo.
#[derive(Debug, Clone)]
pub struct ScalarMultiReplayAggregator {
    points: Vec<PointState>,
    /// Row length of the stacked tables: global `max_ones + 1`.
    stride: usize,
    /// Row-major `points × stride` single-read failure table.
    single: Vec<f64>,
    /// `ln(1 − single[p][n])` for the Eq. (6) closed form.
    ln1m_single: Vec<f64>,
    /// Dense `(point, ones, N)` memo of `fail_conventional(ones, N)`.
    conv_memo: Vec<f64>,
}

impl ScalarMultiReplayAggregator {
    /// Creates the scalar reference aggregator; same contract as
    /// [`MultiReplayAggregator::new`].
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or any `max_ones == 0`.
    pub fn new(points: Vec<(AccumulationModel, u32)>) -> Self {
        assert!(!points.is_empty(), "need at least one analysis point");
        let stride = points
            .iter()
            .map(|&(_, w)| {
                assert!(w > 0, "line width must be positive");
                w as usize + 1
            })
            .max()
            .expect("non-empty");
        let mut single = Vec::with_capacity(points.len() * stride);
        let mut ln1m_single = Vec::with_capacity(points.len() * stride);
        for &(model, max_ones) in &points {
            for n in 0..stride {
                let u = model.fail_single((n as u32).min(max_ones));
                single.push(u);
                ln1m_single.push((-u).ln_1p());
            }
        }
        let conv_memo = vec![f64::NAN; points.len() * stride * (MEMO_MAX_READS as usize + 1)];
        let points = points
            .into_iter()
            .map(|(model, max_ones)| PointState {
                model,
                max_ones,
                conventional: FailureAggregator::new(),
                reap: FailureAggregator::new(),
                serial: FailureAggregator::new(),
                histogram: LogHistogram::new(),
                writeback_exposure: 0.0,
            })
            .collect();
        Self {
            points,
            stride,
            single,
            ln1m_single,
            conv_memo,
        }
    }

    /// Number of analysis points being scored.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Scores one exposure record against every point; see
    /// [`MultiReplayAggregator::record`].
    ///
    /// # Panics
    ///
    /// Panics if `line_ones.len() != self.num_points()`.
    pub fn record(&mut self, kind: ExposureKind, line_ones: &[u32], unchecked_reads: u64) {
        assert_eq!(
            line_ones.len(),
            self.points.len(),
            "one ones-count per analysis point"
        );
        match kind {
            ExposureKind::Demand => {
                for (p, &ones) in line_ones.iter().enumerate() {
                    let p_conv = self.conventional_tail(p, ones, unchecked_reads);
                    let row = p * self.stride;
                    let idx = row + (ones as usize).min(self.stride - 1);
                    let u = self.single[idx];
                    // Eq. (6) via the precomputed ln(1-u); corners pinned
                    // as in `AccumulationModel::fail_reap`.
                    let p_reap = reap_term(u, self.ln1m_single[idx], unchecked_reads, false);
                    let point = &mut self.points[p];
                    point.conventional.record(p_conv);
                    point.reap.record(p_reap);
                    point.serial.record(u);
                    point.histogram.record(unchecked_reads, p_conv);
                }
            }
            ExposureKind::DirtyScrub => {
                for (p, &ones) in line_ones.iter().enumerate() {
                    let p_conv = self.conventional_tail(p, ones, unchecked_reads);
                    self.points[p].conventional.record(p_conv);
                }
            }
            ExposureKind::DirtyEviction => {
                for (p, &ones) in line_ones.iter().enumerate() {
                    let p_conv = self.conventional_tail(p, ones, unchecked_reads);
                    self.points[p].writeback_exposure += p_conv;
                }
            }
        }
    }

    /// Streaming feeder; see [`MultiReplayAggregator::record_all`].
    ///
    /// # Panics
    ///
    /// Panics if any item's `line_ones.len() != self.num_points()`.
    pub fn record_all<'a, I>(&mut self, records: I)
    where
        I: IntoIterator<Item = (ExposureKind, &'a [u32], u64)>,
    {
        for (kind, line_ones, unchecked_reads) in records {
            self.record(kind, line_ones, unchecked_reads);
        }
    }

    /// Tears the batch apart into one [`ReplayAggregator`] per point, in
    /// construction order.
    pub fn finish(self) -> Vec<ReplayAggregator> {
        self.points
            .into_iter()
            .map(|p| {
                ReplayAggregator::from_parts(
                    p.model,
                    p.max_ones,
                    p.conventional,
                    p.reap,
                    p.serial,
                    p.histogram,
                    p.writeback_exposure,
                )
            })
            .collect()
    }

    /// `fail_conventional(ones, n_reads)` for point `p`, memoized over
    /// the dense small-`N` region.
    fn conventional_tail(&mut self, p: usize, ones: u32, n_reads: u64) -> f64 {
        if n_reads <= MEMO_MAX_READS && (ones as usize) < self.stride {
            let idx = (p * self.stride + ones as usize) * (MEMO_MAX_READS as usize + 1)
                + n_reads as usize;
            let cached = self.conv_memo[idx];
            if !cached.is_nan() {
                return cached;
            }
            let value = self.points[p].model.fail_conventional(ones, n_reads);
            self.conv_memo[idx] = value;
            value
        } else {
            self.points[p].model.fail_conventional(ones, n_reads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<(AccumulationModel, u32)> {
        vec![
            (AccumulationModel::new(1e-6, 1), 522),
            (AccumulationModel::new(1e-6, 2), 532),
            (AccumulationModel::new(1e-5, 3), 542),
        ]
    }

    /// Wider point set so the 4-wide main loop and the remainder loop
    /// both run (7 = one full chunk + 3 remainder lanes).
    fn seven_points() -> Vec<(AccumulationModel, u32)> {
        vec![
            (AccumulationModel::new(1e-6, 1), 522),
            (AccumulationModel::new(1e-6, 2), 532),
            (AccumulationModel::new(1e-5, 3), 542),
            (AccumulationModel::new(1e-7, 1), 288),
            (AccumulationModel::new(1e-8, 2), 576),
            (AccumulationModel::new(1e-5, 1), 130),
            (AccumulationModel::new(1e-4, 3), 600),
        ]
    }

    fn assert_bit_equal(got: &ReplayAggregator, want: &ReplayAggregator) {
        assert_eq!(
            got.conventional().expected_failures().to_bits(),
            want.conventional().expected_failures().to_bits()
        );
        assert_eq!(got.conventional().events(), want.conventional().events());
        assert_eq!(
            got.reap().expected_failures().to_bits(),
            want.reap().expected_failures().to_bits()
        );
        assert_eq!(got.reap().events(), want.reap().events());
        assert_eq!(
            got.serial().expected_failures().to_bits(),
            want.serial().expected_failures().to_bits()
        );
        assert_eq!(got.serial().events(), want.serial().events());
        assert_eq!(
            got.writeback_exposure().to_bits(),
            want.writeback_exposure().to_bits()
        );
        assert_eq!(got.histogram(), want.histogram());
    }

    /// Feeds the same records to both batched kernels and to independent
    /// per-point aggregators, asserting bit-equality of every observable.
    fn assert_matches_solo_at(
        pts: Vec<(AccumulationModel, u32)>,
        records: &[(ExposureKind, Vec<u32>, u64)],
    ) {
        let mut multi = MultiReplayAggregator::new(pts.clone());
        let mut scalar = ScalarMultiReplayAggregator::new(pts.clone());
        let mut solo: Vec<ReplayAggregator> = pts
            .iter()
            .map(|&(m, w)| ReplayAggregator::new(m, w))
            .collect();
        for (kind, ones, n) in records {
            multi.record(*kind, ones, *n);
            scalar.record(*kind, ones, *n);
            for (p, agg) in solo.iter_mut().enumerate() {
                agg.record(*kind, ones[p], *n);
            }
        }
        // The block entry point must be indistinguishable from the
        // per-record one; 7-record blocks straddle demand runs and the
        // feeder's block boundaries alike.
        let mut blocked = MultiReplayAggregator::new(pts.clone());
        for chunk in records.chunks(7) {
            let recs: Vec<(ExposureKind, u64)> = chunk.iter().map(|&(k, _, n)| (k, n)).collect();
            let flat: Vec<u32> = chunk
                .iter()
                .flat_map(|(_, o, _)| o.iter().copied())
                .collect();
            blocked.record_block(&recs, &flat);
        }
        for (got, want) in multi.finish().iter().zip(&solo) {
            assert_bit_equal(got, want);
        }
        for (got, want) in scalar.finish().iter().zip(&solo) {
            assert_bit_equal(got, want);
        }
        for (got, want) in blocked.finish().iter().zip(&solo) {
            assert_bit_equal(got, want);
        }
    }

    fn assert_matches_solo(records: &[(ExposureKind, Vec<u32>, u64)]) {
        assert_matches_solo_at(points(), records);
    }

    fn pseudo_records(widths: &[u32], count: u64) -> Vec<(ExposureKind, Vec<u32>, u64)> {
        let mut records = Vec::new();
        let mut state = 0x9e37u64;
        for i in 0..count {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let kind = match state % 5 {
                0 => ExposureKind::DirtyScrub,
                1 => ExposureKind::DirtyEviction,
                _ => ExposureKind::Demand,
            };
            let ones = widths
                .iter()
                .enumerate()
                .map(|(p, &w)| ((state >> (8 + 4 * (p % 8))) as u32) % (w + 1))
                .collect();
            // Mix of memoized small N and direct-computed large N.
            let n = 1 + (state >> 40) % if i % 7 == 0 { 100_000 } else { 8 };
            records.push((kind, ones, n));
        }
        records
    }

    #[test]
    fn matches_independent_aggregators_bitwise() {
        let mut records = Vec::new();
        let mut state = 0x9e37u64;
        for i in 0..500u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let kind = match state % 5 {
                0 => ExposureKind::DirtyScrub,
                1 => ExposureKind::DirtyEviction,
                _ => ExposureKind::Demand,
            };
            let ones = vec![
                (state >> 16) as u32 % 523,
                (state >> 24) as u32 % 533,
                (state >> 32) as u32 % 543,
            ];
            // Mix of memoized small N and direct-computed large N.
            let n = 1 + (state >> 40) % if i % 7 == 0 { 100_000 } else { 8 };
            records.push((kind, ones, n));
        }
        assert_matches_solo(&records);
    }

    #[test]
    fn full_and_remainder_lanes_match_solo_bitwise() {
        let pts = seven_points();
        let widths: Vec<u32> = pts.iter().map(|&(_, w)| w).collect();
        let records = pseudo_records(&widths, 500);
        assert_matches_solo_at(pts, &records);
    }

    #[test]
    fn certain_failure_corner_stays_bit_identical_and_finite() {
        // fail_single == 1.0 for every point: the u == 1 corner that used
        // to ride on exp_m1(-inf). Both kernels must agree with solo and
        // produce exactly 1.0 per demand event, never NaN.
        let pts = vec![
            (AccumulationModel::new(1.0, 1), 8),
            (AccumulationModel::new(1.0, 2), 16),
            (AccumulationModel::new(1.0, 1), 32),
        ];
        let records = vec![
            (ExposureKind::Demand, vec![8, 16, 32], 1),
            (ExposureKind::Demand, vec![8, 16, 32], 1000),
            (ExposureKind::DirtyScrub, vec![8, 16, 32], 3),
        ];
        let mut multi = MultiReplayAggregator::new(pts.clone());
        for (kind, ones, n) in &records {
            multi.record(*kind, ones, *n);
        }
        for agg in multi.finish() {
            assert_eq!(agg.reap().expected_failures(), 2.0);
            assert!(agg.reap().expected_failures().is_finite());
        }
        assert_matches_solo_at(pts, &records);
    }

    #[test]
    fn fast_math_stays_within_documented_bound() {
        let pts = seven_points();
        let widths: Vec<u32> = pts.iter().map(|&(_, w)| w).collect();
        let records = pseudo_records(&widths, 2_000);
        let mut exact = MultiReplayAggregator::with_mode(pts.clone(), KernelMode::Exact);
        let mut fast = MultiReplayAggregator::with_mode(pts.clone(), KernelMode::FastMath);
        for (kind, ones, n) in &records {
            exact.record(*kind, ones, *n);
            fast.record(*kind, ones, *n);
        }
        for (e, f) in exact.finish().iter().zip(fast.finish().iter()) {
            // Only the REAP term may deviate, by at most 5e-9 relative
            // per event (see KernelMode::FastMath).
            let ex = e.reap().expected_failures();
            let fa = f.reap().expected_failures();
            if ex != 0.0 {
                assert!(
                    ((fa - ex) / ex).abs() <= 5e-9,
                    "fast-math drift {fa} vs {ex}"
                );
            } else {
                assert_eq!(fa, 0.0);
            }
            // Everything else is untouched by the mode.
            assert_eq!(
                e.conventional().expected_failures().to_bits(),
                f.conventional().expected_failures().to_bits()
            );
            assert_eq!(
                e.serial().expected_failures().to_bits(),
                f.serial().expected_failures().to_bits()
            );
            assert_eq!(
                e.writeback_exposure().to_bits(),
                f.writeback_exposure().to_bits()
            );
            assert_eq!(e.histogram(), f.histogram());
        }
    }

    #[test]
    fn record_all_matches_per_record_feeding() {
        let records = [
            (ExposureKind::Demand, [288u32, 300, 310], 1000u64),
            (ExposureKind::DirtyScrub, [100, 110, 120], 40),
            (ExposureKind::DirtyEviction, [288, 300, 310], 500),
        ];
        let mut fed = MultiReplayAggregator::new(points());
        fed.record_all(records.iter().map(|(k, ones, n)| (*k, &ones[..], *n)));
        let mut reference = MultiReplayAggregator::new(points());
        for (kind, ones, n) in &records {
            reference.record(*kind, ones, *n);
        }
        for (got, want) in fed.finish().iter().zip(reference.finish().iter()) {
            assert_eq!(
                got.conventional().expected_failures().to_bits(),
                want.conventional().expected_failures().to_bits()
            );
            assert_eq!(
                got.writeback_exposure().to_bits(),
                want.writeback_exposure().to_bits()
            );
        }
    }

    #[test]
    fn memo_hits_and_misses_agree() {
        // Repeat the exact same key so the second call is a memo hit.
        let records = vec![
            (ExposureKind::Demand, vec![260, 260, 260], 3),
            (ExposureKind::Demand, vec![260, 260, 260], 3),
            (ExposureKind::Demand, vec![260, 260, 260], MEMO_MAX_READS),
            (
                ExposureKind::Demand,
                vec![260, 260, 260],
                MEMO_MAX_READS + 1,
            ),
        ];
        assert_matches_solo(&records);
    }

    #[test]
    fn out_of_range_ones_clamp_like_each_point() {
        // 10_000 exceeds every width; each point clamps to its own max.
        let records = vec![(ExposureKind::Demand, vec![10_000, 10_000, 10_000], 5)];
        assert_matches_solo(&records);
        // Same through the 4-wide main loop.
        let pts = seven_points();
        let records = vec![(ExposureKind::Demand, vec![10_000; 7], 5)];
        assert_matches_solo_at(pts, &records);
    }

    #[test]
    fn finish_preserves_point_order() {
        let pts = points();
        let multi = MultiReplayAggregator::new(pts.clone());
        let finished = multi.finish();
        assert_eq!(finished.len(), pts.len());
        for (agg, (model, _)) in finished.iter().zip(&pts) {
            assert_eq!(agg.model(), model);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_point_set() {
        let _ = MultiReplayAggregator::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn scalar_rejects_empty_point_set() {
        let _ = ScalarMultiReplayAggregator::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "one ones-count per analysis point")]
    fn rejects_mismatched_ones_slice() {
        let mut multi = MultiReplayAggregator::new(points());
        multi.record(ExposureKind::Demand, &[1], 1);
    }

    #[test]
    #[should_panic(expected = "one ones-count per analysis point")]
    fn scalar_rejects_mismatched_ones_slice() {
        let mut multi = ScalarMultiReplayAggregator::new(points());
        multi.record(ExposureKind::Demand, &[1], 1);
    }
}
