//! Binomial failure models — Eqs. (2), (3), (6) of the paper, generalized
//! to `t`-error-correcting codes.
//!
//! A read of a line with `n` stored `1`s is a binomial experiment: each
//! `1` flips independently with probability `p` (Eq. (1)). With a
//! `t`-error-correcting code, the block is uncorrectable when more than
//! `t` of the `m` trials fail:
//!
//! ```text
//! P_unc(m, p, t) = P[X > t],  X ~ Binomial(m, p)
//! ```
//!
//! * Conventional cache with `N` accumulated (unchecked) reads:
//!   `m = N·n` — Eq. (3) is the `t = 1` case.
//! * REAP cache: each of the `N` reads is checked individually, so the
//!   block survives iff every read is individually correctable:
//!   `P_fail = 1 − (1 − P_unc(n, p, t))^N` — Eq. (6).
//!
//! All tails are summed term by term in log space. For the regime of
//! interest (`p ≤ 1e-4`, `m·p ≪ t`), the series converges within a few
//! terms and stays accurate at magnitudes far below `f64::MIN_POSITIVE`'s
//! complement (values like 1e-26 are exact, not `0` or `1 - 1` artifacts).

/// Natural log of `n!` via Stirling's series (exact table for small `n`).
fn ln_factorial(n: u64) -> f64 {
    // ln(2!) happens to be ln 2; the table is factorial logs, not constants.
    #[allow(clippy::approx_constant)]
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_894,
        30.671_860_106_080_672,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    if n < 21 {
        return TABLE[n as usize];
    }
    let x = n as f64;
    // Stirling with 1/(12n) and 1/(360n^3) corrections: <1e-12 relative
    // error for n >= 21.
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

/// Natural log of the binomial coefficient `C(m, i)`.
fn ln_choose(m: u64, i: u64) -> f64 {
    debug_assert!(i <= m);
    ln_factorial(m) - ln_factorial(i) - ln_factorial(m - i)
}

/// Probability that a binomial experiment with `trials` trials of
/// per-trial failure probability `p` produces **more than `t`** failures —
/// i.e. the block is uncorrectable under a `t`-error-correcting code.
///
/// Eq. (2) of the paper is `1 − uncorrectable_probability(n, p, 1)`;
/// Eq. (3) is `uncorrectable_probability(N·n, p, 1)`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use reap_reliability::uncorrectable_probability;
///
/// // The paper's Eq. (4): n = 100, p = 1e-8, SEC -> ~5e-13.
/// let p = uncorrectable_probability(100, 1e-8, 1);
/// assert!((p / 4.95e-13 - 1.0).abs() < 0.02);
/// ```
pub fn uncorrectable_probability(trials: u64, p: f64, t: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if trials == 0 || p == 0.0 {
        return 0.0;
    }
    if trials as usize <= t {
        return 0.0; // cannot exceed t failures with <= t trials
    }
    if p == 1.0 {
        return 1.0; // all trials fail, trials > t
    }
    let ln_p = p.ln();
    let ln_q = (-p).ln_1p();
    let mean = trials as f64 * p;
    if mean > t as f64 + 1.0 {
        // Heavy regime: compute via the complement CDF (sum i = 0..=t).
        let mut cdf = 0.0f64;
        for i in 0..=t as u64 {
            let ln_term = ln_choose(trials, i) + i as f64 * ln_p + (trials - i) as f64 * ln_q;
            cdf += ln_term.exp();
        }
        return (1.0 - cdf).clamp(0.0, 1.0);
    }
    // Light regime (the STT-MRAM operating point): sum the tail directly.
    let mut sum = 0.0f64;
    let mut i = t as u64 + 1;
    let ln_first = ln_choose(trials, i) + i as f64 * ln_p + (trials - i) as f64 * ln_q;
    let mut term = ln_first.exp();
    loop {
        sum += term;
        if i >= trials {
            break;
        }
        // term_{i+1} / term_i = (m - i)/(i + 1) * p/q
        let ratio = (trials - i) as f64 / (i + 1) as f64 * (p / (1.0 - p));
        term *= ratio;
        i += 1;
        if term < sum * 1e-17 || term == 0.0 {
            break;
        }
    }
    sum.min(1.0)
}

/// The three failure laws of the paper for one protection strength.
///
/// Wraps a per-read, per-cell disturbance probability `p` and a code
/// correction capability `t`, exposing the conventional (accumulating),
/// REAP (check-every-read) and single-read failure probabilities.
///
/// # Examples
///
/// ```
/// use reap_reliability::AccumulationModel;
///
/// let m = AccumulationModel::new(1e-8, 1);
/// // Accumulation is strictly worse than checking every read.
/// assert!(m.fail_conventional(256, 100) > m.fail_reap(256, 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccumulationModel {
    p_rd: f64,
    t: usize,
}

impl AccumulationModel {
    /// Creates a model for disturbance probability `p_rd` and a
    /// `t`-error-correcting code.
    ///
    /// # Panics
    ///
    /// Panics if `p_rd` is outside `[0, 1]` or `t == 0`.
    pub fn new(p_rd: f64, t: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_rd),
            "probability out of range: {p_rd}"
        );
        assert!(t > 0, "correction capability must be at least 1");
        Self { p_rd, t }
    }

    /// Convenience constructor for the paper's single-error-correcting
    /// setting.
    pub fn sec(p_rd: f64) -> Self {
        Self::new(p_rd, 1)
    }

    /// The per-read, per-cell disturbance probability.
    pub fn p_rd(&self) -> f64 {
        self.p_rd
    }

    /// The code's correction capability `t`.
    pub fn correction_capability(&self) -> usize {
        self.t
    }

    /// Failure probability of a single checked read of a line with
    /// `n_ones` stored `1`s (complement of Eq. (2)).
    pub fn fail_single(&self, n_ones: u32) -> f64 {
        uncorrectable_probability(u64::from(n_ones), self.p_rd, self.t)
    }

    /// Conventional cache, Eq. (3): the line was read `n_reads` times
    /// (N−1 concealed + the final demand read) and only checked at the
    /// end; disturbances accumulate across all `n_reads · n_ones` trials.
    ///
    /// The trial count saturates at `u64::MAX` instead of wrapping: a
    /// wrapped product would silently score an astronomically exposed
    /// line as nearly fresh, and at saturation scale the probability is
    /// indistinguishable from the true value anyway.
    pub fn fail_conventional(&self, n_ones: u32, n_reads: u64) -> f64 {
        uncorrectable_probability(n_reads.saturating_mul(u64::from(n_ones)), self.p_rd, self.t)
    }

    /// REAP cache, Eq. (6): each of the `n_reads` reads is checked (and
    /// corrected) individually; the block fails iff any single read is
    /// individually uncorrectable.
    ///
    /// Degenerate corners are pinned explicitly: zero reads can't fail
    /// (`N = 0` ⇒ 0), and a certainly-failing read fails for any `N ≥ 1`
    /// (`single = 1` ⇒ 1). Without the guards the closed form evaluates
    /// `0 × ln(0) = 0 × −inf = NaN` at the intersection of the two.
    pub fn fail_reap(&self, n_ones: u32, n_reads: u64) -> f64 {
        let single = self.fail_single(n_ones);
        if single == 0.0 || n_reads == 0 {
            return 0.0;
        }
        if single == 1.0 {
            return 1.0;
        }
        // 1 - (1 - single)^N, stable for tiny `single`.
        -(n_reads as f64 * (-single).ln_1p()).exp_m1()
    }

    /// The per-demand-event MTTF improvement factor of REAP over the
    /// conventional cache (`fail_conventional / fail_reap`), ≈ `N` in the
    /// small-`p` SEC regime.
    pub fn improvement(&self, n_ones: u32, n_reads: u64) -> f64 {
        let conv = self.fail_conventional(n_ones, n_reads);
        let reap = self.fail_reap(n_ones, n_reads);
        if reap == 0.0 {
            return 1.0;
        }
        conv / reap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_matches_direct_products() {
        for n in 0..30u64 {
            let direct: f64 = (1..=n).map(|k| (k as f64).ln()).sum();
            assert!(
                (ln_factorial(n) - direct).abs() < 1e-9,
                "n = {n}: {} vs {direct}",
                ln_factorial(n)
            );
        }
    }

    #[test]
    fn ln_choose_matches_pascal() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-12);
        assert!((ln_choose(52, 5) - 2_598_960.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn paper_equation_four() {
        // n = 100 ones, p = 1e-8, SEC, single read: ≈ 4.95e-13
        // (the paper rounds to 5.0e-13).
        let p = uncorrectable_probability(100, 1e-8, 1);
        assert!((p / 4.949_999e-13 - 1.0).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn paper_equation_five() {
        // 50 accumulated reads: trials = 5000 => C(5000,2) p^2 ≈ 1.25e-9
        // (the paper rounds to 1.3e-9).
        let p = uncorrectable_probability(5000, 1e-8, 1);
        assert!((p / 1.249_75e-9 - 1.0).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn fail_reap_degenerate_corners_are_exact() {
        // p_rd = 1, SEC, 4 ones: every read is individually uncorrectable.
        let certain = AccumulationModel::new(1.0, 1);
        assert_eq!(certain.fail_single(4), 1.0);
        // The NaN corner: 0 reads of a certainly-failing line is still
        // zero failures, not 0 × -inf.
        assert_eq!(certain.fail_reap(4, 0), 0.0);
        assert!(!certain.fail_reap(4, 0).is_nan());
        // Any positive read count of a certainly-failing line fails.
        assert_eq!(certain.fail_reap(4, 1), 1.0);
        assert_eq!(certain.fail_reap(4, 1_000_000), 1.0);
        // Zero reads under an ordinary model is exactly +0.0, as before.
        let m = AccumulationModel::sec(1e-8);
        assert_eq!(m.fail_reap(100, 0).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn fail_conventional_saturates_the_trial_count() {
        // u64::MAX reads of a many-ones line: the trial product must
        // saturate, not wrap to a small count that scores the line as
        // nearly fresh. At that exposure the failure is certain.
        let m = AccumulationModel::sec(1e-8);
        let p = m.fail_conventional(100, u64::MAX);
        assert!(p.is_finite());
        assert!((p - 1.0).abs() < 1e-12, "saturated exposure must fail: {p}");
        // Monotonicity across the would-be overflow boundary.
        assert!(m.fail_conventional(100, u64::MAX) >= m.fail_conventional(100, u64::MAX / 100));
    }

    #[test]
    fn paper_section_four_reap_example() {
        // REAP with N = 50: ≈ 50x the single-read probability ≈ 2.5e-11
        // (the paper reports 2.6e-11 and "50x lower than conventional").
        let m = AccumulationModel::sec(1e-8);
        let reap = m.fail_reap(100, 50);
        assert!((reap / 2.475e-11 - 1.0).abs() < 1e-3, "reap = {reap}");
        let ratio = m.fail_conventional(100, 50) / reap;
        assert!((ratio - 50.0).abs() < 0.5, "ratio = {ratio}");
    }

    #[test]
    fn zero_cases() {
        assert_eq!(uncorrectable_probability(0, 1e-8, 1), 0.0);
        assert_eq!(uncorrectable_probability(100, 0.0, 1), 0.0);
        assert_eq!(
            uncorrectable_probability(1, 0.5, 1),
            0.0,
            "1 trial cannot exceed t = 1"
        );
        assert_eq!(uncorrectable_probability(3, 1.0, 2), 1.0);
    }

    #[test]
    fn monotone_in_trials_probability_and_t() {
        let base = uncorrectable_probability(1000, 1e-8, 1);
        assert!(uncorrectable_probability(2000, 1e-8, 1) > base);
        assert!(uncorrectable_probability(1000, 2e-8, 1) > base);
        assert!(uncorrectable_probability(1000, 1e-8, 2) < base);
    }

    #[test]
    fn heavy_regime_matches_exact_small_case() {
        // Binomial(4, 0.5), t = 1: P[X > 1] = 1 - (C(4,0)+C(4,1))/16 = 11/16.
        let p = uncorrectable_probability(4, 0.5, 1);
        assert!((p - 11.0 / 16.0).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn light_regime_matches_exact_small_case() {
        // Binomial(3, 1e-3), t = 1: exact tail = 3 q p^2 + p^3.
        let pp = 1e-3f64;
        let exact = 3.0 * (1.0 - pp) * pp * pp + pp * pp * pp;
        let got = uncorrectable_probability(3, pp, 1);
        assert!(
            (got / exact - 1.0).abs() < 1e-12,
            "got {got}, exact {exact}"
        );
    }

    #[test]
    fn regimes_agree_at_the_boundary() {
        // mean = trials * p around t + 1 should be continuous-ish.
        let t = 1usize;
        let p = 1e-3;
        let a = uncorrectable_probability(1_999, p, t); // mean 1.999, light
        let b = uncorrectable_probability(2_001, p, t); // mean 2.001, heavy
        assert!((a / b - 1.0).abs() < 0.01, "a = {a}, b = {b}");
    }

    #[test]
    fn reap_improvement_approximates_n_reads_for_sec() {
        let m = AccumulationModel::sec(1e-8);
        for n_reads in [2u64, 10, 100, 1000] {
            let imp = m.improvement(256, n_reads);
            assert!(
                (imp / n_reads as f64 - 1.0).abs() < 0.05,
                "N = {n_reads}: improvement {imp}"
            );
        }
    }

    #[test]
    fn stronger_codes_reduce_failures_superlinearly() {
        let sec = AccumulationModel::new(1e-6, 1);
        let dec = AccumulationModel::new(1e-6, 2);
        let tec = AccumulationModel::new(1e-6, 3);
        let n = 256;
        let reads = 100;
        let f1 = sec.fail_conventional(n, reads);
        let f2 = dec.fail_conventional(n, reads);
        let f3 = tec.fail_conventional(n, reads);
        assert!(
            f1 / f2 > 100.0,
            "DEC gains orders of magnitude: {f1} vs {f2}"
        );
        assert!(f2 / f3 > 100.0);
    }

    #[test]
    fn probabilities_stay_in_unit_interval_at_extremes() {
        for &trials in &[1u64, 100, 10_000, 10_000_000] {
            for &p in &[1e-15, 1e-8, 1e-3, 0.1, 0.9] {
                for &t in &[1usize, 2, 3] {
                    let u = uncorrectable_probability(trials, p, t);
                    assert!((0.0..=1.0).contains(&u), "({trials},{p},{t}) -> {u}");
                }
            }
        }
    }

    #[test]
    fn fail_reap_with_huge_n_saturates_at_one() {
        let m = AccumulationModel::sec(1e-2);
        let f = m.fail_reap(512, 1_000_000);
        assert!(f > 0.999999 && f <= 1.0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = uncorrectable_probability(10, 1.5, 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_capability_model() {
        let _ = AccumulationModel::new(1e-8, 0);
    }
}
