//! MTTF/FIT aggregation of per-event failure probabilities.

use std::fmt;

/// Accumulates expected failures over a simulation.
///
/// Each ECC-check event contributes its uncorrectable probability; for the
/// tiny per-event probabilities of the STT-MRAM regime, the failure
/// process is Poisson with rate `Σp / T`, giving `MTTF = T / Σp`.
///
/// # Examples
///
/// ```
/// use reap_reliability::FailureAggregator;
///
/// let mut agg = FailureAggregator::new();
/// for _ in 0..1_000 {
///     agg.record(1e-12);
/// }
/// assert!((agg.expected_failures() / 1e-9 - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FailureAggregator {
    expected_failures: f64,
    events: u64,
}

impl FailureAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one check event with the given uncorrectable probability.
    ///
    /// # Panics
    ///
    /// Panics if `p_fail` is not in `[0, 1]`.
    pub fn record(&mut self, p_fail: f64) {
        assert!(
            (0.0..=1.0).contains(&p_fail),
            "probability out of range: {p_fail}"
        );
        self.expected_failures += p_fail;
        self.events += 1;
    }

    /// Reassembles an aggregator from an externally accumulated sum and
    /// event count — the hand-off point for the batched kernel, which
    /// keeps its per-point sums in flat lanes and only materializes
    /// `FailureAggregator`s at `finish()`.
    pub(crate) fn from_parts(expected_failures: f64, events: u64) -> Self {
        Self {
            expected_failures,
            events,
        }
    }

    /// Sum of recorded failure probabilities (expected failure count).
    pub fn expected_failures(&self) -> f64 {
        self.expected_failures
    }

    /// Number of recorded events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Merges another aggregator into this one.
    pub fn merge(&mut self, other: &FailureAggregator) {
        self.expected_failures += other.expected_failures;
        self.events += other.events;
    }

    /// Converts to an MTTF given the wall-clock duration the recorded
    /// events span.
    ///
    /// # Panics
    ///
    /// Panics if `duration_seconds` is not positive and finite.
    pub fn mttf(&self, duration_seconds: f64) -> Mttf {
        assert!(
            duration_seconds.is_finite() && duration_seconds > 0.0,
            "duration must be positive"
        );
        Mttf {
            seconds: duration_seconds / self.expected_failures,
        }
    }
}

/// Mean Time To Failure.
///
/// # Examples
///
/// ```
/// use reap_reliability::Mttf;
///
/// let m = Mttf::from_seconds(3.6e12);
/// assert!((m.fit_rate() - 1.0).abs() < 1e-9, "3.6e12 s MTTF = 1 FIT");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Mttf {
    seconds: f64,
}

impl Mttf {
    /// Wraps a raw MTTF in seconds.
    pub fn from_seconds(seconds: f64) -> Self {
        Self { seconds }
    }

    /// MTTF in seconds (may be `inf` when no failures were expected).
    pub fn as_seconds(&self) -> f64 {
        self.seconds
    }

    /// MTTF in hours.
    pub fn as_hours(&self) -> f64 {
        self.seconds / 3600.0
    }

    /// MTTF in years.
    pub fn as_years(&self) -> f64 {
        self.seconds / (365.25 * 86_400.0)
    }

    /// Failures In Time: expected failures per 10⁹ device-hours.
    pub fn fit_rate(&self) -> f64 {
        1e9 / self.as_hours()
    }

    /// This MTTF normalized to a `baseline` (the paper's Fig. 5 metric).
    ///
    /// When both sides are infinite — routine at zero expected failures,
    /// see [`FailureAggregator::mttf`] — the two points are equally
    /// failure-free and the ratio is defined as `1.0`, never NaN. A finite
    /// MTTF against an infinite baseline is `0.0`, and an infinite MTTF
    /// against a finite baseline stays `inf`, both of which IEEE division
    /// already yields.
    pub fn normalized_to(&self, baseline: Mttf) -> f64 {
        if self.seconds.is_infinite() && baseline.seconds.is_infinite() {
            return 1.0;
        }
        self.seconds / baseline.seconds
    }

    /// Total ordering over MTTFs for sorting and Pareto comparisons.
    ///
    /// `Mttf` only derives [`PartialOrd`] because its seconds are an `f64`;
    /// this helper makes comparisons total via [`f64::total_cmp`]: every
    /// finite value orders by magnitude, `inf` (zero expected failures)
    /// sorts above all finite values, and NaN — which the hardened metrics
    /// no longer produce, but defensively — sorts above `inf` rather than
    /// poisoning the sort.
    pub fn total_cmp(&self, other: &Mttf) -> std::cmp::Ordering {
        self.seconds.total_cmp(&other.seconds)
    }
}

impl fmt::Display for Mttf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.as_years() >= 1.0 {
            write!(f, "{:.2} years", self.as_years())
        } else if self.as_hours() >= 1.0 {
            write!(f, "{:.2} hours", self.as_hours())
        } else {
            write!(f, "{:.3e} s", self.seconds)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregator_sums_probabilities() {
        let mut a = FailureAggregator::new();
        a.record(0.25);
        a.record(0.5);
        assert_eq!(a.expected_failures(), 0.75);
        assert_eq!(a.events(), 2);
    }

    #[test]
    fn merge_combines() {
        let mut a = FailureAggregator::new();
        a.record(0.1);
        let mut b = FailureAggregator::new();
        b.record(0.2);
        b.record(0.3);
        a.merge(&b);
        assert!((a.expected_failures() - 0.6).abs() < 1e-12);
        assert_eq!(a.events(), 3);
    }

    #[test]
    fn mttf_is_duration_over_expectation() {
        let mut a = FailureAggregator::new();
        a.record(0.5);
        a.record(0.5);
        let m = a.mttf(10.0);
        assert!((m.as_seconds() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_failures_give_infinite_mttf() {
        let a = FailureAggregator::new();
        assert!(a.mttf(1.0).as_seconds().is_infinite());
    }

    #[test]
    fn fit_conversion() {
        // 1 FIT = one failure per 1e9 hours.
        let m = Mttf::from_seconds(1e9 * 3600.0);
        assert!((m.fit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_ratio() {
        let a = Mttf::from_seconds(1000.0);
        let b = Mttf::from_seconds(10.0);
        assert!((a.normalized_to(b) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_of_two_failure_free_points_is_one() {
        // Regression: inf/inf was NaN, silently mis-sorting any Pareto
        // comparison over a pair of zero-expected-failure points.
        let a = FailureAggregator::new().mttf(1.0);
        let b = FailureAggregator::new().mttf(2.0);
        assert!(a.as_seconds().is_infinite());
        assert_eq!(a.normalized_to(b), 1.0);

        // The one-sided infinities keep their IEEE meaning.
        let finite = Mttf::from_seconds(100.0);
        assert_eq!(finite.normalized_to(a), 0.0);
        assert_eq!(a.normalized_to(finite), f64::INFINITY);
    }

    #[test]
    fn total_cmp_orders_inf_and_nan() {
        use std::cmp::Ordering;
        let small = Mttf::from_seconds(1.0);
        let big = Mttf::from_seconds(1e12);
        let inf = Mttf::from_seconds(f64::INFINITY);
        let nan = Mttf::from_seconds(f64::NAN);
        assert_eq!(small.total_cmp(&big), Ordering::Less);
        assert_eq!(big.total_cmp(&inf), Ordering::Less);
        assert_eq!(inf.total_cmp(&inf), Ordering::Equal);
        // NaN compares as greater-than-inf instead of breaking the sort.
        assert_eq!(inf.total_cmp(&nan), Ordering::Less);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);

        let mut v = [inf, small, nan, big];
        v.sort_by(Mttf::total_cmp);
        assert_eq!(v[0].as_seconds(), 1.0);
        assert_eq!(v[1].as_seconds(), 1e12);
        assert!(v[2].as_seconds().is_infinite());
        assert!(v[3].as_seconds().is_nan());
    }

    #[test]
    fn unit_conversions() {
        let m = Mttf::from_seconds(365.25 * 86_400.0);
        assert!((m.as_years() - 1.0).abs() < 1e-12);
        assert!((m.as_hours() - 8766.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert!(Mttf::from_seconds(1e9).to_string().contains("years"));
        assert!(Mttf::from_seconds(10_000.0).to_string().contains("hours"));
        assert!(Mttf::from_seconds(0.5).to_string().contains("s"));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn record_rejects_bad_probability() {
        FailureAggregator::new().record(2.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn mttf_rejects_bad_duration() {
        let _ = FailureAggregator::new().mttf(0.0);
    }
}
