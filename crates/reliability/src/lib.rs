//! Reliability mathematics for read-disturbance accumulation.
//!
//! Implements the analytical core of the paper:
//!
//! * [`model`] — Eqs. (2), (3) and (6), generalized from single-error
//!   correction to any `t`-error-correcting code, computed in log space so
//!   probabilities down to 1e-300 stay exact;
//! * [`mttf`] — aggregation of per-event failure probabilities into Mean
//!   Time To Failure and FIT rates;
//! * [`histogram`] — the log-binned concealed-read histograms of Fig. 3,
//!   tracking both event frequency and failure contribution per bin;
//! * [`montecarlo`] — bit-level fault injection against real ECC codecs
//!   (from [`reap_ecc`]) that validates the analytical model end to end;
//! * [`replay`] — the scoring engine of the two-phase capture/replay
//!   simulation: evaluates a captured exposure stream under any ECC/MTJ
//!   analysis point, bit-identical to a live single-pass observer;
//! * [`multi`] — the batched sweep kernel: scores *all* analysis points
//!   in one pass over the stream, bit-identical to independent per-point
//!   replays;
//! * [`pareto`] — dominance and front extraction over (MTTF, energy,
//!   area) for the design-space explorer, total-ordered so degenerate
//!   points can never mis-sort the front.
//!
//! # Examples
//!
//! The paper's numeric example (§III-B): 100 stored `1`s, `P_rd = 1e-8`:
//!
//! ```
//! use reap_reliability::AccumulationModel;
//!
//! let m = AccumulationModel::sec(1e-8);
//! // Eq. (4): one read, no concealed reads.
//! let p1 = m.fail_conventional(100, 1);
//! assert!((p1 / 4.95e-13 - 1.0).abs() < 0.02);
//! // Eq. (5): 50 accumulated reads — three orders of magnitude worse.
//! let p50 = m.fail_conventional(100, 50);
//! assert!((p50 / 1.25e-9 - 1.0).abs() < 0.02);
//! // Eq. (6): REAP checks every read — 50x better than accumulating.
//! let reap = m.fail_reap(100, 50);
//! assert!((p50 / reap - 50.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod model;
pub mod montecarlo;
pub mod mttf;
pub mod multi;
pub mod pareto;
pub mod replay;

pub use histogram::LogHistogram;
pub use model::{uncorrectable_probability, AccumulationModel};
pub use montecarlo::{McLineResult, MonteCarloLine};
pub use mttf::{FailureAggregator, Mttf};
pub use multi::{KernelMode, MultiReplayAggregator, ScalarMultiReplayAggregator};
pub use pareto::{pareto_front_indices, ParetoPoint};
pub use replay::{ExposureKind, ReplayAggregator};
