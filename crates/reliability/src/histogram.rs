//! Log-binned concealed-read histograms (the data behind Fig. 3).
//!
//! Fig. 3 of the paper plots, per workload:
//!
//! * the *frequency* of demand reads grouped by their accumulated read
//!   count `N`, normalized so the `N = 1` (no concealed reads) bin equals
//!   100;
//! * the *failure contribution* of each group — frequency × per-event
//!   uncorrectable probability — showing that rare large-`N` events
//!   dominate the cache failure rate.
//!
//! `N` spans five decades, so bins are powers of two.

use std::fmt;

/// A histogram over `N` (reads accumulated between ECC checks) with a
/// failure-probability accumulator per bin.
///
/// Bin `i` covers `N ∈ [2^i, 2^(i+1))`; bin 0 is exactly the
/// "no concealed reads" population of the paper's normalization.
///
/// # Examples
///
/// ```
/// use reap_reliability::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// h.record(1, 1e-13);
/// h.record(1, 1e-13);
/// h.record(1000, 1e-7);
/// let bins: Vec<_> = h.bins().collect();
/// assert_eq!(bins[0].count, 2);
/// // The single large-N event dominates total failure probability.
/// assert!(h.total_failure_probability() > 0.99e-7);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    failure: Vec<f64>,
    max_n: u64,
}

/// One bin of a [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Inclusive lower edge (a power of two).
    pub lo: u64,
    /// Exclusive upper edge.
    pub hi: u64,
    /// Number of events recorded in the bin.
    pub count: u64,
    /// Sum of per-event failure probabilities in the bin.
    pub failure_probability: f64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles a histogram from externally accumulated bins — the
    /// hand-off point for the batched kernel, which shares one count
    /// vector across points (bin membership depends only on `N`) and
    /// keeps per-point failure sums in flat lanes. `counts` and
    /// `failure` must be the same length, grown exactly as `record`
    /// would have grown them (highest touched bin + 1).
    pub(crate) fn from_parts(counts: Vec<u64>, failure: Vec<f64>, max_n: u64) -> Self {
        debug_assert_eq!(counts.len(), failure.len());
        Self {
            counts,
            failure,
            max_n,
        }
    }

    /// Records a demand-check event with accumulated read count `n` and
    /// per-event failure probability `p_fail`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (every demand read counts itself, so `N ≥ 1`) or
    /// `p_fail` is outside `[0, 1]`.
    pub fn record(&mut self, n: u64, p_fail: f64) {
        assert!(n >= 1, "N counts the demand read itself, so N >= 1");
        assert!(
            (0.0..=1.0).contains(&p_fail),
            "probability out of range: {p_fail}"
        );
        let bin = (63 - n.leading_zeros()) as usize;
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
            self.failure.resize(bin + 1, 0.0);
        }
        self.counts[bin] += 1;
        self.failure[bin] += p_fail;
        self.max_n = self.max_n.max(n);
    }

    /// Total events recorded.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded failure probabilities.
    pub fn total_failure_probability(&self) -> f64 {
        self.failure.iter().sum()
    }

    /// The largest `N` observed.
    pub fn max_n(&self) -> u64 {
        self.max_n
    }

    /// Iterates every allocated bin low to high, empty or not. The last
    /// bin (index 63, covering `N ≥ 2^63`) has no representable exclusive
    /// upper edge, so its `hi` saturates to `u64::MAX`.
    pub fn bins(&self) -> impl Iterator<Item = Bin> + '_ {
        self.counts
            .iter()
            .zip(self.failure.iter())
            .enumerate()
            .map(|(i, (&count, &fail))| Bin {
                lo: 1u64 << i,
                hi: 1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX),
                count,
                failure_probability: fail,
            })
    }

    /// Frequency of a bin normalized so the `N = 1` bin reads 100, as in
    /// Fig. 3's primary axis. Returns 0 for empty bins; `None` when the
    /// `N = 1` bin itself is empty (normalization undefined).
    pub fn normalized_frequency(&self, bin_index: usize) -> Option<f64> {
        let base = *self.counts.first()? as f64;
        if base == 0.0 {
            return None;
        }
        let c = self.counts.get(bin_index).copied().unwrap_or(0);
        Some(c as f64 / base * 100.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
            self.failure.resize(other.failure.len(), 0.0);
        }
        for (i, (&c, &f)) in other.counts.iter().zip(other.failure.iter()).enumerate() {
            self.counts[i] += c;
            self.failure[i] += f;
        }
        self.max_n = self.max_n.max(other.max_n);
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>12} {:>12} {:>14}", "N range", "count", "P(fail) sum")?;
        for b in self.bins() {
            if b.count > 0 {
                writeln!(
                    f,
                    "{:>5}..{:<5} {:>12} {:>14.3e}",
                    b.lo, b.hi, b.count, b.failure_probability
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_are_powers_of_two() {
        let mut h = LogHistogram::new();
        h.record(1, 0.0);
        h.record(2, 0.0);
        h.record(3, 0.0);
        h.record(4, 0.0);
        h.record(1023, 0.0);
        let bins: Vec<Bin> = h.bins().collect();
        assert_eq!(bins[0].count, 1); // N = 1
        assert_eq!(bins[1].count, 2); // N in [2,4)
        assert_eq!(bins[2].count, 1); // N in [4,8)
        assert_eq!(bins[9].count, 1); // N in [512,1024)
        assert_eq!(h.max_n(), 1023);
    }

    #[test]
    fn totals_accumulate() {
        let mut h = LogHistogram::new();
        h.record(1, 0.1);
        h.record(10, 0.2);
        assert_eq!(h.total_count(), 2);
        assert!((h.total_failure_probability() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn normalized_frequency_scales_to_100() {
        let mut h = LogHistogram::new();
        for _ in 0..200 {
            h.record(1, 0.0);
        }
        for _ in 0..50 {
            h.record(16, 0.0);
        }
        assert_eq!(h.normalized_frequency(0), Some(100.0));
        assert_eq!(h.normalized_frequency(4), Some(25.0));
        assert_eq!(h.normalized_frequency(10), Some(0.0));
    }

    #[test]
    fn normalization_undefined_without_base_bin() {
        let mut h = LogHistogram::new();
        h.record(100, 0.0);
        assert_eq!(h.normalized_frequency(6), None);
        assert_eq!(LogHistogram::new().normalized_frequency(0), None);
    }

    #[test]
    fn merge_adds_bins() {
        let mut a = LogHistogram::new();
        a.record(1, 0.1);
        let mut b = LogHistogram::new();
        b.record(1, 0.1);
        b.record(5000, 0.4);
        a.merge(&b);
        assert_eq!(a.total_count(), 3);
        assert!((a.total_failure_probability() - 0.6).abs() < 1e-12);
        assert_eq!(a.max_n(), 5000);
    }

    #[test]
    fn display_lists_nonempty_bins() {
        let mut h = LogHistogram::new();
        h.record(1, 1e-13);
        h.record(300, 1e-9);
        let text = h.to_string();
        assert!(text.contains("256"));
        assert!(!text.contains("1024"));
    }

    #[test]
    #[should_panic(expected = "N >= 1")]
    fn rejects_n_zero() {
        LogHistogram::new().record(0, 0.0);
    }

    #[test]
    fn top_bin_saturates_instead_of_overflowing() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX, 0.0);
        let bins: Vec<Bin> = h.bins().collect();
        assert_eq!(bins.len(), 64);
        let top = bins[63];
        assert_eq!(top.lo, 1u64 << 63);
        assert_eq!(top.hi, u64::MAX);
        assert_eq!(top.count, 1);
        assert_eq!(h.max_n(), u64::MAX);
        // Display walks every bin; it must not panic on bin 63.
        let text = h.to_string();
        assert!(text.contains(&(1u64 << 63).to_string()));
    }

    #[test]
    fn bins_yields_empty_bins_too() {
        let mut h = LogHistogram::new();
        h.record(1, 0.0);
        h.record(8, 0.0);
        let bins: Vec<Bin> = h.bins().collect();
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[1].count, 0);
        assert_eq!(bins[2].count, 0);
    }
}
