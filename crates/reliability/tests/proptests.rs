//! Property-based tests for the reliability mathematics.

use proptest::prelude::*;
use reap_reliability::{
    pareto_front_indices, uncorrectable_probability, AccumulationModel, FailureAggregator,
    LogHistogram, Mttf, ParetoPoint,
};

proptest! {
    /// The uncorrectable probability is always a probability and is
    /// monotone in trials and p, antitone in t.
    #[test]
    fn tail_bounds_and_monotonicity(
        trials in 1u64..1_000_000,
        p_exp in -12.0f64..-1.0,
        t in 1usize..4,
    ) {
        let p = 10f64.powf(p_exp);
        let u = uncorrectable_probability(trials, p, t);
        prop_assert!((0.0..=1.0).contains(&u));
        let u_more_trials = uncorrectable_probability(trials * 2, p, t);
        prop_assert!(u_more_trials >= u);
        let u_higher_p = uncorrectable_probability(trials, (p * 2.0).min(1.0), t);
        prop_assert!(u_higher_p >= u);
        let u_stronger = uncorrectable_probability(trials, p, t + 1);
        prop_assert!(u_stronger <= u);
    }

    /// Eq. (3) >= Eq. (6) >= single read, for all parameters: the paper's
    /// central inequality chain.
    #[test]
    fn accumulation_dominates_reap_dominates_single(
        n_ones in 1u32..600,
        n_reads in 1u64..100_000,
        p_exp in -10.0f64..-3.0,
    ) {
        let model = AccumulationModel::sec(10f64.powf(p_exp));
        let conv = model.fail_conventional(n_ones, n_reads);
        let reap = model.fail_reap(n_ones, n_reads);
        let single = model.fail_single(n_ones);
        prop_assert!(conv >= reap - 1e-300, "conv {conv} < reap {reap}");
        prop_assert!(reap >= single - 1e-300, "reap {reap} < single {single}");
    }

    /// For SEC in the light regime the REAP gain is ≈ N (within 20 % when
    /// N·n·p < 0.1) — the asymptotic law behind Fig. 5.
    #[test]
    fn sec_gain_approximates_n(n_reads in 2u64..10_000) {
        let model = AccumulationModel::sec(1e-9);
        let n_ones = 256u32;
        prop_assume!((n_reads as f64) * 256.0 * 1e-9 < 0.1);
        let gain = model.improvement(n_ones, n_reads);
        prop_assert!(
            (gain / n_reads as f64 - 1.0).abs() < 0.2,
            "N = {n_reads}, gain {gain}"
        );
    }

    /// For light-tail SEC the closed form C(m,2)p² approximates the tail.
    #[test]
    fn light_tail_matches_pair_count(trials in 2u64..10_000) {
        let p = 1e-9;
        let u = uncorrectable_probability(trials, p, 1);
        let pairs = trials as f64 * (trials - 1) as f64 / 2.0 * p * p;
        prop_assert!((u / pairs - 1.0).abs() < 0.01, "u {u}, pairs {pairs}");
    }

    /// Aggregator totals equal the sum of recorded probabilities.
    #[test]
    fn aggregator_is_a_sum(ps in proptest::collection::vec(0.0f64..1.0, 1..100)) {
        let mut agg = FailureAggregator::new();
        for &p in &ps {
            agg.record(p);
        }
        let expected: f64 = ps.iter().sum();
        prop_assert!((agg.expected_failures() - expected).abs() < 1e-9);
        prop_assert_eq!(agg.events(), ps.len() as u64);
    }

    /// Histogram: total counts and failure mass are preserved under
    /// arbitrary record sequences, and merging two histograms equals
    /// recording their union.
    #[test]
    fn histogram_merge_is_union(
        a in proptest::collection::vec((1u64..100_000, 0.0f64..0.01), 0..50),
        b in proptest::collection::vec((1u64..100_000, 0.0f64..0.01), 0..50),
    ) {
        let mut ha = LogHistogram::new();
        for &(n, p) in &a {
            ha.record(n, p);
        }
        let mut hb = LogHistogram::new();
        for &(n, p) in &b {
            hb.record(n, p);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        let mut direct = LogHistogram::new();
        for &(n, p) in a.iter().chain(b.iter()) {
            direct.record(n, p);
        }
        prop_assert_eq!(merged.total_count(), direct.total_count());
        prop_assert!(
            (merged.total_failure_probability() - direct.total_failure_probability()).abs()
                < 1e-12
        );
        prop_assert_eq!(merged.max_n(), direct.max_n());
    }

    /// The extracted Pareto front is exactly the non-dominated subset:
    /// every front member is undominated, every non-member is dominated
    /// by someone. Values are drawn from small pools rich in ties, zeros
    /// and infinite MTTFs (the zero-expected-failure corner the
    /// `normalized_to` fix makes safe to rank).
    #[test]
    fn pareto_front_is_exactly_the_nondominated_subset(
        raw in proptest::collection::vec((0usize..4, 0usize..4, 0usize..3), 1..40),
    ) {
        const MTTFS: [f64; 4] = [1.0, 1e6, 1e12, f64::INFINITY];
        const ENERGIES: [f64; 4] = [0.0, 1.0, 2.0, 3.0];
        const AREAS: [f64; 3] = [1.0, 2.0, 4.0];
        let points: Vec<ParetoPoint> = raw
            .iter()
            .map(|&(m, e, a)| {
                ParetoPoint::new(Mttf::from_seconds(MTTFS[m]), ENERGIES[e], AREAS[a])
            })
            .collect();
        let front = pareto_front_indices(&points);
        for i in 0..points.len() {
            let dominated = points.iter().any(|o| o.dominates(&points[i]));
            prop_assert_eq!(
                front.contains(&i),
                !dominated,
                "point {} front membership must equal non-domination",
                i
            );
        }
        // The front is never empty and indices come back sorted.
        prop_assert!(!front.is_empty());
        prop_assert!(front.windows(2).all(|w| w[0] < w[1]));
    }
}
