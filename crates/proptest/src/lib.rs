//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so this local
//! crate provides the subset of the proptest API the workspace's
//! property tests use: the [`Strategy`] trait with ranges, tuples,
//! [`Just`], `prop_map`, [`BoxedStrategy`] and [`prop_oneof!`];
//! [`collection::vec`] and [`collection::hash_set`]; and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug`
//!   formatting inside the assertion macros where available) and the
//!   deterministic case index, which is enough to re-run it, but the
//!   input is not minimised.
//! * **Deterministic by construction.** Every test's RNG stream is
//!   seeded from a hash of the test's name and the case index, so
//!   failures reproduce exactly across runs and machines.
//! * The number of cases per test defaults to 64 and can be overridden
//!   with the `PROPTEST_CASES` environment variable, mirroring upstream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error produced by a failing `prop_assert!`-family macro. The string
/// already carries the formatted assertion message.
pub type TestCaseError = String;

/// The per-case RNG handed to [`Strategy::generate`].
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test path keeps streams independent per test.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Number of cases each `proptest!` test runs (`PROPTEST_CASES`
/// overrides the default of 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A source of test values. Unlike upstream there is no value tree:
/// `generate` directly yields one sample.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Uniform choice between boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_rand {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen()
            }
        }
    )*};
}

impl_arbitrary_via_rand!(u8, u16, u32, u64, usize, bool, f64);

/// Strategy for the full value range of `T` — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of type `T`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Accepted size arguments: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            if self.lo + 1 == self.hi {
                self.lo
            } else {
                rng.rng().gen_range(self.lo..self.hi)
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with exactly/within `size`
    /// distinct elements.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::hash_set(element, size)`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            // The element domain must be large enough to yield n distinct
            // values; cap the retries so a misuse fails loudly instead of
            // hanging.
            let mut attempts = 0usize;
            while out.len() < n {
                out.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 1000 * (n + 1),
                    "hash_set strategy could not draw {n} distinct elements"
                );
            }
            out
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

/// Defines property tests. Each `#[test] fn name(bindings in strategies)`
/// inside the block becomes a regular test that runs [`cases`] sampled
/// cases with a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let total = $crate::cases();
                for case in 0..total {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{total}: {message}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` (both: `{:?}`): {}",
                stringify!($left),
                stringify!($right),
                l,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// `prop_assume!(cond)` — skips the current case when `cond` is false.
/// (Upstream redraws; this stand-in counts the case as vacuously passed,
/// which preserves soundness of every assertion that does run.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type:
/// `prop_oneof![Just(A), any::<u64>().prop_map(B)]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges_stay_in_bounds", 0);
        for _ in 0..1000 {
            let v = (1u64..10).generate(&mut rng);
            assert!((1..10).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (3usize..=5).generate(&mut rng);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let s = (crate::any::<u64>(), 0u32..100);
        let a = s.generate(&mut TestRng::for_case("x", 3));
        let b = s.generate(&mut TestRng::for_case("x", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut TestRng::for_case("x", 4));
        assert_ne!(a, c);
    }

    #[test]
    fn collections_honour_sizes() {
        let mut rng = TestRng::for_case("collections", 0);
        let v = crate::collection::vec(crate::any::<u8>(), 1..50).generate(&mut rng);
        assert!((1..50).contains(&v.len()));
        let exact = crate::collection::vec(crate::any::<u8>(), 8).generate(&mut rng);
        assert_eq!(exact.len(), 8);
        let set = crate::collection::hash_set(0usize..542, 3).generate(&mut rng);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn oneof_reaches_every_arm() {
        let s = prop_oneof![
            Just(1u8),
            Just(2u8),
            crate::any::<bool>().prop_map(u8::from)
        ];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&0));
    }

    proptest! {
        /// The macro machinery itself: bindings, assertions, assume.
        #[test]
        fn macro_smoke(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b, "assume filtered equals");
        }
    }
}
