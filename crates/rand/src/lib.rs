//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *small* subset of the `rand`
//! 0.8 API it actually uses as a local crate: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen`,
//! `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a
//! well-studied, fast PRNG whose statistical quality is more than
//! adequate for the Monte-Carlo validation and workload synthesis done
//! here. Streams are **deterministic per seed** (the property every test
//! in this workspace relies on) but do *not* reproduce the upstream
//! `StdRng` (ChaCha12) byte streams.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10usize);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an [`RngCore`] — the subset
/// of `rand`'s `Standard` distribution this workspace needs.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; the modulo bias over a
                // 64-bit draw is < 2^-64 per call — irrelevant here.
                let draw = rng.next_u64() as u128 % span;
                (self.start as u128 + draw) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = rng.next_u64() as u128 % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Buffers that [`Rng::fill`] can populate with random data.
pub trait Fill {
    /// Fills `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        let mut chunks = self.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = rng.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl Fill for [u64] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for word in self {
            *word = rng.next_u64();
        }
    }
}

/// The user-facing random-value helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        for _ in 0..100 {
            let v = rng.gen_range(3..=5u64);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw(rng: &mut (impl RngCore + ?Sized)) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
