//! Deterministic software fault injection for the campaign runtime.
//!
//! The paper stress-tests MTJ cells by injecting bit faults and checking
//! that the protection scheme recovers; this crate applies the same
//! philosophy to our own software. A [`FaultPlan`] is a *seeded,
//! deterministic* schedule of worker panics, job delays and mid-run
//! interrupts: given the same seed and the same (job, attempt) pair it
//! always makes the same decision, so a failing fault-injection test
//! reproduces exactly.
//!
//! The plan is consulted by the supervised pool in `reap-core` just
//! before each job attempt runs; the file-corruption helpers
//! ([`truncate_file`], [`chop_tail`]) simulate crash-interrupted
//! checkpoint and trace writes for recovery tests.
//!
//! # Examples
//!
//! ```
//! use reap_fault::{FaultAction, FaultPlan};
//!
//! let plan: FaultPlan = "seed=7,panic=0.5".parse()?;
//! // Deterministic: the same (job, attempt) always gets the same action.
//! assert_eq!(plan.decide(3, 1), plan.decide(3, 1));
//! // Over many jobs roughly half the first attempts panic.
//! let panics = (0..1000)
//!     .filter(|&j| plan.decide(j, 1) == FaultAction::Panic)
//!     .count();
//! assert!((350..650).contains(&panics), "got {panics}");
//! # Ok::<(), reap_fault::FaultSpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::fs::OpenOptions;
use std::io;
use std::path::Path;
use std::str::FromStr;
use std::time::Duration;

/// What the plan wants to happen to one job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Run the attempt normally.
    None,
    /// Panic inside the worker (tests `catch_unwind` + retry paths).
    Panic,
    /// Sleep before running the job (tests deadline/timeout paths).
    Delay(Duration),
}

/// What the plan wants to happen to one server connection.
///
/// Consulted by `reap serve` once per accepted connection; decisions are
/// keyed by the connection's accept-order index so a chaos run is
/// reproducible for a fixed arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionFault {
    /// Serve the connection normally.
    None,
    /// Close the connection immediately after accept, before reading the
    /// request (tests client connect-retry paths).
    Refuse,
    /// Serve the request but drop the connection mid-stream, after some
    /// rows have been written (tests resume-after-partial-stream paths).
    Drop,
}

/// A seeded, deterministic fault-injection schedule.
///
/// Rates are per *attempt*, so a job that panics on attempt 1 may well
/// succeed on attempt 2 — exactly the transient-fault shape the retry
/// machinery exists for. Decisions depend only on `(seed, job, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Probability that an attempt panics, in `[0, 1]`.
    pub panic_rate: f64,
    /// Probability that an attempt is delayed, in `[0, 1]`.
    pub delay_rate: f64,
    /// Length of an injected delay.
    pub delay: Duration,
    /// Simulated kill: the campaign stops (checkpoint intact) after this
    /// many jobs have completed. `None` disables the interrupt.
    pub interrupt_after: Option<u64>,
    /// Probability that an accepted connection is refused (closed before
    /// the request is read), in `[0, 1]`. Server-side only.
    pub refuse_rate: f64,
    /// Probability that a served connection is dropped mid-stream, in
    /// `[0, 1]`. Server-side only.
    pub drop_rate: f64,
    /// Injected read stall applied to every accepted connection before
    /// its request is read. `Duration::ZERO` disables the stall.
    pub stall: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(50),
            interrupt_after: None,
            refuse_rate: 0.0,
            drop_rate: 0.0,
            stall: Duration::ZERO,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base to modify).
    pub fn quiet() -> Self {
        Self::default()
    }

    /// Decides the fate of attempt `attempt` (1-based) of job `job`.
    ///
    /// Pure: depends only on the plan's seed and rates.
    pub fn decide(&self, job: u64, attempt: u32) -> FaultAction {
        if unit(self.seed, job, attempt, 0x9e37) < self.panic_rate {
            return FaultAction::Panic;
        }
        if unit(self.seed, job, attempt, 0x85eb) < self.delay_rate {
            return FaultAction::Delay(self.delay);
        }
        FaultAction::None
    }

    /// Consults [`decide`](Self::decide) and executes the action in the
    /// calling thread: sleeps on a delay, panics (with a recognizable
    /// `reap-fault:` message) on a panic.
    ///
    /// Call this *inside* the supervised unwind boundary, before the real
    /// job body.
    ///
    /// # Panics
    ///
    /// Panics when the plan schedules a panic for this attempt — that is
    /// the point.
    pub fn apply(&self, job: u64, attempt: u32) {
        match self.decide(job, attempt) {
            FaultAction::None => {}
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Panic => {
                panic!("reap-fault: injected panic (job {job}, attempt {attempt})")
            }
        }
    }

    /// Decides the fate of connection `conn` (accept-order index).
    ///
    /// Pure: depends only on the plan's seed and connection rates. A
    /// refusal takes precedence over a drop, mirroring real failure
    /// ordering (a refused connection never reaches the stream stage).
    pub fn decide_connection(&self, conn: u64) -> ConnectionFault {
        if unit(self.seed, conn, 0, 0xc2b2) < self.refuse_rate {
            return ConnectionFault::Refuse;
        }
        if unit(self.seed, conn, 0, 0x27d4) < self.drop_rate {
            return ConnectionFault::Drop;
        }
        ConnectionFault::None
    }

    /// The injected read stall for accepted connections, if any.
    pub fn stall(&self) -> Option<Duration> {
        (self.stall > Duration::ZERO).then_some(self.stall)
    }

    /// Whether the plan can ever inject anything.
    pub fn is_quiet(&self) -> bool {
        self.panic_rate == 0.0
            && self.delay_rate == 0.0
            && self.interrupt_after.is_none()
            && self.refuse_rate == 0.0
            && self.drop_rate == 0.0
            && self.stall == Duration::ZERO
    }
}

/// Maps `(seed, stream, draw, salt)` to a uniform value in `[0, 1)`.
///
/// This is the deterministic draw behind every [`FaultPlan`] decision,
/// exported so other crates can make reproducible randomized choices
/// keyed the same way — e.g. the supervised pool's per-(seed, job,
/// attempt) retry-backoff jitter, or `reap serve` picking how many rows
/// to stream before an injected connection drop. Same inputs, same
/// output, on every platform.
pub fn uniform(seed: u64, stream: u64, draw: u32, salt: u64) -> f64 {
    unit(seed, stream, draw, salt)
}

/// Maps `(seed, job, attempt, salt)` to a uniform value in `[0, 1)`.
fn unit(seed: u64, job: u64, attempt: u32, salt: u64) -> f64 {
    let mut x = seed ^ splitmix64(job.wrapping_add(salt));
    x = splitmix64(x.wrapping_add(u64::from(attempt)));
    // 53 high bits -> [0, 1).
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The SplitMix64 finalizer — a strong 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Error parsing a fault-plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending `key=value` fragment.
    pub fragment: String,
    /// What went wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault spec fragment `{}`: {}",
            self.fragment, self.reason
        )
    }
}

impl Error for FaultSpecError {}

impl FromStr for FaultPlan {
    type Err = FaultSpecError;

    /// Parses a comma-separated `key=value` spec, e.g.
    /// `seed=7,panic=0.25,delay=0.1,delay-ms=40,interrupt=5` or the
    /// server-side `seed=5,refuse=0.4,drop=0.3,stall-ms=20`.
    ///
    /// Keys: `seed` (u64), `panic` / `delay` / `refuse` / `drop` (rates
    /// in `[0,1]`), `delay-ms` / `stall-ms` (u64 milliseconds),
    /// `interrupt` (job count). The full grammar is documented in
    /// DESIGN.md ("Fault-spec grammar").
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for fragment in s.split(',').filter(|f| !f.trim().is_empty()) {
            let err = |reason: &str| FaultSpecError {
                fragment: fragment.trim().to_owned(),
                reason: reason.to_owned(),
            };
            let (key, value) = fragment
                .trim()
                .split_once('=')
                .ok_or_else(|| err("expected key=value"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| err("seed must be a u64"))?;
                }
                "panic" => plan.panic_rate = parse_rate(value).map_err(|r| err(&r))?,
                "delay" => plan.delay_rate = parse_rate(value).map_err(|r| err(&r))?,
                "delay-ms" => {
                    let ms: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| err("delay-ms must be a u64"))?;
                    plan.delay = Duration::from_millis(ms);
                }
                "interrupt" => {
                    plan.interrupt_after = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| err("interrupt must be a job count"))?,
                    );
                }
                "refuse" => plan.refuse_rate = parse_rate(value).map_err(|r| err(&r))?,
                "drop" => plan.drop_rate = parse_rate(value).map_err(|r| err(&r))?,
                "stall-ms" => {
                    let ms: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| err("stall-ms must be a u64"))?;
                    plan.stall = Duration::from_millis(ms);
                }
                _ => {
                    return Err(err(
                        "unknown key (seed/panic/delay/delay-ms/interrupt/refuse/drop/stall-ms)",
                    ))
                }
            }
        }
        Ok(plan)
    }
}

fn parse_rate(value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .trim()
        .parse()
        .map_err(|_| "rate must be a number".to_owned())?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("rate {rate} outside [0, 1]"));
    }
    Ok(rate)
}

/// Truncates the file at `path` to `keep_bytes`, simulating a
/// crash-interrupted write. Returns the number of bytes removed.
///
/// # Errors
///
/// Propagates I/O errors; truncating past the end of the file is an
/// `InvalidInput` error rather than silent extension.
pub fn truncate_file(path: &Path, keep_bytes: u64) -> io::Result<u64> {
    let file = OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    if keep_bytes > len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot keep {keep_bytes} bytes of a {len}-byte file"),
        ));
    }
    file.set_len(keep_bytes)?;
    Ok(len - keep_bytes)
}

/// Removes the last `n_bytes` of the file at `path` — the common
/// "the process died mid-line" corruption. Returns the new length.
///
/// # Errors
///
/// Propagates I/O errors; chopping more bytes than the file has is an
/// `InvalidInput` error.
pub fn chop_tail(path: &Path, n_bytes: u64) -> io::Result<u64> {
    let len = std::fs::metadata(path)?.len();
    let keep = len.checked_sub(n_bytes).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot chop {n_bytes} bytes off a {len}-byte file"),
        )
    })?;
    truncate_file(path, keep)?;
    Ok(keep)
}

/// XORs `mask` into the byte at `offset` of the file at `path` — silent
/// in-place bit corruption, the failure mode checksums exist to catch.
/// Returns the corrupted byte's new value.
///
/// # Errors
///
/// Propagates I/O errors; a zero mask (no corruption) or an offset past
/// the end of the file is an `InvalidInput` error.
pub fn flip_byte(path: &Path, offset: u64, mask: u8) -> io::Result<u8> {
    use std::io::{Read, Seek, SeekFrom, Write};
    if mask == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "mask 0 flips nothing",
        ));
    }
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let len = file.metadata()?.len();
    if offset >= len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("offset {offset} is past the end of a {len}-byte file"),
        ));
    }
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut byte)?;
    byte[0] ^= mask;
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)?;
    Ok(byte[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan: FaultPlan = "seed=42,panic=0.3,delay=0.3".parse().unwrap();
        for job in 0..64 {
            for attempt in 1..4 {
                assert_eq!(plan.decide(job, attempt), plan.decide(job, attempt));
            }
        }
    }

    #[test]
    fn rates_are_respected_statistically() {
        let plan: FaultPlan = "seed=1,panic=0.2".parse().unwrap();
        let panics = (0..10_000)
            .filter(|&j| plan.decide(j, 1) == FaultAction::Panic)
            .count();
        assert!((1_700..2_300).contains(&panics), "got {panics}");
    }

    #[test]
    fn attempts_are_independent_draws() {
        let plan: FaultPlan = "seed=9,panic=0.5".parse().unwrap();
        // Some job must panic on attempt 1 and pass on attempt 2: that is
        // what makes retries worthwhile.
        let recovered = (0..100).any(|j| {
            plan.decide(j, 1) == FaultAction::Panic && plan.decide(j, 2) == FaultAction::None
        });
        assert!(recovered);
    }

    #[test]
    fn quiet_plan_never_injects() {
        let plan = FaultPlan::quiet();
        assert!(plan.is_quiet());
        for job in 0..1000 {
            assert_eq!(plan.decide(job, 1), FaultAction::None);
        }
    }

    #[test]
    fn spec_round_trip_and_errors() {
        let plan: FaultPlan = "seed=7, panic=0.25, delay=0.1, delay-ms=40, interrupt=5"
            .parse()
            .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_rate, 0.25);
        assert_eq!(plan.delay_rate, 0.1);
        assert_eq!(plan.delay, Duration::from_millis(40));
        assert_eq!(plan.interrupt_after, Some(5));

        assert!("".parse::<FaultPlan>().unwrap().is_quiet());
        let err = "panic=2.0".parse::<FaultPlan>().unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
        let err = "frob=1".parse::<FaultPlan>().unwrap_err();
        assert!(err.to_string().contains("unknown key"), "{err}");
        let err = "panic".parse::<FaultPlan>().unwrap_err();
        assert!(err.to_string().contains("key=value"), "{err}");
    }

    #[test]
    fn connection_spec_round_trip_and_errors() {
        let plan: FaultPlan = "seed=5, refuse=0.4, drop=0.3, stall-ms=20".parse().unwrap();
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.refuse_rate, 0.4);
        assert_eq!(plan.drop_rate, 0.3);
        assert_eq!(plan.stall, Duration::from_millis(20));
        assert_eq!(plan.stall(), Some(Duration::from_millis(20)));
        assert!(!plan.is_quiet());

        // Connection keys leave the job-attempt schedule quiet.
        assert_eq!(plan.panic_rate, 0.0);
        assert_eq!(plan.decide(0, 1), FaultAction::None);

        let err = "refuse=1.5".parse::<FaultPlan>().unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
        let err = "drop=x".parse::<FaultPlan>().unwrap_err();
        assert!(err.to_string().contains("number"), "{err}");
        let err = "stall-ms=-3".parse::<FaultPlan>().unwrap_err();
        assert!(err.to_string().contains("u64"), "{err}");
    }

    #[test]
    fn connection_decisions_are_deterministic_and_rate_respecting() {
        let plan: FaultPlan = "seed=11,refuse=0.25,drop=0.25".parse().unwrap();
        let mut refused = 0;
        let mut dropped = 0;
        for conn in 0..10_000u64 {
            let fault = plan.decide_connection(conn);
            assert_eq!(fault, plan.decide_connection(conn));
            match fault {
                ConnectionFault::Refuse => refused += 1,
                ConnectionFault::Drop => dropped += 1,
                ConnectionFault::None => {}
            }
        }
        assert!((2_100..2_900).contains(&refused), "refused {refused}");
        // Drop draws are made only for the ~75% that survive refusal.
        assert!((1_500..2_300).contains(&dropped), "dropped {dropped}");

        let quiet = FaultPlan::quiet();
        assert_eq!(quiet.stall(), None);
        for conn in 0..100 {
            assert_eq!(quiet.decide_connection(conn), ConnectionFault::None);
        }
    }

    #[test]
    fn uniform_is_deterministic_and_in_unit_interval() {
        for stream in 0..500u64 {
            for draw in 0..3 {
                let u = uniform(7, stream, draw, 0x1234);
                assert_eq!(u, uniform(7, stream, draw, 0x1234));
                assert!((0.0..1.0).contains(&u));
            }
        }
        // Different salts decorrelate the streams.
        assert_ne!(uniform(7, 3, 1, 0x1234), uniform(7, 3, 1, 0x4321));
    }

    #[test]
    #[should_panic(expected = "reap-fault: injected panic")]
    fn apply_panics_on_schedule() {
        let plan = FaultPlan {
            panic_rate: 1.0,
            ..FaultPlan::default()
        };
        plan.apply(0, 1);
    }

    #[test]
    fn truncation_helpers_cut_files() {
        let dir = std::env::temp_dir().join(format!("reap-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        std::fs::write(&path, b"0123456789").unwrap();

        assert_eq!(truncate_file(&path, 7).unwrap(), 3);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456");
        assert_eq!(chop_tail(&path, 2).unwrap(), 5);
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");

        assert!(truncate_file(&path, 99).is_err());
        assert!(chop_tail(&path, 99).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn flip_byte_corrupts_exactly_one_byte_in_place() {
        let dir = std::env::temp_dir().join(format!("reap-fault-flip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::write(&path, b"0123456789").unwrap();

        let flipped = flip_byte(&path, 3, 0x01).unwrap();
        assert_eq!(flipped, b'3' ^ 0x01);
        assert_eq!(std::fs::read(&path).unwrap(), b"0122456789");
        // Flipping the same bit back restores the original file.
        flip_byte(&path, 3, 0x01).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");

        assert!(flip_byte(&path, 3, 0).is_err(), "zero mask flips nothing");
        assert!(flip_byte(&path, 10, 0xFF).is_err(), "offset past the end");
        std::fs::remove_dir_all(dir).ok();
    }
}
