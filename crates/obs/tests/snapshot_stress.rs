//! Stress test: `Registry::snapshot` must never observe torn histogram
//! state while writer threads hammer the registry. Own integration
//! binary (own process, like `pool_telemetry.rs`) so the scheduling
//! pressure is not diluted by unrelated tests.

use reap_obs::Registry;
use std::sync::atomic::{AtomicBool, Ordering};

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 50_000;

#[test]
fn snapshots_never_observe_torn_histogram_counts() {
    let registry = Registry::new();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let registry = &registry;
            scope.spawn(move || {
                let hist = registry.histogram("stress.latency_us");
                let jobs = registry.counter("stress.jobs");
                for i in 0..OPS_PER_WRITER {
                    // Values spread across many log2 buckets so a torn
                    // read has many chances to show up.
                    hist.record((i * (w as u64 + 1)) % 100_000 + 1);
                    jobs.inc();
                }
            });
        }

        let registry = &registry;
        let done = &done;
        scope.spawn(move || {
            let mut last_count = 0u64;
            let mut snapshots = 0u64;
            while !done.load(Ordering::Relaxed) || snapshots == 0 {
                let snap = registry.snapshot();
                if let Some((_, h)) = snap
                    .hists
                    .iter()
                    .find(|(name, _)| name == "stress.latency_us")
                {
                    // The exported count is derived from the bucket
                    // loads themselves, so count == Σ buckets must hold
                    // structurally in every snapshot.
                    let bucket_total: u64 = h.buckets.iter().map(|(_, c)| *c).sum();
                    assert_eq!(
                        h.count, bucket_total,
                        "snapshot observed a torn histogram: count {} != bucket sum {}",
                        h.count, bucket_total
                    );
                    assert!(
                        h.count >= last_count,
                        "histogram count went backwards: {} -> {}",
                        last_count,
                        h.count
                    );
                    last_count = h.count;
                    assert!(h.max <= 100_000, "impossible max {}", h.max);
                }
                snapshots += 1;
            }
            assert!(snapshots > 0);
        });

        // Writers finish when their spawned closures return; flag the
        // reader once the writer handles would join. Scope join order is
        // implicit, so poll the counter instead.
        let jobs = registry.counter("stress.jobs");
        let expected = WRITERS as u64 * OPS_PER_WRITER;
        while jobs.get() < expected {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
    });

    let snap = registry.snapshot();
    let (_, h) = snap
        .hists
        .iter()
        .find(|(name, _)| name == "stress.latency_us")
        .expect("stress histogram exported");
    let expected = WRITERS as u64 * OPS_PER_WRITER;
    assert_eq!(h.count, expected);
    assert_eq!(h.buckets.iter().map(|(_, c)| *c).sum::<u64>(), expected);
}
