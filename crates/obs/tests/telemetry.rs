//! Cross-module behaviour of the telemetry substrate: export determinism,
//! registry thread-safety under `run_parallel`-like load, and the global
//! enable gate.

use reap_obs::export::{check_jsonl, is_run_variant_metric, write_jsonl, TIMING_KEYS};
use reap_obs::json::{parse, Value};
use reap_obs::{Registry, StaticCounter};

/// Drives one scripted "simulation" into a registry: a capture span with
/// nested per-point replays, counters, a gauge and a histogram.
fn scripted_run(registry: &Registry) {
    {
        let mut capture = registry.span("capture");
        capture.add_events(40_000);
        registry.counter("sim.capture.exposure_events").add(1_234);
    }
    {
        let _replay = registry.span("replay");
        for point in ["sec", "dec", "tec"] {
            let mut child = registry.span(point);
            child.add_events(1_234);
            registry.counter("ecc.decode").add(512);
        }
    }
    registry
        .gauge("run_parallel.worker.0.utilization")
        .set(0.875);
    for n in [1u64, 3, 3, 900, 40_000] {
        registry.histogram("accumulation.n").record(n);
    }
}

/// A JSON-lines document reduced to its deterministic content: each line
/// parsed and stripped of wall-clock fields; process self-metrics records
/// and run-variant metrics (span-latency histograms, busy/idle/utilization
/// gauges) dropped entirely, since their *values* are wall-clock derived.
fn deterministic_view(jsonl: &str) -> Vec<Vec<(String, Value)>> {
    jsonl
        .lines()
        .filter_map(|line| {
            let Value::Obj(fields) = parse(line).expect("exporter emits valid JSON") else {
                panic!("line is not an object: {line}");
            };
            let field = |key: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_str())
            };
            if field("type") == Some("process") {
                return None;
            }
            if field("name").is_some_and(is_run_variant_metric) {
                return None;
            }
            Some(
                fields
                    .into_iter()
                    .filter(|(k, _)| !TIMING_KEYS.contains(&k.as_str()))
                    .collect(),
            )
        })
        .collect()
}

fn export(registry: &Registry) -> String {
    let mut buf = Vec::new();
    write_jsonl(&registry.snapshot(), &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

#[test]
fn identical_runs_export_identical_jsonl_modulo_timestamps() {
    let a = Registry::new();
    let b = Registry::new();
    scripted_run(&a);
    scripted_run(&b);
    let ja = export(&a);
    let jb = export(&b);
    assert_eq!(
        deterministic_view(&ja),
        deterministic_view(&jb),
        "same work must export the same document apart from timing"
    );
    // And the timing fields are the *only* tolerated difference: the raw
    // documents agree line-for-line in shape and ordering.
    assert_eq!(ja.lines().count(), jb.lines().count());
    check_jsonl(&ja).unwrap();
    check_jsonl(&jb).unwrap();
}

#[test]
fn repeated_snapshots_of_an_idle_registry_are_identical() {
    let r = Registry::new();
    scripted_run(&r);
    assert_eq!(
        deterministic_view(&export(&r)),
        deterministic_view(&export(&r))
    );
}

#[test]
fn registry_survives_worker_pool_hammering() {
    // The shape run_parallel produces: many threads incrementing shared
    // counters, recording histograms and opening spans concurrently.
    const THREADS: usize = 16;
    const OPS: u64 = 10_000;
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let jobs = registry.counter("pool.jobs");
                let hist = registry.histogram("pool.latency_us");
                for i in 0..OPS {
                    jobs.inc();
                    registry.counter("pool.shared").add(2);
                    hist.record(i % 1024 + 1);
                    if i % 1_000 == 0 {
                        let mut span = registry.span("job");
                        span.add_events(1);
                    }
                }
                registry
                    .gauge(&format!("pool.worker.{worker}.busy_s"))
                    .set(worker as f64);
            });
        }
    });
    let snap = registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert_eq!(counter("pool.jobs"), THREADS as u64 * OPS);
    assert_eq!(counter("pool.shared"), THREADS as u64 * OPS * 2);
    let hist = &snap.hists[0].1;
    assert_eq!(hist.count, THREADS as u64 * OPS);
    assert_eq!(registry.span_count("job"), (THREADS * 10) as u64);
    assert_eq!(snap.gauges.len(), THREADS);
    check_jsonl(&export(&registry)).unwrap();
}

static GATED: StaticCounter = StaticCounter::new("test.gated");

#[test]
fn global_gate_controls_spans_and_static_counters() {
    // Single test for all global-flag behaviour, so parallel tests in
    // this binary never observe a half-toggled flag.
    assert!(!reap_obs::enabled(), "telemetry must default to off");
    GATED.add(5);
    assert_eq!(GATED.get(), 0, "disabled static counters drop updates");
    let inert = reap_obs::span("ignored");
    assert!(!inert.is_recording());
    drop(inert);

    reap_obs::set_enabled(true);
    GATED.add(5);
    let mut live = reap_obs::span("gated_phase");
    assert!(live.is_recording());
    live.add_events(1);
    drop(live);
    reap_obs::set_enabled(false);

    assert_eq!(GATED.get(), 5);
    let snap = reap_obs::global().snapshot();
    assert!(snap
        .counters
        .iter()
        .any(|(n, v)| n == "test.gated" && *v == 5));
    assert_eq!(reap_obs::global().span_count("gated_phase"), 1);

    assert!(!reap_obs::progress_enabled());
    reap_obs::set_progress_enabled(true);
    assert!(reap_obs::progress_enabled());
    reap_obs::set_progress_enabled(false);
}
