//! Hierarchical phase spans.
//!
//! A span measures the wall-clock of one phase of work ("capture",
//! "replay", one sweep point…). Spans nest: a span opened while another is
//! active on the same thread becomes its child, and the full path
//! (`"replay/point"`) is recorded so exporters can reconstruct the tree.
//! Each span optionally carries an event count, from which exporters
//! derive rates (events per second).
//!
//! The guard is RAII: the span records itself into its registry when
//! dropped. Guards must be dropped in the reverse order they were created
//! on a thread (the natural lexical-scope pattern).
//!
//! # Examples
//!
//! ```
//! use reap_obs::Registry;
//!
//! let registry = Registry::new();
//! {
//!     let _outer = registry.span("capture");
//!     let mut inner = registry.span("drive");
//!     inner.add_events(1000);
//! } // both recorded here
//! let snap = registry.snapshot();
//! assert_eq!(snap.spans.len(), 2);
//! assert_eq!(snap.spans[0].path, "capture");
//! assert_eq!(snap.spans[1].path, "capture/drive");
//! assert_eq!(snap.spans[1].events, 1000);
//! ```

use crate::registry::Registry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Slash-joined path from the thread's root span to this one.
    pub path: String,
    /// The leaf name.
    pub name: String,
    /// Start offset from the registry epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Events attributed to the span via [`SpanGuard::add_events`].
    pub events: u64,
    /// Small sequential id of the recording thread.
    pub thread: u64,
}

impl SpanRecord {
    /// Duration in seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.dur_us as f64 / 1e6
    }

    /// Events per second, when both events and a non-zero duration were
    /// recorded.
    pub fn rate_per_s(&self) -> Option<f64> {
        (self.events > 0 && self.dur_us > 0).then(|| self.events as f64 / self.wall_seconds())
    }
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

struct ActiveSpan<'a> {
    registry: &'a Registry,
    path: String,
    name: String,
    start: Instant,
    events: u64,
}

/// RAII guard for an in-flight span; records into the registry on drop.
///
/// An inert guard (from [`crate::span`] while telemetry is disabled) costs
/// nothing beyond its `Option` tag.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn inert() -> SpanGuard<'static> {
        SpanGuard { active: None }
    }

    pub(crate) fn enter(registry: &'a Registry, name: &str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name.to_owned());
            stack.join("/")
        });
        SpanGuard {
            active: Some(ActiveSpan {
                registry,
                path,
                name: name.to_owned(),
                start: Instant::now(),
                events: 0,
            }),
        }
    }

    /// Attributes `n` more events to the span (exporters derive rates).
    pub fn add_events(&mut self, n: u64) {
        if let Some(active) = &mut self.active {
            active.events += n;
        }
    }

    /// Whether this guard is live (telemetry was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let dur_us = active.start.elapsed().as_micros() as u64;
        let start_us = active
            .start
            .saturating_duration_since(active.registry.epoch())
            .as_micros() as u64;
        active.registry.record_span(SpanRecord {
            path: active.path,
            name: active.name,
            start_us,
            dur_us,
            events: active.events,
            thread: current_thread_id(),
        });
    }
}

impl Registry {
    /// Opens a span named `name`, child of the thread's innermost open
    /// span. Record lands in this registry when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard::enter(self, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths() {
        let r = Registry::new();
        {
            let _a = r.span("outer");
            {
                let _b = r.span("mid");
                let _c = r.span("leaf");
            }
            let _d = r.span("sibling");
        }
        let paths: Vec<String> = r.snapshot().spans.into_iter().map(|s| s.path).collect();
        assert_eq!(
            paths,
            vec!["outer", "outer/mid", "outer/mid/leaf", "outer/sibling"]
        );
    }

    #[test]
    fn events_and_rates() {
        let r = Registry::new();
        {
            let mut s = r.span("work");
            s.add_events(500);
            s.add_events(500);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = r.snapshot();
        let span = &snap.spans[0];
        assert_eq!(span.events, 1000);
        assert!(span.dur_us >= 2000, "slept 2ms, recorded {}", span.dur_us);
        let rate = span.rate_per_s().unwrap();
        assert!(rate > 0.0 && rate < 1000.0 / 0.002);
    }

    #[test]
    fn span_totals_by_name() {
        let r = Registry::new();
        drop(r.span("replay"));
        drop(r.span("replay"));
        drop(r.span("capture"));
        assert_eq!(r.span_count("replay"), 2);
        assert_eq!(r.span_count("capture"), 1);
        assert_eq!(r.span_count("nope"), 0);
        assert!(r.span_seconds("replay") >= 0.0);
    }

    #[test]
    fn inert_guard_records_nothing() {
        let g = SpanGuard::inert();
        assert!(!g.is_recording());
        drop(g);
    }

    #[test]
    fn spans_on_other_threads_are_roots() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            let _outer = r.span("main");
            scope.spawn(|| {
                let mut s = r.span("worker");
                s.add_events(7);
            });
        });
        let snap = r.snapshot();
        let worker = snap.spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.path, "worker", "no cross-thread parenting");
        assert_eq!(worker.events, 7);
    }
}
