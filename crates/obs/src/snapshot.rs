//! Snapshot introspection: process self-metrics, loading exported
//! documents back into [`Snapshot`]s, and diffing two snapshots.
//!
//! This is the read side of the observability layer. The write side
//! ([`crate::export`]) turns a [`Snapshot`] into a `reap-obs/2` JSON-lines
//! document; this module turns such a document (or a flat JSON object
//! like the committed `BENCH_*.json` baselines) back into a [`Snapshot`],
//! and [`Snapshot::diff`] compares two of them: signed deltas for
//! counters and gauges, histogram-shape deltas, per-span-name wall-time
//! deltas, and added/removed metric detection. [`crate::report`] renders
//! the results and applies regression thresholds.

use crate::json::{self, Value};
use crate::registry::{HistSnapshot, Snapshot};
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::time::Instant;

/// Self-metrics of the recording process, sampled at snapshot time.
///
/// The RSS fields come from `/proc/self/status` (`VmHWM`/`VmRSS`) and the
/// CPU time from `/proc/self/stat`; on platforms without procfs they are
/// `None` and only the wall clock is reported.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProcessSample {
    /// Wall-clock seconds since the registry epoch.
    pub wall_s: f64,
    /// User + system CPU seconds consumed by the process.
    pub cpu_s: Option<f64>,
    /// Peak resident set size in bytes (`VmHWM`).
    pub peak_rss_bytes: Option<u64>,
    /// Current resident set size in bytes (`VmRSS`).
    pub rss_bytes: Option<u64>,
}

impl ProcessSample {
    /// Samples the current process, measuring wall time from `epoch`.
    pub fn capture(epoch: Instant) -> Self {
        Self {
            wall_s: epoch.elapsed().as_secs_f64(),
            cpu_s: proc_cpu_seconds(),
            peak_rss_bytes: proc_status_bytes("VmHWM:"),
            rss_bytes: proc_status_bytes("VmRSS:"),
        }
    }

    /// CPU-to-wall ratio — parallel efficiency in one number. `None`
    /// without CPU accounting or for a zero-length run.
    pub fn cpu_per_wall(&self) -> Option<f64> {
        let cpu = self.cpu_s?;
        (self.wall_s > 0.0).then(|| cpu / self.wall_s)
    }
}

/// A `Vm…` line of `/proc/self/status`, converted from kB to bytes.
fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// utime + stime of `/proc/self/stat` in seconds (USER_HZ is 100 on
/// every Linux ABI this crate targets).
fn proc_cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces; everything after the closing
    // paren is whitespace-delimited: state, then utime at index 11 and
    // stime at index 12.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// One metric present in both snapshots, with its two values.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name.
    pub name: String,
    /// Value in the first (baseline) snapshot.
    pub a: f64,
    /// Value in the second snapshot.
    pub b: f64,
}

impl Delta {
    /// Signed absolute change `b - a`.
    pub fn change(&self) -> f64 {
        self.b - self.a
    }

    /// Signed relative change `(b - a) / |a|`; `None` when the baseline
    /// is zero.
    pub fn rel(&self) -> Option<f64> {
        (self.a != 0.0).then(|| (self.b - self.a) / self.a.abs())
    }
}

/// One histogram present in both snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct HistDelta {
    /// Histogram name.
    pub name: String,
    /// Shape in the first (baseline) snapshot.
    pub a: HistSnapshot,
    /// Shape in the second snapshot.
    pub b: HistSnapshot,
}

/// One span name's aggregate in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanAgg {
    /// Finished spans with this name.
    pub count: u64,
    /// Total wall-clock seconds across them.
    pub total_s: f64,
    /// Total events attributed to them.
    pub events: u64,
}

/// One span name present in both snapshots, with both aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDelta {
    /// Span name.
    pub name: String,
    /// Aggregate in the first (baseline) snapshot.
    pub a: SpanAgg,
    /// Aggregate in the second snapshot.
    pub b: SpanAgg,
}

impl SpanDelta {
    /// Signed relative change of total wall seconds; `None` when the
    /// baseline total is zero.
    pub fn rel(&self) -> Option<f64> {
        (self.a.total_s > 0.0).then(|| (self.b.total_s - self.a.total_s) / self.a.total_s)
    }
}

/// The structured comparison of two [`Snapshot`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotDiff {
    /// Counters present in both, sorted by name.
    pub counters: Vec<Delta>,
    /// Gauges present in both, sorted by name.
    pub gauges: Vec<Delta>,
    /// Histograms present in both, sorted by name.
    pub hists: Vec<HistDelta>,
    /// Span names present in both, sorted by name.
    pub spans: Vec<SpanDelta>,
    /// Metrics only in the second snapshot, as `"kind name"` strings.
    pub added: Vec<String>,
    /// Metrics only in the first snapshot, as `"kind name"` strings.
    pub removed: Vec<String>,
    /// Process samples of the two snapshots, when recorded.
    pub process_a: Option<ProcessSample>,
    /// Second snapshot's process sample.
    pub process_b: Option<ProcessSample>,
}

/// Aggregates a snapshot's spans by name.
pub fn span_aggregates(snapshot: &Snapshot) -> BTreeMap<String, SpanAgg> {
    let mut totals: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for span in &snapshot.spans {
        let agg = totals.entry(span.name.clone()).or_default();
        agg.count += 1;
        agg.total_s += span.wall_seconds();
        agg.events += span.events;
    }
    totals
}

fn join_names<'a, A, B, K, VA, VB>(
    a: A,
    b: B,
    kind: &str,
    shared: &mut Vec<(String, VA, VB)>,
    added: &mut Vec<String>,
    removed: &mut Vec<String>,
) where
    A: IntoIterator<Item = (K, VA)>,
    B: IntoIterator<Item = (K, VB)>,
    K: Into<String> + 'a,
{
    let mut bs: BTreeMap<String, VB> = b.into_iter().map(|(k, v)| (k.into(), v)).collect();
    for (name, va) in a {
        let name: String = name.into();
        match bs.remove(&name) {
            Some(vb) => shared.push((name, va, vb)),
            None => removed.push(format!("{kind} {name}")),
        }
    }
    added.extend(bs.into_keys().map(|name| format!("{kind} {name}")));
}

impl Snapshot {
    /// Compares `self` (the baseline, "a") against `other` ("b").
    ///
    /// Metrics present in both land in the delta lists; metrics present
    /// in only one side land in `added`/`removed`. Spans are aggregated
    /// by name before comparison (individual span records carry
    /// run-variant timing, but a phase's count/total/events triple is
    /// the stable unit of comparison).
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_obs::Registry;
    ///
    /// let a = Registry::new();
    /// a.counter("ecc.decode").add(10);
    /// let b = Registry::new();
    /// b.counter("ecc.decode").add(15);
    /// b.counter("new.metric").inc();
    /// let diff = a.snapshot().diff(&b.snapshot());
    /// assert_eq!(diff.counters[0].change(), 5.0);
    /// assert_eq!(diff.added, vec!["counter new.metric".to_owned()]);
    /// ```
    pub fn diff(&self, other: &Snapshot) -> SnapshotDiff {
        let mut diff = SnapshotDiff {
            process_a: self.process.clone(),
            process_b: other.process.clone(),
            ..SnapshotDiff::default()
        };
        let mut counters = Vec::new();
        join_names(
            self.counters.iter().map(|(k, v)| (k.clone(), *v)),
            other.counters.iter().map(|(k, v)| (k.clone(), *v)),
            "counter",
            &mut counters,
            &mut diff.added,
            &mut diff.removed,
        );
        diff.counters = counters
            .into_iter()
            .map(|(name, a, b)| Delta {
                name,
                a: a as f64,
                b: b as f64,
            })
            .collect();
        let mut gauges = Vec::new();
        join_names(
            self.gauges.iter().map(|(k, v)| (k.clone(), *v)),
            other.gauges.iter().map(|(k, v)| (k.clone(), *v)),
            "gauge",
            &mut gauges,
            &mut diff.added,
            &mut diff.removed,
        );
        diff.gauges = gauges
            .into_iter()
            .map(|(name, a, b)| Delta { name, a, b })
            .collect();
        let mut hists = Vec::new();
        join_names(
            self.hists.iter().map(|(k, v)| (k.clone(), v.clone())),
            other.hists.iter().map(|(k, v)| (k.clone(), v.clone())),
            "hist",
            &mut hists,
            &mut diff.added,
            &mut diff.removed,
        );
        diff.hists = hists
            .into_iter()
            .map(|(name, a, b)| HistDelta { name, a, b })
            .collect();
        let mut spans = Vec::new();
        join_names(
            span_aggregates(self),
            span_aggregates(other),
            "span",
            &mut spans,
            &mut diff.added,
            &mut diff.removed,
        );
        diff.spans = spans
            .into_iter()
            .map(|(name, a, b)| SpanDelta { name, a, b })
            .collect();
        diff.added.sort();
        diff.removed.sort();
        diff
    }

    /// Loads a snapshot back from a JSON-lines document produced by
    /// [`crate::export::write_jsonl`] (either `reap-obs/1` or `/2`).
    ///
    /// A crash-truncated unterminated final line is tolerated and
    /// skipped, matching [`crate::export::check_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns `(line_number, message)` (1-based) for the first
    /// violation — including an unknown schema version on the meta line.
    pub fn from_jsonl(text: &str) -> Result<Snapshot, (usize, String)> {
        let mut snapshot = Snapshot::default();
        let mut saw_meta = false;
        let last_line_unterminated = !text.is_empty() && !text.ends_with('\n');
        let line_count = text.lines().count();
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let parsed = json::parse(line);
            if parsed.is_err() && last_line_unterminated && line_no == line_count {
                break;
            }
            let value = parsed.map_err(|e| (line_no, format!("invalid JSON: {e}")))?;
            let kind = value
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| (line_no, "record has no \"type\" field".to_owned()))?;
            if !saw_meta {
                if kind != "meta" {
                    return Err((line_no, "first record must be \"meta\"".to_owned()));
                }
                let schema = value.get("schema").and_then(Value::as_str);
                crate::export::validate_schema(schema, line_no)?;
                saw_meta = true;
                continue;
            }
            let name = || {
                value
                    .get("name")
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| (line_no, format!("{kind} record has no \"name\"")))
            };
            let num = |key: &str| {
                value
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| (line_no, format!("{kind} record missing \"{key}\"")))
            };
            match kind {
                "counter" => snapshot.counters.push((name()?, num("value")? as u64)),
                "gauge" => snapshot.gauges.push((name()?, num("value")?)),
                "hist" => {
                    let buckets = match value.get("buckets") {
                        Some(Value::Arr(items)) => items
                            .iter()
                            .map(|pair| match pair {
                                Value::Arr(lc) if lc.len() == 2 => {
                                    match (lc[0].as_f64(), lc[1].as_f64()) {
                                        (Some(lo), Some(c)) => Ok((lo as u64, c as u64)),
                                        _ => Err((line_no, "bad bucket pair".to_owned())),
                                    }
                                }
                                _ => Err((line_no, "bad bucket pair".to_owned())),
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                        _ => return Err((line_no, "hist record missing \"buckets\"".to_owned())),
                    };
                    snapshot.hists.push((
                        name()?,
                        HistSnapshot {
                            count: num("count")? as u64,
                            sum: num("sum")? as u64,
                            max: num("max")? as u64,
                            buckets,
                        },
                    ));
                }
                "span" => {
                    let field = |key: &str| {
                        value
                            .get(key)
                            .and_then(Value::as_str)
                            .map(str::to_owned)
                            .ok_or_else(|| (line_no, format!("span record has no \"{key}\"")))
                    };
                    snapshot.spans.push(SpanRecord {
                        path: field("path")?,
                        name: field("name")?,
                        start_us: num("start_us")? as u64,
                        dur_us: num("dur_us")? as u64,
                        events: num("events")? as u64,
                        thread: num("thread")? as u64,
                    });
                }
                "process" => {
                    let opt = |key: &str| value.get(key).and_then(Value::as_f64);
                    snapshot.process = Some(ProcessSample {
                        wall_s: num("wall_s")?,
                        cpu_s: opt("cpu_s"),
                        peak_rss_bytes: opt("peak_rss_bytes").map(|v| v as u64),
                        rss_bytes: opt("rss_bytes").map(|v| v as u64),
                    });
                }
                "meta" => return Err((line_no, "duplicate meta record".to_owned())),
                other => return Err((line_no, format!("unknown record type \"{other}\""))),
            }
        }
        if !saw_meta {
            return Err((0, "empty document (no meta record)".to_owned()));
        }
        Ok(snapshot)
    }

    /// Loads a flat JSON object (like the committed `BENCH_*.json`
    /// baselines) as a snapshot of gauges: every numeric field becomes a
    /// gauge, nested objects flattened with dots (`v2.speedup`).
    /// Booleans and strings are skipped.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not one JSON object.
    pub fn from_flat_json(text: &str) -> Result<Snapshot, String> {
        let value = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let Value::Obj(_) = &value else {
            return Err("expected a JSON object".to_owned());
        };
        let mut gauges = Vec::new();
        flatten_numeric("", &value, &mut gauges);
        gauges.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(Snapshot {
            gauges,
            ..Snapshot::default()
        })
    }

    /// Loads a metrics file of either supported shape: a JSON-lines
    /// export (detected by its `meta` first line) or a flat JSON object.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unreadable content.
    pub fn from_metrics_str(text: &str) -> Result<Snapshot, String> {
        // A whole-text parse succeeding means a single JSON value: a
        // flat baseline object (or a degenerate one-line JSONL export,
        // which the meta type identifies).
        if let Ok(value) = json::parse(text) {
            if value.get("type").and_then(Value::as_str) != Some("meta") {
                return Snapshot::from_flat_json(text);
            }
        }
        Snapshot::from_jsonl(text).map_err(|(line, msg)| format!("line {line}: {msg}"))
    }
}

fn flatten_numeric(prefix: &str, value: &Value, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Obj(fields) => {
            for (key, v) in fields {
                let name = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten_numeric(&name, v, out);
            }
        }
        Value::Num(n) if !prefix.is_empty() => out.push((prefix.to_owned(), *n)),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn exported(r: &Registry) -> String {
        let mut buf = Vec::new();
        crate::export::write_jsonl(&r.snapshot(), &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn process_sample_reports_linux_self_metrics() {
        let s = ProcessSample::capture(Instant::now());
        assert!(s.wall_s >= 0.0);
        if cfg!(target_os = "linux") {
            assert!(s.peak_rss_bytes.unwrap() > 0);
            assert!(s.rss_bytes.unwrap() > 0);
            assert!(s.cpu_s.unwrap() >= 0.0);
        }
    }

    #[test]
    fn jsonl_round_trips_into_an_equal_snapshot() {
        let r = Registry::new();
        r.counter("ecc.decode").add(7);
        r.gauge("util").set(0.5);
        r.histogram("n").record(9);
        {
            let mut s = r.span("capture");
            s.add_events(100);
        }
        let original = r.snapshot();
        let loaded = Snapshot::from_jsonl(&exported(&r)).unwrap();
        assert_eq!(loaded.counters, original.counters);
        assert_eq!(loaded.gauges, original.gauges);
        assert_eq!(loaded.hists, original.hists);
        assert_eq!(loaded.spans, original.spans);
        assert!(loaded.process.is_some());
    }

    #[test]
    fn from_jsonl_rejects_unknown_schema_with_line_number() {
        let err =
            Snapshot::from_jsonl("{\"type\":\"meta\",\"schema\":\"reap-obs/99\"}\n").unwrap_err();
        assert_eq!(err.0, 1);
        assert!(err.1.contains("reap-obs/99"), "{}", err.1);
    }

    #[test]
    fn from_jsonl_accepts_v1_documents() {
        let text = "{\"type\":\"meta\",\"schema\":\"reap-obs/1\",\"counters\":1,\"gauges\":0,\
                    \"hists\":0,\"spans\":0}\n{\"type\":\"counter\",\"name\":\"x\",\"value\":3}\n";
        let snap = Snapshot::from_jsonl(text).unwrap();
        assert_eq!(snap.counters, vec![("x".to_owned(), 3)]);
        assert!(snap.process.is_none(), "v1 documents carry no process");
    }

    #[test]
    fn diff_reports_deltas_and_membership() {
        let ra = Registry::new();
        ra.counter("shared").add(10);
        ra.counter("gone").add(1);
        ra.gauge("g").set(2.0);
        ra.histogram("h").record(4);
        drop(ra.span("phase"));
        let rb = Registry::new();
        rb.counter("shared").add(30);
        rb.counter("fresh").add(1);
        rb.gauge("g").set(3.0);
        rb.histogram("h").record(4);
        rb.histogram("h").record(4);
        drop(rb.span("phase"));

        let diff = ra.snapshot().diff(&rb.snapshot());
        let shared = diff.counters.iter().find(|d| d.name == "shared").unwrap();
        assert_eq!(shared.change(), 20.0);
        assert_eq!(shared.rel(), Some(2.0));
        assert_eq!(diff.added, vec!["counter fresh"]);
        assert_eq!(diff.removed, vec!["counter gone"]);
        let g = diff.gauges.iter().find(|d| d.name == "g").unwrap();
        assert_eq!(g.change(), 1.0);
        let h = diff.hists.iter().find(|d| d.name == "h").unwrap();
        assert_eq!(h.b.count - h.a.count, 1);
        let phase = diff.spans.iter().find(|d| d.name == "phase").unwrap();
        assert_eq!((phase.a.count, phase.b.count), (1, 1));
        assert!(diff.process_a.is_some() && diff.process_b.is_some());
    }

    #[test]
    fn flat_json_flattens_nested_numbers_into_gauges() {
        let snap = Snapshot::from_flat_json(
            "{\"speedup\": 3.5, \"v2\": {\"warm_s\": 0.25}, \"smoke\": true, \"note\": \"x\"}",
        )
        .unwrap();
        assert_eq!(
            snap.gauges,
            vec![("speedup".to_owned(), 3.5), ("v2.warm_s".to_owned(), 0.25)]
        );
    }

    #[test]
    fn metrics_str_dispatches_on_shape() {
        let flat = Snapshot::from_metrics_str("{\"a\": 1}").unwrap();
        assert_eq!(flat.gauges.len(), 1);
        let r = Registry::new();
        r.counter("c").inc();
        let jsonl = Snapshot::from_metrics_str(&exported(&r)).unwrap();
        assert_eq!(jsonl.counters.len(), 1);
        assert!(Snapshot::from_metrics_str("garbage").is_err());
    }
}
