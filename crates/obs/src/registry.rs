//! The thread-safe metrics registry: named counters, gauges and
//! log-bucketed histograms, plus the sink for finished [`span`] records.
//!
//! Handles returned by [`Registry::counter`]/[`Registry::gauge`]/
//! [`Registry::histogram`] are cheap `Arc`-backed cells — look a metric up
//! once outside a hot loop and update it lock-free from any number of
//! threads. For instrumentation points that cannot afford even one lazy
//! lookup, [`StaticCounter`] provides a `const`-constructible counter that
//! registers itself with the global registry on first use and costs a
//! single relaxed atomic load while telemetry is disabled.
//!
//! [`span`]: crate::span()

use crate::snapshot::ProcessSample;
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of power-of-two buckets a [`Histogram`] carries — enough for the
/// full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing named metric.
///
/// Cloning is cheap; all clones update the same cell.
///
/// # Examples
///
/// ```
/// use reap_obs::Registry;
///
/// let registry = Registry::new();
/// let decodes = registry.counter("ecc.decode");
/// decodes.add(3);
/// decodes.inc();
/// assert_eq!(registry.counter("ecc.decode").get(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the counter with an absolute value — used when a
    /// subsystem exports already-accumulated totals (e.g. cache stats at
    /// the end of a run) rather than streaming increments.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named metric holding the latest `f64` observation.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Records `value`, replacing the previous observation.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge (lock-free CAS on the bit pattern) — for
    /// gauges that accumulate quantities across batches, like the
    /// per-worker `.busy_s`/`.idle_s` seconds of a repeatedly invoked
    /// pool.
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Latest observation (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let bucket = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        // The sum saturates instead of wrapping: a long-lived registry
        // fed huge observations must pin at u64::MAX, never report a
        // small wrapped total as if nothing happened.
        let mut current = self.sum.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(value);
            match self.sum.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// A log-bucketed histogram over `u64` observations.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` — the same power-of-two scheme as
/// `reap_reliability::LogHistogram`, so accumulation-count distributions
/// recorded here line up bin-for-bin with the paper's Fig. 3 pipeline.
/// Observations of `0` are clamped into bucket 0.
///
/// # Examples
///
/// ```
/// use reap_obs::Registry;
///
/// let registry = Registry::new();
/// let h = registry.histogram("accumulation.n");
/// h.record(1);
/// h.record(1000);
/// let snap = registry.snapshot();
/// assert_eq!(snap.hists[0].1.count, 2);
/// assert_eq!(snap.hists[0].1.max, 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total observations. Always equals the sum of the bucket counts:
    /// the snapshot derives it from the buckets rather than reading a
    /// separate atomic, so a snapshot taken mid-record can never report
    /// a count that disagrees with its own bucket sums.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty buckets as `(lower_edge, count)`, lower edges ascending
    /// powers of two.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by locating the bucket
    /// holding the `ceil(q·count)`-th smallest observation and
    /// interpolating linearly inside its `[2^i, 2^(i+1))` range. The
    /// estimate is clamped to the recorded maximum, so it sits within a
    /// factor of two of the true quantile (the bucket width); see
    /// DESIGN.md §11 for the error-bound discussion.
    ///
    /// Returns `None` for an empty histogram.
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_obs::Registry;
    ///
    /// let registry = Registry::new();
    /// let h = registry.histogram("latency");
    /// for v in [10u64, 10, 10, 10, 1000] {
    ///     h.record(v);
    /// }
    /// let snap = registry.snapshot();
    /// let p50 = snap.hists[0].1.quantile(0.50).unwrap();
    /// assert!((8.0..16.0).contains(&p50), "{p50}");
    /// assert_eq!(snap.hists[0].1.quantile(0.99), Some(1000.0));
    /// ```
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lo, n) in &self.buckets {
            if seen + n >= rank {
                // Bucket 0 (stored lower edge 1) also holds clamped
                // zeros, so its true range is [0, 2).
                let (lo_f, hi_f) = if lo == 1 {
                    (0.0, 2.0)
                } else {
                    (lo as f64, lo as f64 * 2.0)
                };
                let frac = (rank - seen) as f64 / n as f64;
                return Some((lo_f + frac * (hi_f - lo_f)).min(self.max as f64));
            }
            seen += n;
        }
        Some(self.max as f64)
    }
}

/// A `const`-constructible counter for hot instrumentation points.
///
/// Lives in a `static`, costs one relaxed load while telemetry is
/// disabled, and registers itself with the [global registry](crate::global)
/// the first time it is incremented while telemetry is enabled — no
/// life-before-main tricks required.
///
/// # Examples
///
/// ```
/// use reap_obs::StaticCounter;
///
/// static DECODES: StaticCounter = StaticCounter::new("ecc.decode");
///
/// reap_obs::set_enabled(true);
/// DECODES.add(1);
/// assert!(DECODES.get() >= 1);
/// # reap_obs::set_enabled(false);
/// ```
#[derive(Debug)]
pub struct StaticCounter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl StaticCounter {
    /// Creates the counter; usable in `static` items.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name this counter exports under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` if telemetry is enabled; a single relaxed load otherwise.
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::SeqCst)
        {
            crate::global().register_static(self);
        }
    }

    /// Adds one (subject to the enable gate).
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    statics: Vec<&'static StaticCounter>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    hists: BTreeMap<String, Arc<HistCell>>,
    spans: Vec<SpanRecord>,
}

/// A thread-safe collection of named metrics and finished span records.
///
/// Most code uses the process-wide instance via [`crate::global`]; tests
/// and embedded uses can carry private instances.
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry; its epoch (the zero point of span
    /// timestamps) is the creation instant.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The instant span timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.lock();
        let cell = inner
            .counters
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Returns (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.lock();
        let cell = inner
            .gauges
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge(Arc::clone(cell))
    }

    /// Returns (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.lock();
        let cell = inner
            .hists
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(HistCell::new()));
        Histogram(Arc::clone(cell))
    }

    pub(crate) fn register_static(&self, counter: &'static StaticCounter) {
        self.lock().statics.push(counter);
    }

    pub(crate) fn record_span(&self, record: SpanRecord) {
        let mut inner = self.lock();
        // Every finished span also lands in a per-span-name latency
        // histogram, so phase-level tail latency (p50/p95/p99) survives
        // aggregation without keeping every span record around.
        inner
            .hists
            .entry(format!("span.{}.us", record.name))
            .or_insert_with(|| Arc::new(HistCell::new()))
            .record(record.dur_us);
        inner.spans.push(record);
    }

    /// Total wall-clock seconds across all finished spans named `name`.
    pub fn span_seconds(&self, name: &str) -> f64 {
        self.lock()
            .spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us as f64 / 1e6)
            .sum()
    }

    /// Number of finished spans named `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.lock().spans.iter().filter(|s| s.name == name).count() as u64
    }

    /// Takes a consistent snapshot of every metric and span.
    ///
    /// Counters (static ones merged in), gauges and histograms come out
    /// sorted by name; spans sorted by `(path, events)`, ties kept in
    /// completion order. The event count breaks ties deterministically
    /// even when a parallel pool finishes spans in a different order
    /// between runs, so two identical runs snapshot into identical
    /// structures apart from the run-variant fields
    /// ([`crate::export::TIMING_KEYS`] and the recording thread id).
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut counters: BTreeMap<String, u64> = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        for s in &inner.statics {
            *counters.entry(s.name.to_owned()).or_insert(0) += s.get();
        }
        let gauges = inner
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let hists = inner
            .hists
            .iter()
            .map(|(k, v)| {
                let buckets: Vec<(u64, u64)> = v
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| {
                        let c = c.load(Ordering::Relaxed);
                        (c > 0).then_some((1u64 << i, c))
                    })
                    .collect();
                // The count is the bucket sum by construction — there is
                // no separate count cell to tear against the buckets
                // under concurrent writers.
                let count = buckets.iter().map(|(_, c)| c).sum();
                (
                    k.clone(),
                    HistSnapshot {
                        count,
                        sum: v.sum.load(Ordering::Relaxed),
                        max: v.max.load(Ordering::Relaxed),
                        buckets,
                    },
                )
            })
            .collect();
        let mut spans = inner.spans.clone();
        spans.sort_by(|a, b| a.path.cmp(&b.path).then(a.events.cmp(&b.events)));
        Snapshot {
            counters: counters.into_iter().collect(),
            gauges,
            hists,
            spans,
            process: Some(ProcessSample::capture(self.epoch)),
        }
    }

    /// Drops every metric value and span record (names and handles stay
    /// valid). Static counters are reset too.
    pub fn reset(&self) {
        let mut inner = self.lock();
        for v in inner.counters.values() {
            v.store(0, Ordering::Relaxed);
        }
        for s in &inner.statics {
            s.value.store(0, Ordering::Relaxed);
        }
        for v in inner.gauges.values() {
            v.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for h in inner.hists.values() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.sum.store(0, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
        }
        inner.spans.clear();
    }
}

/// Point-in-time copy of a [`Registry`], ready for export.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, latest)` sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` sorted by name.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Finished spans sorted by path (completion order within a path).
    pub spans: Vec<SpanRecord>,
    /// Process self-metrics sampled when the snapshot was taken
    /// (`None` only for snapshots loaded from `reap-obs/1` documents).
    pub process: Option<ProcessSample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        a.store(10);
        assert_eq!(b.get(), 10);
    }

    #[test]
    fn gauges_hold_latest_value() {
        let r = Registry::new();
        let g = r.gauge("util");
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        assert_eq!(r.gauge("util").get(), 0.75);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let r = Registry::new();
        let h = r.histogram("n");
        h.record(1);
        h.record(3);
        h.record(3);
        h.record(1000);
        h.record(0); // clamped into bucket 0
        let snap = r.snapshot();
        let (_, hist) = &snap.hists[0];
        assert_eq!(hist.count, 5);
        assert_eq!(hist.max, 1000);
        assert_eq!(hist.buckets, vec![(1, 2), (2, 2), (512, 1)]);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let r = Registry::new();
        let h = r.histogram("n");
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(7);
        let snap = r.snapshot();
        let (_, hist) = &snap.hists[0];
        assert_eq!(hist.sum, u64::MAX, "sum must pin at MAX, not wrap");
        assert_eq!(hist.count, 3);
        assert_eq!(hist.max, u64::MAX);
    }

    #[test]
    fn snapshot_sorts_by_name() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn reset_zeroes_values_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("c");
        c.add(5);
        r.histogram("h").record(9);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(r.snapshot().hists[0].1.count, 0);
        c.inc();
        assert_eq!(r.counter("c").get(), 1);
    }
}
