//! Minimal JSON emit and parse helpers.
//!
//! The workspace is offline-vendored and carries no serde; this module
//! provides exactly the JSON surface the exporters and the `reap obs
//! check` validator need: string escaping plus a small strict parser for
//! one value per input. Not a general-purpose JSON library — no
//! streaming, no borrowed output — but fully RFC 8259-shaped for the
//! documents the exporters produce.

use std::fmt;

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
///
/// # Examples
///
/// ```
/// assert_eq!(reap_obs::json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
/// ```
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token, or `null` when not finite
/// (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 can print integer-valued floats without a point;
        // that is still a valid JSON number, keep it.
        s
    } else {
        "null".to_owned()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Error from [`parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseJsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &'static str) -> Result<T, ParseJsonError> {
        Err(ParseJsonError {
            offset: self.pos,
            message,
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(message)
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Value, ParseJsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            // Surrogate pairs are not produced by our
                            // exporters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the original str.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        ParseJsonError {
                            offset: self.pos,
                            message: "invalid utf-8",
                        }
                    })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::Num(v)),
            _ => {
                self.pos = start;
                self.err("invalid number")
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseJsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseJsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses exactly one JSON value (trailing whitespace allowed).
///
/// # Errors
///
/// Returns [`ParseJsonError`] with the byte offset of the first problem.
///
/// # Examples
///
/// ```
/// use reap_obs::json::{parse, Value};
///
/// let v = parse(r#"{"type":"counter","value":3}"#).unwrap();
/// assert_eq!(v.get("type").and_then(Value::as_str), Some("counter"));
/// assert_eq!(v.get("value").and_then(Value::as_f64), Some(3.0));
/// ```
pub fn parse(input: &str) -> Result<Value, ParseJsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let original = "he said \"hi\\there\"\nnew\tline";
        let quoted = format!("\"{}\"", escape(original));
        let parsed = parse(&quoted).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":""}"#).unwrap();
        let a = match v.get("a") {
            Some(Value::Arr(items)) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some(""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
        let err = parse("[1, nope]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
    }

    #[test]
    fn control_characters_escape_to_u_sequences() {
        assert_eq!(escape("\u{1}"), "\\u0001");
        let quoted = format!("\"{}\"", escape("\u{1}"));
        assert_eq!(parse(&quoted).unwrap().as_str(), Some("\u{1}"));
    }
}
