//! Rate-limited progress reporting for long-running phases.
//!
//! A [`Progress`] is ticked from the hot loop (any thread); it keeps an
//! atomic completion count and prints a status line to stderr at most
//! once per refresh interval, so reporting never becomes the bottleneck
//! of the loop it observes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default minimum interval between printed status lines.
pub const DEFAULT_REFRESH_MS: u64 = 200;

/// A rate-limited progress reporter.
///
/// # Examples
///
/// ```
/// use reap_obs::Progress;
///
/// let progress = Progress::new("capture", Some(1_000_000));
/// progress.tick(250_000);
/// let line = progress.line();
/// assert!(line.starts_with("capture:"));
/// assert!(line.contains("250000/1000000"));
/// assert!(line.contains("25.0%"));
/// ```
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: Option<u64>,
    done: AtomicU64,
    start: Instant,
    last_print_us: AtomicU64,
    interval_us: u64,
}

impl Progress {
    /// Creates a reporter; `total` enables percentage and ETA output.
    pub fn new(label: impl Into<String>, total: Option<u64>) -> Self {
        Self {
            label: label.into(),
            total,
            done: AtomicU64::new(0),
            start: Instant::now(),
            last_print_us: AtomicU64::new(0),
            interval_us: DEFAULT_REFRESH_MS * 1000,
        }
    }

    /// Overrides the refresh interval (milliseconds).
    pub fn refresh_ms(mut self, ms: u64) -> Self {
        self.interval_us = ms * 1000;
        self
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Records `n` completed units; prints a status line to stderr if the
    /// refresh interval elapsed since the last print. Safe and cheap to
    /// call from many threads — losers of the print race skip printing.
    pub fn tick(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
        let elapsed_us = self.start.elapsed().as_micros() as u64;
        let last = self.last_print_us.load(Ordering::Relaxed);
        if elapsed_us.saturating_sub(last) < self.interval_us {
            return;
        }
        if self
            .last_print_us
            .compare_exchange(last, elapsed_us, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            eprint!("\r{}\x1b[K", self.line());
        }
    }

    /// Prints the final status line (with a newline) to stderr.
    pub fn finish(&self) {
        eprintln!("\r{}\x1b[K", self.line());
    }

    /// The current status line: label, completion, throughput and — when
    /// a total is known — percentage and ETA.
    pub fn line(&self) -> String {
        let done = self.done();
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        match self.total {
            Some(total) if total > 0 => {
                let pct = 100.0 * done as f64 / total as f64;
                let eta = if rate > 0.0 && done < total {
                    format!(", ETA {}", fmt_seconds((total - done) as f64 / rate))
                } else {
                    String::new()
                };
                format!(
                    "{}: {done}/{total} ({pct:.1}%) {}/s{eta}",
                    self.label,
                    fmt_rate(rate)
                )
            }
            _ => format!("{}: {done} {}/s", self.label, fmt_rate(rate)),
        }
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

fn fmt_seconds(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.0}h{:02.0}m", (s / 3600.0).floor(), (s % 3600.0) / 60.0)
    } else if s >= 60.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.0}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reports_fraction_and_rate() {
        let p = Progress::new("replay", Some(200));
        p.tick(0); // may print; harmless in tests
        p.tick(50);
        assert_eq!(p.done(), 50);
        let line = p.line();
        assert!(line.contains("50/200"), "{line}");
        assert!(line.contains("25.0%"), "{line}");
        assert!(line.contains("/s"), "{line}");
    }

    #[test]
    fn line_without_total_is_open_ended() {
        let p = Progress::new("montecarlo", None);
        p.tick(1234);
        let line = p.line();
        assert!(line.contains("1234"), "{line}");
        assert!(!line.contains('%'), "{line}");
    }

    #[test]
    fn completion_drops_the_eta() {
        let p = Progress::new("x", Some(10));
        p.tick(10);
        assert!(!p.line().contains("ETA"));
    }

    #[test]
    fn rate_formatting_scales() {
        assert_eq!(fmt_rate(12.0), "12");
        assert_eq!(fmt_rate(4_500.0), "4.5k");
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
        assert_eq!(fmt_seconds(5.0), "5s");
        assert_eq!(fmt_seconds(125.0), "2m05s");
        assert_eq!(fmt_seconds(3725.0), "1h02m");
    }

    #[test]
    fn ticks_from_many_threads_accumulate() {
        let p = Progress::new("mt", Some(4000));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        p.tick(1);
                    }
                });
            }
        });
        assert_eq!(p.done(), 4000);
    }
}
