//! Human-readable run reports and run-to-run diff verdicts.
//!
//! [`render_report`] turns one [`Snapshot`] into the phase/pool/store
//! tables behind `reap obs report`; [`gate`] applies relative-threshold
//! regression checks to a [`SnapshotDiff`] and [`render_diff`] renders
//! the comparison plus the verdicts behind `reap obs diff`.
//!
//! Threshold semantics (documented in DESIGN.md §11): a span phase
//! regresses when its total wall seconds grow by more than
//! `threshold` relative to the baseline *and* the baseline total is at
//! least `min_seconds` (sub-centisecond phases are noise); an explicitly
//! gated metric regresses when it moves in its bad direction by more
//! than `threshold`.

use crate::export::is_run_variant_metric;
use crate::registry::{HistSnapshot, Snapshot};
use crate::snapshot::{span_aggregates, ProcessSample, SnapshotDiff};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Options of [`render_report`].
#[derive(Debug, Clone, Copy)]
pub struct ReportOptions {
    /// Include wall-clock-derived numbers. `false` is the `--no-timings`
    /// stable mode: the report of a seeded run is byte-identical
    /// regardless of `-j` or machine speed.
    pub timings: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self { timings: true }
    }
}

/// Formats a duration in microseconds with a unit that keeps three-ish
/// significant digits.
fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.1}ms", us / 1e3)
    } else {
        format!("{us:.0}us")
    }
}

fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= (1 << 20) as f64 {
        format!("{:.1} MiB", b / (1 << 20) as f64)
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

fn fmt_signed_pct(rel: f64) -> String {
    format!("{:+.1}%", rel * 100.0)
}

/// The exact `q`-quantile of a sorted duration list (fallback for
/// `reap-obs/1` documents that carry no `span.*.us` histograms).
fn exact_quantile(sorted_us: &[u64], q: f64) -> Option<f64> {
    if sorted_us.is_empty() {
        return None;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    Some(sorted_us[rank - 1] as f64)
}

/// Per-span-name p50/p95/p99 in microseconds: from the automatic
/// `span.{name}.us` histogram when present, otherwise exactly from the
/// span records.
fn span_quantiles(snapshot: &Snapshot, name: &str) -> Option<[f64; 3]> {
    let hist_name = format!("span.{name}.us");
    if let Some((_, h)) = snapshot.hists.iter().find(|(n, _)| *n == hist_name) {
        return Some([h.quantile(0.50)?, h.quantile(0.95)?, h.quantile(0.99)?]);
    }
    let mut durs: Vec<u64> = snapshot
        .spans
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.dur_us)
        .collect();
    durs.sort_unstable();
    Some([
        exact_quantile(&durs, 0.50)?,
        exact_quantile(&durs, 0.95)?,
        exact_quantile(&durs, 0.99)?,
    ])
}

/// One pool's roll-up, reconstructed from its per-worker metrics.
#[derive(Debug, Default)]
struct PoolAgg {
    workers: u64,
    jobs: u64,
    busy_s: f64,
    idle_s: f64,
    utils: Vec<f64>,
}

/// Detects pools from `{pool}.worker.{w}.jobs` counters and rolls up
/// their per-worker gauges.
fn pool_aggregates(snapshot: &Snapshot) -> BTreeMap<String, PoolAgg> {
    let mut pools: BTreeMap<String, PoolAgg> = BTreeMap::new();
    let gauge = |name: &str| {
        snapshot
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    };
    for (name, jobs) in &snapshot.counters {
        let Some((pool, rest)) = name.split_once(".worker.") else {
            continue;
        };
        let Some(worker) = rest.strip_suffix(".jobs") else {
            continue;
        };
        let agg = pools.entry(pool.to_owned()).or_default();
        agg.workers += 1;
        agg.jobs += jobs;
        let prefix = format!("{pool}.worker.{worker}");
        agg.busy_s += gauge(&format!("{prefix}.busy_s")).unwrap_or(0.0);
        agg.idle_s += gauge(&format!("{prefix}.idle_s")).unwrap_or(0.0);
        if let Some(u) = gauge(&format!("{prefix}.utilization")) {
            agg.utils.push(u);
        }
    }
    pools
}

/// Renders the phase/pool/capture-store/metrics report of one snapshot.
pub fn render_report(snapshot: &Snapshot, options: &ReportOptions) -> String {
    let mut out = String::new();
    let spans = span_aggregates(snapshot);
    if !spans.is_empty() {
        if options.timings {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>10} {:>9} {:>9} {:>9} {:>12}",
                "phase", "count", "total s", "p50", "p95", "p99", "events"
            );
            for (name, agg) in &spans {
                let q = span_quantiles(snapshot, name).unwrap_or([0.0; 3]);
                let _ = writeln!(
                    out,
                    "{name:<28} {:>7} {:>10.3} {:>9} {:>9} {:>9} {:>12}",
                    agg.count,
                    agg.total_s,
                    fmt_us(q[0]),
                    fmt_us(q[1]),
                    fmt_us(q[2]),
                    agg.events,
                );
            }
        } else {
            let _ = writeln!(out, "{:<28} {:>7} {:>12}", "phase", "count", "events");
            for (name, agg) in &spans {
                let _ = writeln!(out, "{name:<28} {:>7} {:>12}", agg.count, agg.events);
            }
        }
        let _ = writeln!(out);
    }

    let pools = pool_aggregates(snapshot);
    if !pools.is_empty() {
        if options.timings {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>7} {:>9} {:>9} {:>6} {:>11}",
                "pool", "workers", "jobs", "busy s", "idle s", "util", "min-max"
            );
            for (name, agg) in &pools {
                let wall = agg.busy_s + agg.idle_s;
                let util = if wall > 0.0 { agg.busy_s / wall } else { 0.0 };
                let (lo, hi) = agg
                    .utils
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &u| {
                        (lo.min(u), hi.max(u))
                    });
                let range = if agg.utils.is_empty() {
                    "-".to_owned()
                } else {
                    format!("{lo:.2}-{hi:.2}")
                };
                let _ = writeln!(
                    out,
                    "{name:<28} {:>7} {:>7} {:>9.3} {:>9.3} {util:>6.2} {range:>11}",
                    agg.workers, agg.jobs, agg.busy_s, agg.idle_s,
                );
            }
        } else {
            // Worker counts vary with `-j`; only the job totals are
            // stable.
            let _ = writeln!(out, "{:<28} {:>7}", "pool", "jobs");
            for (name, agg) in &pools {
                let _ = writeln!(out, "{name:<28} {:>7}", agg.jobs);
            }
        }
        let _ = writeln!(out);
    }

    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    };
    if snapshot
        .counters
        .iter()
        .any(|(n, _)| n.starts_with("capture_store."))
    {
        let c = |suffix: &str| counter(&format!("capture_store.{suffix}")).unwrap_or(0);
        let _ = writeln!(
            out,
            "capture store: hits {}   misses {}   writes {}   invalid {}",
            c("hit"),
            c("miss"),
            c("write"),
            c("invalid"),
        );
        let mut line = format!(
            "               read {}   written {}",
            fmt_bytes(c("bytes_read")),
            fmt_bytes(c("bytes_written")),
        );
        if let Some((_, ratio)) = snapshot
            .gauges
            .iter()
            .find(|(n, _)| n == "capture_store.compression_ratio")
        {
            let _ = write!(line, "   compression {ratio:.2}x");
        }
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out);
    }

    if snapshot
        .counters
        .iter()
        .any(|(n, _)| n.starts_with("serve."))
    {
        let c = |suffix: &str| counter(&format!("serve.{suffix}")).unwrap_or(0);
        let _ = writeln!(
            out,
            "serve: jobs accepted {}   completed {}   interrupted {}   cancelled {}   busy {}",
            c("jobs.accepted"),
            c("jobs.completed"),
            c("jobs.interrupted"),
            c("jobs.cancelled"),
            c("jobs.busy"),
        );
        let _ = writeln!(
            out,
            "       rows computed {}   resumed {}   cache hit {} miss {} coalesced {} evict {}",
            c("rows.computed"),
            c("rows.resumed"),
            c("cache.hit"),
            c("cache.miss"),
            c("cache.coalesced"),
            c("cache.evict"),
        );
        let _ = writeln!(
            out,
            "       conns accepted {}   refused {}   stalled {}   dropped {}   disconnected {}",
            c("conn.accepted"),
            c("conn.refused"),
            c("conn.stalled"),
            c("conn.dropped"),
            c("conn.disconnected"),
        );
        let _ = writeln!(out);
    }

    let other_counters: Vec<_> = snapshot
        .counters
        .iter()
        .filter(|(n, _)| {
            !n.contains(".worker.") && !n.starts_with("capture_store.") && !n.starts_with("serve.")
        })
        .collect();
    if !other_counters.is_empty() {
        let _ = writeln!(out, "{:<40} {:>12}", "counter", "value");
        for (name, value) in other_counters {
            let _ = writeln!(out, "{name:<40} {value:>12}");
        }
        let _ = writeln!(out);
    }

    let other_gauges: Vec<_> = snapshot
        .gauges
        .iter()
        .filter(|(n, _)| {
            !n.contains(".worker.")
                && n != "capture_store.compression_ratio"
                && (options.timings || !is_run_variant_metric(n))
        })
        .collect();
    if !other_gauges.is_empty() {
        let _ = writeln!(out, "{:<40} {:>12}", "gauge", "value");
        for (name, value) in other_gauges {
            let _ = writeln!(out, "{name:<40} {value:>12.4}");
        }
        let _ = writeln!(out);
    }

    let data_hists: Vec<_> = snapshot
        .hists
        .iter()
        .filter(|(n, _)| !is_run_variant_metric(n))
        .collect();
    if !data_hists.is_empty() {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "mean", "p50", "p95", "p99", "max"
        );
        for (name, h) in data_hists {
            let q = |q: f64| {
                h.quantile(q)
                    .map_or_else(|| "-".to_owned(), |v| format!("{v:.1}"))
            };
            let _ = writeln!(
                out,
                "{name:<28} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
                h.count,
                h.mean()
                    .map_or_else(|| "-".to_owned(), |m| format!("{m:.2}")),
                q(0.50),
                q(0.95),
                q(0.99),
                h.max,
            );
        }
        let _ = writeln!(out);
    }

    if options.timings {
        if let Some(p) = &snapshot.process {
            let _ = writeln!(out, "{}", render_process(p));
        }
    }
    out
}

fn render_process(p: &ProcessSample) -> String {
    let mut line = format!("process: wall {:.2} s", p.wall_s);
    if let Some(cpu) = p.cpu_s {
        let _ = write!(line, "   cpu {cpu:.2} s");
        if let Some(ratio) = p.cpu_per_wall() {
            let _ = write!(line, " ({ratio:.1}x)");
        }
    }
    if let Some(rss) = p.peak_rss_bytes {
        let _ = write!(line, "   peak RSS {}", fmt_bytes(rss));
    }
    line
}

/// A metric explicitly gated by `reap obs diff --metric`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateMetric {
    /// Counter or gauge name.
    pub name: String,
    /// `true` (`:up`, the default) means a *drop* beyond the threshold
    /// regresses; `false` (`:down`) means a *rise* does.
    pub higher_is_better: bool,
}

/// Thresholds of the diff gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Maximum tolerated relative change (0.10 = 10%).
    pub threshold: f64,
    /// Span phases whose baseline total is below this many seconds are
    /// not gated (too small to measure reliably).
    pub min_seconds: f64,
    /// Explicitly gated counters/gauges.
    pub metrics: Vec<GateMetric>,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            threshold: 0.10,
            min_seconds: 0.01,
            metrics: Vec::new(),
        }
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// What regressed, e.g. `span ecc_sweep` or `metric speedup`.
    pub what: String,
    /// Baseline value.
    pub a: f64,
    /// New value.
    pub b: f64,
    /// Signed relative change.
    pub rel: f64,
}

/// Applies the gate: every span phase is checked against the wall-time
/// threshold, and each [`GateConfig::metrics`] entry against its
/// direction. A gated metric missing from either snapshot is itself a
/// regression (a silently vanished baseline must fail the gate).
pub fn gate(diff: &SnapshotDiff, config: &GateConfig) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for span in &diff.spans {
        if span.a.total_s < config.min_seconds {
            continue;
        }
        if let Some(rel) = span.rel() {
            if rel > config.threshold {
                regressions.push(Regression {
                    what: format!("span {}", span.name),
                    a: span.a.total_s,
                    b: span.b.total_s,
                    rel,
                });
            }
        }
    }
    for metric in &config.metrics {
        let found = diff
            .gauges
            .iter()
            .chain(&diff.counters)
            .find(|d| d.name == metric.name);
        let Some(delta) = found else {
            regressions.push(Regression {
                what: format!("metric {} (missing from one side)", metric.name),
                a: f64::NAN,
                b: f64::NAN,
                rel: 0.0,
            });
            continue;
        };
        let Some(rel) = delta.rel() else { continue };
        let bad = if metric.higher_is_better {
            -rel > config.threshold
        } else {
            rel > config.threshold
        };
        if bad {
            regressions.push(Regression {
                what: format!("metric {}", metric.name),
                a: delta.a,
                b: delta.b,
                rel,
            });
        }
    }
    regressions
}

fn hist_line(name: &str, a: &HistSnapshot, b: &HistSnapshot) -> Option<String> {
    if a == b {
        return None;
    }
    let mean = |h: &HistSnapshot| {
        h.mean()
            .map_or_else(|| "-".to_owned(), |m| format!("{m:.2}"))
    };
    Some(format!(
        "{name}: count {} -> {}, mean {} -> {}, max {} -> {}",
        a.count,
        b.count,
        mean(a),
        mean(b),
        a.max,
        b.max,
    ))
}

/// Renders the comparison and the gate verdicts as the `reap obs diff`
/// output. `regressions` is the result of [`gate`] on the same diff.
pub fn render_diff(diff: &SnapshotDiff, config: &GateConfig, regressions: &[Regression]) -> String {
    let mut out = String::new();
    if !diff.spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<28} {:>11} {:>11} {:>9}",
            "phase", "a total s", "b total s", "change"
        );
        for span in &diff.spans {
            let change = span.rel().map_or_else(|| "-".to_owned(), fmt_signed_pct);
            let _ = writeln!(
                out,
                "{:<28} {:>11.3} {:>11.3} {:>9}",
                span.name, span.a.total_s, span.b.total_s, change
            );
        }
        let _ = writeln!(out);
    }

    let numeric_changes: Vec<String> = diff
        .counters
        .iter()
        .chain(&diff.gauges)
        .filter(|d| d.a != d.b)
        .map(|d| {
            let rel = d
                .rel()
                .map_or_else(String::new, |r| format!(" ({})", fmt_signed_pct(r)));
            format!("{}: {} -> {}{rel}", d.name, d.a, d.b)
        })
        .collect();
    let shared = diff.counters.len() + diff.gauges.len();
    if numeric_changes.is_empty() {
        let _ = writeln!(out, "counters/gauges: {shared} shared, none changed");
    } else {
        let _ = writeln!(
            out,
            "counters/gauges: {} of {shared} shared changed",
            numeric_changes.len()
        );
        for line in &numeric_changes {
            let _ = writeln!(out, "  {line}");
        }
    }

    let hist_changes: Vec<String> = diff
        .hists
        .iter()
        .filter(|h| !is_run_variant_metric(&h.name))
        .filter_map(|h| hist_line(&h.name, &h.a, &h.b))
        .collect();
    if !hist_changes.is_empty() {
        let _ = writeln!(out, "histograms changed:");
        for line in &hist_changes {
            let _ = writeln!(out, "  {line}");
        }
    }

    for (label, names) in [("added", &diff.added), ("removed", &diff.removed)] {
        if !names.is_empty() {
            let _ = writeln!(out, "{label}: {}", names.join(", "));
        }
    }

    if let (Some(a), Some(b)) = (&diff.process_a, &diff.process_b) {
        let _ = writeln!(out, "process a: {}", render_process(a));
        let _ = writeln!(out, "process b: {}", render_process(b));
    }
    let _ = writeln!(out);

    for r in regressions {
        let _ = writeln!(
            out,
            "REGRESSION {}: {} -> {} ({} beyond {})",
            r.what,
            r.a,
            r.b,
            fmt_signed_pct(r.rel),
            fmt_signed_pct(config.threshold),
        );
    }
    let _ = writeln!(
        out,
        "verdict: {} (threshold {:.0}%, span floor {:.0} ms)",
        if regressions.is_empty() {
            "ok".to_owned()
        } else {
            format!("{} regression(s)", regressions.len())
        },
        config.threshold * 100.0,
        config.min_seconds * 1e3,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::SpanRecord;

    fn span(name: &str, dur_us: u64) -> SpanRecord {
        SpanRecord {
            path: name.to_owned(),
            name: name.to_owned(),
            start_us: 0,
            dur_us,
            events: 10,
            thread: 0,
        }
    }

    fn snapshot_with_span_seconds(name: &str, seconds: f64) -> Snapshot {
        Snapshot {
            spans: vec![span(name, (seconds * 1e6) as u64)],
            ..Snapshot::default()
        }
    }

    #[test]
    fn report_shows_phases_pools_and_quantiles() {
        let r = Registry::new();
        for _ in 0..5 {
            drop(r.span("replay"));
        }
        r.counter("ecc_sweep.worker.0.jobs").add(3);
        r.counter("ecc_sweep.worker.1.jobs").add(2);
        r.gauge("ecc_sweep.worker.0.busy_s").set(1.0);
        r.gauge("ecc_sweep.worker.0.idle_s").set(0.25);
        r.gauge("ecc_sweep.worker.0.utilization").set(0.8);
        r.gauge("ecc_sweep.worker.1.busy_s").set(0.5);
        r.gauge("ecc_sweep.worker.1.idle_s").set(0.0);
        r.gauge("ecc_sweep.worker.1.utilization").set(1.0);
        r.counter("capture_store.hit").add(21);
        r.counter("capture_store.bytes_read").add(2 << 20);
        r.gauge("capture_store.compression_ratio").set(5.29);

        let text = render_report(&r.snapshot(), &ReportOptions::default());
        assert!(text.contains("replay"), "{text}");
        assert!(text.contains("p95"), "{text}");
        assert!(text.contains("ecc_sweep"), "{text}");
        assert!(text.contains("0.80-1.00"), "{text}");
        assert!(text.contains("hits 21"), "{text}");
        assert!(text.contains("compression 5.29x"), "{text}");
        assert!(text.contains("process: wall"), "{text}");
    }

    #[test]
    fn report_summarizes_serve_counters_outside_the_generic_table() {
        let r = Registry::new();
        r.counter("serve.jobs.accepted").add(5);
        r.counter("serve.jobs.completed").add(4);
        r.counter("serve.jobs.busy").add(2);
        r.counter("serve.rows.computed").add(63);
        r.counter("serve.rows.resumed").add(21);
        r.counter("serve.cache.hit").add(40);
        r.counter("serve.cache.coalesced").add(3);
        r.counter("serve.conn.refused").add(1);
        r.counter("serve.conn.disconnected").add(2);
        let text = render_report(&r.snapshot(), &ReportOptions::default());
        assert!(text.contains("serve: jobs accepted 5"), "{text}");
        assert!(text.contains("completed 4"), "{text}");
        assert!(text.contains("busy 2"), "{text}");
        assert!(text.contains("rows computed 63   resumed 21"), "{text}");
        assert!(text.contains("cache hit 40"), "{text}");
        assert!(text.contains("refused 1"), "{text}");
        // Summarized counters stay out of the generic counter table.
        assert!(!text.contains("serve.jobs.accepted"), "{text}");
    }

    #[test]
    fn no_timings_report_drops_run_variant_content() {
        let r = Registry::new();
        drop(r.span("replay"));
        r.counter("pool.worker.0.jobs").add(1);
        r.gauge("pool.worker.0.busy_s").set(1.0);
        let text = render_report(&r.snapshot(), &ReportOptions { timings: false });
        assert!(!text.contains("total s"), "{text}");
        assert!(!text.contains("busy"), "{text}");
        assert!(!text.contains("process:"), "{text}");
        assert!(text.contains("replay"), "{text}");
        assert!(text.contains("jobs"), "{text}");
    }

    #[test]
    fn gate_flags_slowed_spans_and_honors_the_floor() {
        let a = snapshot_with_span_seconds("sweep", 1.0);
        let slow = snapshot_with_span_seconds("sweep", 1.5);
        let config = GateConfig::default();
        let regressions = gate(&a.diff(&slow), &config);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].what, "span sweep");
        assert!((regressions[0].rel - 0.5).abs() < 1e-9);

        // Within threshold: fine.
        let ok = snapshot_with_span_seconds("sweep", 1.05);
        assert!(gate(&a.diff(&ok), &config).is_empty());

        // Tiny baselines are never gated.
        let tiny_a = snapshot_with_span_seconds("sweep", 0.001);
        let tiny_b = snapshot_with_span_seconds("sweep", 0.009);
        assert!(gate(&tiny_a.diff(&tiny_b), &config).is_empty());
    }

    #[test]
    fn gate_checks_explicit_metrics_directionally() {
        let mk = |v: f64| Snapshot {
            gauges: vec![("speedup".to_owned(), v)],
            ..Snapshot::default()
        };
        let config = GateConfig {
            metrics: vec![GateMetric {
                name: "speedup".to_owned(),
                higher_is_better: true,
            }],
            ..GateConfig::default()
        };
        // A 50% drop in a higher-is-better metric regresses.
        assert_eq!(gate(&mk(4.0).diff(&mk(2.0)), &config).len(), 1);
        // A rise does not.
        assert!(gate(&mk(4.0).diff(&mk(6.0)), &config).is_empty());
        // Lower-is-better flips the direction.
        let down = GateConfig {
            metrics: vec![GateMetric {
                name: "speedup".to_owned(),
                higher_is_better: false,
            }],
            ..GateConfig::default()
        };
        assert_eq!(gate(&mk(2.0).diff(&mk(4.0)), &down).len(), 1);
        // A missing gated metric is itself a regression.
        let empty = Snapshot::default();
        assert_eq!(gate(&mk(2.0).diff(&empty), &config).len(), 1);
    }

    #[test]
    fn diff_rendering_names_regressions_and_verdict() {
        let a = snapshot_with_span_seconds("sweep", 1.0);
        let b = snapshot_with_span_seconds("sweep", 2.0);
        let diff = a.diff(&b);
        let config = GateConfig::default();
        let regressions = gate(&diff, &config);
        let text = render_diff(&diff, &config, &regressions);
        assert!(text.contains("REGRESSION span sweep"), "{text}");
        assert!(text.contains("+100.0%"), "{text}");
        assert!(text.contains("verdict: 1 regression(s)"), "{text}");

        let clean = render_diff(&diff, &config, &[]);
        assert!(clean.contains("verdict: ok"), "{clean}");
    }
}
