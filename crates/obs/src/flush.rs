//! Periodic atomic-write flusher for live metrics.
//!
//! A [`Flusher`] snapshots the [global](crate::global) registry on a
//! fixed interval and rewrites a JSONL metrics file atomically (write
//! to `{path}.tmp`, then rename), so external observers — a watching
//! shell, a CI poller, later `reap serve` — always read a complete,
//! schema-valid document while a long campaign is still running.
//!
//! Dropping the flusher stops the background thread and performs one
//! final flush, so the file is current even when the interval never
//! elapsed.

use crate::export::write_jsonl;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Writes `snapshot` of the global registry to `path` atomically:
/// the document lands in `{path}.tmp` first and is renamed into place,
/// so readers never observe a torn file.
pub fn write_metrics_atomic(path: &Path) -> io::Result<()> {
    let tmp = {
        let mut p = path.as_os_str().to_owned();
        p.push(".tmp");
        PathBuf::from(p)
    };
    let mut buf = Vec::new();
    write_jsonl(&crate::global().snapshot(), &mut buf)?;
    std::fs::write(&tmp, &buf)?;
    std::fs::rename(&tmp, path)
}

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Background thread that keeps a metrics file current; see the module
/// docs. Constructed by [`Flusher::start`], stopped on drop.
pub struct Flusher {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Flusher {
    /// Spawns the flusher thread writing the global registry's snapshot
    /// to `path` every `interval`. Flush errors (e.g. the directory
    /// vanished) are swallowed: live metrics are best-effort and must
    /// never kill a campaign.
    pub fn start(path: PathBuf, interval: Duration) -> Self {
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("obs-flush".to_owned())
            .spawn(move || {
                let mut stopped = thread_shared.stop.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    let (guard, timeout) = thread_shared
                        .wake
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped {
                        let _ = write_metrics_atomic(&path);
                        return;
                    }
                    if timeout.timed_out() {
                        let _ = write_metrics_atomic(&path);
                    }
                }
            })
            .expect("spawn obs-flush thread");
        Self {
            shared,
            handle: Some(handle),
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        *self.shared.stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::check_jsonl;

    #[test]
    fn flusher_keeps_a_valid_snapshot_file_current() {
        let dir = std::env::temp_dir().join(format!("reap-obs-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.jsonl");

        crate::set_enabled(true);
        crate::global().reset();
        crate::counter("flush.test").add(7);
        {
            let _flusher = Flusher::start(path.clone(), Duration::from_millis(10));
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    if text.contains("flush.test") {
                        break;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "flusher never wrote");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // The mid-run file is a complete, valid document.
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = check_jsonl(&text).unwrap();
        assert!(summary.counters >= 1);
        crate::set_enabled(false);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
