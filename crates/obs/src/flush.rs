//! Periodic atomic-write flusher for live metrics.
//!
//! A [`Flusher`] snapshots the [global](crate::global) registry on a
//! fixed interval and rewrites a JSONL metrics file atomically (write
//! to a process-unique temporary, fsync, then rename), so external
//! observers — a watching shell, a CI poller, a `reap serve` metrics
//! client — always read a complete, schema-valid document while a long
//! campaign is still running.
//!
//! Shutdown semantics: [`Flusher::finish`] stops the background thread
//! and performs exactly one final flush on the caller's thread,
//! propagating the error; merely dropping the flusher does the same
//! best-effort (errors swallowed, for early-return paths). The final
//! write happens once either way — callers must not write the file
//! again themselves.

use crate::export::write_jsonl;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A temporary older than this is a leftover from a killed writer, not
/// a concurrent one — flushes are subsecond.
const STALE_TMP_AGE: Duration = Duration::from_secs(60);

/// Writes a snapshot of the global registry to `path` atomically: the
/// document lands in a process-unique `{path}.{pid}.{seq}.tmp` first,
/// is fsynced, and is renamed into place — so readers never observe a
/// torn file, a crash mid-write never corrupts the target, and two
/// processes flushing the same path never rename each other's partial
/// temporaries (the old fixed `.tmp` suffix did exactly that).
///
/// Leftover temporaries from a previous killed writer are swept on the
/// way (see [`STALE_TMP_AGE`]).
pub fn write_metrics_atomic(path: &Path) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    remove_stale_tmps(path, STALE_TMP_AGE);
    let tmp = {
        let mut p = path.as_os_str().to_owned();
        p.push(format!(
            ".{}.{}.tmp",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        PathBuf::from(p)
    };
    let mut buf = Vec::new();
    write_jsonl(&crate::global().snapshot(), &mut buf)?;
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&buf)?;
        // A rename is only atomic for data that reached the disk; a
        // crash between rename and writeback would otherwise replace a
        // good document with an empty or partial one.
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Removes temporaries of `path` left behind by a killed writer: any
/// sibling named `{file_name}.….tmp` (including the legacy fixed
/// `{file_name}.tmp`) whose modification time is at least `older_than`
/// ago. Best-effort — sweep failures never fail a flush.
fn remove_stale_tmps(path: &Path, older_than: Duration) {
    let (Some(dir), Some(name)) = (path.parent(), path.file_name()) else {
        return;
    };
    let prefix = {
        let mut p = name.to_owned();
        p.push(".");
        p
    };
    let Ok(entries) = std::fs::read_dir(if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    }) else {
        return;
    };
    for entry in entries.flatten() {
        let file_name = entry.file_name();
        let Some(text) = file_name.to_str() else {
            continue;
        };
        let Some(prefix_str) = prefix.to_str() else {
            continue;
        };
        if !text.starts_with(prefix_str) || !text.ends_with(".tmp") {
            continue;
        }
        let stale = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
            .is_some_and(|age| age >= older_than);
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Background thread that keeps a metrics file current; see the module
/// docs. Constructed by [`Flusher::start`]; end it with
/// [`Flusher::finish`] (or drop it for the best-effort equivalent).
pub struct Flusher {
    shared: Arc<Shared>,
    path: PathBuf,
    handle: Option<JoinHandle<()>>,
}

impl Flusher {
    /// Spawns the flusher thread writing the global registry's snapshot
    /// to `path` every `interval`. Interval flush errors (e.g. the
    /// directory vanished) are swallowed: live metrics are best-effort
    /// and must never kill a campaign.
    pub fn start(path: PathBuf, interval: Duration) -> Self {
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_path = path.clone();
        let handle = std::thread::Builder::new()
            .name("obs-flush".to_owned())
            .spawn(move || {
                let mut stopped = thread_shared.stop.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    // Check before parking, not just after: a stop
                    // issued between spawn and the first wait has
                    // already had its notify, and re-checking only
                    // post-wait would sleep out the whole interval.
                    if *stopped {
                        return;
                    }
                    let (guard, timeout) = thread_shared
                        .wake
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped {
                        // The final flush belongs to the stopping thread
                        // (finish/drop), where its error can surface —
                        // writing here too was a double final write.
                        return;
                    }
                    if timeout.timed_out() {
                        let _ = write_metrics_atomic(&thread_path);
                    }
                }
            })
            .expect("spawn obs-flush thread");
        Self {
            shared,
            path,
            handle: Some(handle),
        }
    }

    /// Stops the background thread; idempotent.
    fn stop(&mut self) -> bool {
        let Some(handle) = self.handle.take() else {
            return false;
        };
        *self.shared.stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.wake.notify_all();
        let _ = handle.join();
        true
    }

    /// Stops the thread and performs the one final flush, so the file
    /// is current even when the interval never elapsed.
    ///
    /// # Errors
    ///
    /// Propagates the final write's failure — unlike an interval flush,
    /// a lost *final* write means the run's results silently vanished.
    pub fn finish(mut self) -> io::Result<()> {
        self.stop();
        write_metrics_atomic(&self.path)
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        if self.stop() {
            let _ = write_metrics_atomic(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::check_jsonl;

    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicUsize;
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "reap-obs-flush-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn flusher_keeps_a_valid_snapshot_file_current() {
        let dir = scratch("live");
        let path = dir.join("live.jsonl");

        crate::set_enabled(true);
        crate::counter("flush.test").add(7);
        {
            let _flusher = Flusher::start(path.clone(), Duration::from_millis(10));
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    if text.contains("flush.test") {
                        break;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "flusher never wrote");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // The mid-run file is a complete, valid document.
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = check_jsonl(&text).unwrap();
        assert!(summary.counters >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_flushes_once_and_drop_after_finish_does_not_rewrite() {
        let dir = scratch("finish");
        let path = dir.join("final.jsonl");
        crate::set_enabled(true);
        crate::counter("flush.finish.test").add(1);

        // A long interval that never elapses: only finish() writes.
        let flusher = Flusher::start(path.clone(), Duration::from_secs(3600));
        flusher.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("flush.finish.test"), "{text}");
        check_jsonl(&text).unwrap();

        // No temporary survives a clean finish.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression: `stop()` could race the thread's first park. The
    /// flag was only examined *after* `wait_timeout`, so a `finish()`
    /// issued before the thread first waited had already spent its
    /// notification and left the thread sleeping out the entire
    /// interval (an hour, in the test above) before the join returned.
    /// Spawning and finishing in a tight loop gives the window many
    /// chances to reopen; with the pre-park check the join can never
    /// outlive a write.
    #[test]
    fn finish_never_sleeps_out_the_interval() {
        let dir = scratch("race");
        crate::set_enabled(true);
        let start = std::time::Instant::now();
        for i in 0..64 {
            let flusher =
                Flusher::start(dir.join(format!("r{i}.jsonl")), Duration::from_secs(3600));
            flusher.finish().unwrap();
        }
        assert!(
            start.elapsed() < Duration::from_secs(600),
            "finish() slept against a parked flusher"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A writer killed mid-flush leaves a torn temporary behind. The
    /// next flush must neither rename it into place nor trip over it —
    /// the target stays a valid document and the leftover is swept once
    /// stale. `reap_fault::chop_tail` plays the kill.
    #[test]
    fn killed_mid_flush_leftovers_never_corrupt_the_target() {
        let dir = scratch("killed");
        let path = dir.join("metrics.jsonl");
        crate::set_enabled(true);
        crate::counter("flush.kill.test").add(3);

        // A completed flush, then a simulated kill mid-write: copy the
        // good document into a writer temporary and chop its tail, as a
        // partial write would have left it.
        write_metrics_atomic(&path).unwrap();
        let torn = dir.join("metrics.jsonl.99999.0.tmp");
        std::fs::copy(&path, &torn).unwrap();
        reap_fault::chop_tail(&torn, 17).unwrap();
        let legacy = dir.join("metrics.jsonl.tmp");
        std::fs::copy(&path, &legacy).unwrap();
        reap_fault::truncate_file(&legacy, 5).unwrap();

        // The next flush ignores the leftovers and lands atomically.
        write_metrics_atomic(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        check_jsonl(&text).expect("target must stay valid");
        assert!(torn.exists(), "a fresh tmp is not stale yet");

        // Once stale, the sweep reclaims both naming schemes.
        remove_stale_tmps(&path, Duration::ZERO);
        assert!(!torn.exists(), "stale unique tmp must be swept");
        assert!(!legacy.exists(), "stale legacy tmp must be swept");
        assert!(path.exists(), "the target itself is never swept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The pinned collision: with a fixed `.tmp` name, two concurrent
    /// writers interleaved into one temporary and renamed a torn file
    /// into place. Unique names keep every observable state valid.
    #[test]
    fn concurrent_flushes_of_one_path_never_tear_the_target() {
        let dir = scratch("race");
        let path = dir.join("shared.jsonl");
        crate::set_enabled(true);
        crate::counter("flush.race.test").add(1);

        let threads: Vec<_> = (0..4)
            .map(|_| {
                let path = path.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        write_metrics_atomic(&path).unwrap();
                    }
                })
            })
            .collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while threads.iter().any(|t| !t.is_finished()) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                check_jsonl(&text).expect("every observed state must be valid");
            }
            assert!(std::time::Instant::now() < deadline, "writers hung");
        }
        for t in threads {
            t.join().unwrap();
        }
        check_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
