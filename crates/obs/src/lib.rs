//! # reap-obs — observability substrate for the REAP-cache stack
//!
//! Zero-dependency (the build environment has no registry access)
//! structured telemetry: a thread-safe [`Registry`] of named counters,
//! gauges and log-bucketed histograms; hierarchical phase [`span`]s that
//! record wall-clock, event counts and derived rates; exporters for
//! human-readable tables, schema-stable JSON-lines (`reap-obs/2`) and
//! Chrome `trace_event` JSON ([`export`]); snapshot comparison and run
//! reports ([`snapshot`], [`report`]); a periodic atomic-write
//! live-metrics [`flush`]er; and a rate-limited [`Progress`] reporter
//! for long sweeps and Monte-Carlo campaigns.
//!
//! ## Disabled-by-default fast path
//!
//! Telemetry is off until [`set_enabled`]`(true)`. While off, every
//! instrumentation point in the stack costs one relaxed atomic load and a
//! predictable branch: [`span`] returns an inert guard, and
//! [`StaticCounter::add`] returns immediately. Instrumented hot loops are
//! therefore free to keep their instrumentation unconditionally.
//!
//! ## Metric naming convention
//!
//! Dotted lowercase paths, subsystem first: `ecc.decode`,
//! `cache.l2.reads`, `sim.capture.exposure_events`,
//! `run_parallel.worker.0.busy_s`, `mc.trials`. Worker- or
//! point-indexed metrics put the index after the family name.
//!
//! ## Two registries, one pattern
//!
//! Production code records into the process-wide registry ([`global`])
//! through the gated free functions ([`span`], [`counter`], [`gauge`],
//! [`histogram`]); tests construct private [`Registry`] instances and
//! assert on their snapshots without touching global state.
//!
//! # Examples
//!
//! ```
//! use reap_obs::Registry;
//!
//! let registry = Registry::new();
//! {
//!     let mut capture = registry.span("capture");
//!     capture.add_events(400_000);
//!     registry.counter("sim.capture.exposure_events").add(12_345);
//! }
//! let mut jsonl = Vec::new();
//! reap_obs::export::write_jsonl(&registry.snapshot(), &mut jsonl).unwrap();
//! assert!(String::from_utf8(jsonl).unwrap().contains("\"type\":\"span\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod flush;
pub mod json;
pub mod progress;
pub mod registry;
pub mod report;
pub mod snapshot;
pub mod span;

pub use flush::Flusher;
pub use progress::Progress;
pub use registry::{Counter, Gauge, HistSnapshot, Histogram, Registry, Snapshot, StaticCounter};
pub use report::{GateConfig, GateMetric, Regression, ReportOptions};
pub use snapshot::{Delta, HistDelta, ProcessSample, SnapshotDiff, SpanAgg, SpanDelta};
pub use span::{SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROGRESS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric/span collection into the [`global`] registry on or off.
///
/// Off by default; flip on once at process start (CLI flag, bench main).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns live progress reporting (stderr status lines) on or off.
/// Independent of [`set_enabled`] — a quiet run can still collect
/// metrics, and a progress bar needs no registry.
pub fn set_progress_enabled(on: bool) {
    PROGRESS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumented loops should drive a [`Progress`] reporter.
pub fn progress_enabled() -> bool {
    PROGRESS_ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Opens a span on the [`global`] registry, or an inert no-op guard while
/// telemetry is disabled.
pub fn span(name: &str) -> SpanGuard<'static> {
    if enabled() {
        global().span(name)
    } else {
        SpanGuard::inert()
    }
}

/// Counter handle on the [`global`] registry. The handle works regardless
/// of the enable flag; hot paths should check [`enabled`] (or use a
/// [`StaticCounter`]) to skip the lookup entirely.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Gauge handle on the [`global`] registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Histogram handle on the [`global`] registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}
