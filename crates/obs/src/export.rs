//! Exporters: human-readable tables, JSON-lines, Chrome `trace_event`.
//!
//! All three render a [`Snapshot`], so one consistent capture of the
//! registry can be shown to a human, diffed in CI and opened in a trace
//! viewer at the same time.
//!
//! # JSON-lines schema (`reap-obs/2`)
//!
//! One object per line; the first line is a `meta` record announcing the
//! schema and the number of records of each type, followed by one
//! `process` self-metrics record, then the metric and span records:
//!
//! ```text
//! {"type":"meta","schema":"reap-obs/2","counters":2,"gauges":1,"hists":1,"spans":3}
//! {"type":"process","wall_s":0.21,"cpu_s":0.35,"peak_rss_bytes":14680064,"rss_bytes":9437184}
//! {"type":"counter","name":"ecc.decode","value":1234}
//! {"type":"gauge","name":"run_parallel.worker.0.utilization","value":0.93}
//! {"type":"hist","name":"mc.reads","count":5,"sum":120,"max":64,"buckets":[[16,3],[64,2]]}
//! {"type":"span","path":"capture","name":"capture","thread":0,"start_us":12,"dur_us":51000,
//!  "wall_s":0.051,"events":400000,"rate_per_s":7843137.2}
//! ```
//!
//! `reap-obs/2` differs from `/1` in two ways: the `process` record, and
//! the automatic `span.{name}.us` latency histograms recorded for every
//! finished span. Readers ([`check_jsonl`],
//! [`crate::Snapshot::from_jsonl`]) accept both versions.
//!
//! Metric records are sorted by name and spans by path, so two identical
//! runs produce identical documents apart from the wall-clock fields
//! listed in [`TIMING_KEYS`], the `process` record, and the run-variant
//! metrics identified by [`is_run_variant_metric`] — strip those to diff
//! runs in CI.

use crate::json;
use crate::registry::Snapshot;
use std::fmt::Write as _;
use std::io::{self, Write};

/// Schema identifier stamped on the first JSON-lines record.
pub const JSONL_SCHEMA: &str = "reap-obs/2";

/// Keys whose values differ between otherwise identical runs: wall-clock
/// measurements, plus the recording thread id (a parallel pool does not
/// assign spans to the same worker every run). Diff tooling should drop
/// these.
pub const TIMING_KEYS: &[&str] = &["start_us", "dur_us", "wall_s", "rate_per_s", "thread"];

/// Whether a metric's *value* is wall-clock-derived and therefore varies
/// between otherwise identical runs: the per-worker
/// `.busy_s`/`.idle_s`/`.utilization` gauges and the automatic
/// `span.{name}.us` latency histograms. Together with [`TIMING_KEYS`]
/// and the `process` record, these are the only run-variant content of
/// an export; determinism tests and the report's `--no-timings` mode
/// drop them.
pub fn is_run_variant_metric(name: &str) -> bool {
    name.ends_with(".busy_s")
        || name.ends_with(".idle_s")
        || name.ends_with(".utilization")
        || (name.starts_with("span.") && name.ends_with(".us"))
}

/// A JSON-lines schema version accepted by the readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FormatVersion {
    /// `reap-obs/1`: no `process` record, no span-latency histograms.
    V1,
    /// `reap-obs/2`: the current schema.
    #[default]
    V2,
}

impl FormatVersion {
    /// The schema string this version stamps on the meta line.
    pub fn as_str(self) -> &'static str {
        match self {
            FormatVersion::V1 => "reap-obs/1",
            FormatVersion::V2 => "reap-obs/2",
        }
    }
}

/// Validates a meta line's schema string: `reap-obs/1` and `reap-obs/2`
/// are accepted, anything else is rejected with the offending line
/// number.
pub(crate) fn validate_schema(
    schema: Option<&str>,
    line_no: usize,
) -> Result<FormatVersion, (usize, String)> {
    match schema {
        Some("reap-obs/1") => Ok(FormatVersion::V1),
        Some("reap-obs/2") => Ok(FormatVersion::V2),
        other => Err((
            line_no,
            format!("unknown schema {other:?}, expected \"reap-obs/1\" or \"reap-obs/2\""),
        )),
    }
}

/// Writes the snapshot as JSON-lines (see the module docs for the schema).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_jsonl<W: Write>(snapshot: &Snapshot, mut out: W) -> io::Result<()> {
    writeln!(
        out,
        "{{\"type\":\"meta\",\"schema\":\"{}\",\"counters\":{},\"gauges\":{},\"hists\":{},\"spans\":{}}}",
        JSONL_SCHEMA,
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.hists.len(),
        snapshot.spans.len(),
    )?;
    if let Some(p) = &snapshot.process {
        let opt_u64 = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |b| b.to_string());
        writeln!(
            out,
            "{{\"type\":\"process\",\"wall_s\":{},\"cpu_s\":{},\"peak_rss_bytes\":{},\"rss_bytes\":{}}}",
            json::number(p.wall_s),
            p.cpu_s.map_or_else(|| "null".to_owned(), json::number),
            opt_u64(p.peak_rss_bytes),
            opt_u64(p.rss_bytes),
        )?;
    }
    for (name, value) in &snapshot.counters {
        writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json::escape(name)
        )?;
    }
    for (name, value) in &snapshot.gauges {
        writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json::escape(name),
            json::number(*value)
        )?;
    }
    for (name, hist) in &snapshot.hists {
        let buckets: Vec<String> = hist
            .buckets
            .iter()
            .map(|(lo, count)| format!("[{lo},{count}]"))
            .collect();
        writeln!(
            out,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[{}]}}",
            json::escape(name),
            hist.count,
            hist.sum,
            hist.max,
            buckets.join(",")
        )?;
    }
    for span in &snapshot.spans {
        let rate = span
            .rate_per_s()
            .map_or_else(|| "null".to_owned(), json::number);
        writeln!(
            out,
            "{{\"type\":\"span\",\"path\":\"{}\",\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{},\"wall_s\":{},\"events\":{},\"rate_per_s\":{}}}",
            json::escape(&span.path),
            json::escape(&span.name),
            span.thread,
            span.start_us,
            span.dur_us,
            json::number(span.wall_seconds()),
            span.events,
            rate,
        )?;
    }
    Ok(())
}

/// Writes the snapshot's spans as Chrome `trace_event` JSON (the format
/// `chrome://tracing`, Perfetto and Speedscope open), one complete-event
/// (`"ph":"X"`) per span.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_chrome_trace<W: Write>(snapshot: &Snapshot, mut out: W) -> io::Result<()> {
    writeln!(out, "[")?;
    for (i, span) in snapshot.spans.iter().enumerate() {
        let comma = if i + 1 == snapshot.spans.len() {
            ""
        } else {
            ","
        };
        writeln!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"reap\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"path\":\"{}\",\"events\":{}}}}}{comma}",
            json::escape(&span.name),
            span.start_us,
            span.dur_us,
            span.thread,
            json::escape(&span.path),
            span.events,
        )?;
    }
    writeln!(out, "]")?;
    Ok(())
}

/// Renders the snapshot as human-readable aligned tables (spans first,
/// then counters, gauges and histograms). Empty sections are omitted.
pub fn render_table(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<40} {:>10} {:>12} {:>14}",
            "span", "wall s", "events", "events/s"
        );
        for span in &snapshot.spans {
            let depth = span.path.matches('/').count();
            let label = format!("{}{}", "  ".repeat(depth), span.name);
            let rate = span
                .rate_per_s()
                .map_or_else(|| "-".to_owned(), |r| format!("{r:.1}"));
            let events = if span.events > 0 {
                span.events.to_string()
            } else {
                "-".to_owned()
            };
            let _ = writeln!(
                out,
                "{label:<40} {:>10.3} {events:>12} {rate:>14}",
                span.wall_seconds()
            );
        }
    }
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "{:<40} {:>12}", "counter", "value");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "{name:<40} {value:>12}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "{:<40} {:>12}", "gauge", "value");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "{name:<40} {value:>12.4}");
        }
    }
    if !snapshot.hists.is_empty() {
        let _ = writeln!(
            out,
            "{:<40} {:>10} {:>12} {:>10}",
            "histogram", "count", "sum", "max"
        );
        for (name, hist) in &snapshot.hists {
            let _ = writeln!(
                out,
                "{name:<40} {:>10} {:>12} {:>10}",
                hist.count, hist.sum, hist.max
            );
        }
    }
    out
}

/// A half-written trailing line detected by [`check_jsonl`] — the
/// signature of a writer killed mid-line. The document up to this point
/// is still trusted; tooling should repair the file by truncating it to
/// `byte_offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedTail {
    /// 1-based line number of the partial line.
    pub line: usize,
    /// Byte offset where the partial line starts.
    pub byte_offset: usize,
}

/// Per-type record counts of a validated JSON-lines document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonlSummary {
    /// The schema version the meta line declared.
    pub version: FormatVersion,
    /// `counter` records seen.
    pub counters: u64,
    /// `gauge` records seen.
    pub gauges: u64,
    /// `hist` records seen.
    pub hists: u64,
    /// `span` records seen.
    pub spans: u64,
    /// A crash-truncated trailing line, tolerated as a warning.
    pub truncated: Option<TruncatedTail>,
}

impl JsonlSummary {
    /// Total records excluding the `meta` line.
    pub fn total(&self) -> u64 {
        self.counters + self.gauges + self.hists + self.spans
    }
}

/// Validates a JSON-lines document produced by [`write_jsonl`]: every
/// line parses, the first line is a `meta` record with the expected
/// schema, every record type is known, metric records carry names, and
/// the meta counts match the body.
///
/// One corruption is tolerated rather than rejected: an *unterminated*
/// final line that fails to parse. Appending writers flush line by line,
/// so a process killed mid-write leaves exactly this state; the summary
/// reports it in [`JsonlSummary::truncated`] (with the byte offset to
/// truncate the file back to) and the meta counts are allowed to exceed
/// the body counts. A mid-file violation is still an error.
///
/// # Errors
///
/// Returns a `(line_number, message)` pair (1-based) for the first
/// violation.
pub fn check_jsonl(text: &str) -> Result<JsonlSummary, (usize, String)> {
    let mut summary = JsonlSummary::default();
    let mut meta: Option<[u64; 4]> = None;
    let last_line_unterminated = !text.is_empty() && !text.ends_with('\n');
    let line_count = text.lines().count();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = json::parse(line);
        if parsed.is_err() && last_line_unterminated && line_no == line_count {
            // A killed writer's half line: warn, keep everything before.
            summary.truncated = Some(TruncatedTail {
                line: line_no,
                byte_offset: text.len() - line.len(),
            });
            break;
        }
        let value = parsed.map_err(|e| (line_no, format!("invalid JSON: {e}")))?;
        let kind = value
            .get("type")
            .and_then(json::Value::as_str)
            .ok_or_else(|| (line_no, "record has no \"type\" field".to_owned()))?;
        if meta.is_none() {
            if kind != "meta" {
                return Err((line_no, "first record must be \"meta\"".to_owned()));
            }
            let schema = value.get("schema").and_then(json::Value::as_str);
            summary.version = validate_schema(schema, line_no)?;
            let count = |key: &str| {
                value
                    .get(key)
                    .and_then(json::Value::as_f64)
                    .map(|v| v as u64)
                    .ok_or_else(|| (line_no, format!("meta record missing \"{key}\"")))
            };
            meta = Some([
                count("counters")?,
                count("gauges")?,
                count("hists")?,
                count("spans")?,
            ]);
            continue;
        }
        match kind {
            "counter" | "gauge" | "hist" => {
                if value.get("name").and_then(json::Value::as_str).is_none() {
                    return Err((line_no, format!("{kind} record has no \"name\"")));
                }
                if kind == "hist" {
                    summary.hists += 1;
                } else if kind == "counter" {
                    if value.get("value").and_then(json::Value::as_f64).is_none() {
                        return Err((line_no, "counter record has no numeric \"value\"".into()));
                    }
                    summary.counters += 1;
                } else {
                    summary.gauges += 1;
                }
            }
            "span" => {
                for key in ["path", "name"] {
                    if value.get(key).and_then(json::Value::as_str).is_none() {
                        return Err((line_no, format!("span record has no \"{key}\"")));
                    }
                }
                summary.spans += 1;
            }
            "process" => {
                if value.get("wall_s").and_then(json::Value::as_f64).is_none() {
                    return Err((line_no, "process record has no numeric \"wall_s\"".into()));
                }
            }
            "meta" => return Err((line_no, "duplicate meta record".to_owned())),
            other => return Err((line_no, format!("unknown record type \"{other}\""))),
        }
    }
    let Some(meta) = meta else {
        return Err((0, "empty document (no meta record)".to_owned()));
    };
    let body = [
        summary.counters,
        summary.gauges,
        summary.hists,
        summary.spans,
    ];
    if meta != body {
        // With a truncated tail the body may legitimately fall short of
        // the announced counts (the lost records were after the cut).
        let explained_by_truncation =
            summary.truncated.is_some() && body.iter().zip(meta).all(|(b, m)| *b <= m);
        if !explained_by_truncation {
            return Err((
                0,
                format!("meta counts {meta:?} do not match body counts {body:?}"),
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Registry {
        let r = Registry::new();
        r.counter("ecc.decode").add(7);
        r.gauge("util").set(0.5);
        r.histogram("n").record(9);
        {
            let mut s = r.span("capture");
            s.add_events(100);
        }
        r
    }

    #[test]
    fn jsonl_round_trips_through_check() {
        let mut buf = Vec::new();
        write_jsonl(&sample().snapshot(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let summary = check_jsonl(&text).unwrap();
        assert_eq!(
            summary,
            JsonlSummary {
                version: FormatVersion::V2,
                counters: 1,
                gauges: 1,
                // The recorded `n` histogram plus the automatic
                // `span.capture.us` latency histogram.
                hists: 2,
                spans: 1,
                truncated: None,
            }
        );
        assert_eq!(summary.total(), 5);
        assert!(text.contains("\"span.capture.us\""), "{text}");
        assert!(text.contains("\"type\":\"process\""), "{text}");
    }

    #[test]
    fn check_accepts_both_schema_versions_and_rejects_unknown() {
        let v1 = "{\"type\":\"meta\",\"schema\":\"reap-obs/1\",\"counters\":0,\"gauges\":0,\
                  \"hists\":0,\"spans\":0}\n";
        assert_eq!(check_jsonl(v1).unwrap().version, FormatVersion::V1);

        let mut buf = Vec::new();
        write_jsonl(&sample().snapshot(), &mut buf).unwrap();
        let v2 = String::from_utf8(buf).unwrap();
        assert_eq!(check_jsonl(&v2).unwrap().version, FormatVersion::V2);

        let unknown = v1.replace("reap-obs/1", "reap-obs/3");
        let (line, msg) = check_jsonl(&unknown).unwrap_err();
        assert_eq!(line, 1, "version errors name the offending line");
        assert!(msg.contains("reap-obs/3"), "{msg}");
        assert!(
            msg.contains("reap-obs/1") && msg.contains("reap-obs/2"),
            "{msg}"
        );
    }

    #[test]
    fn killed_writer_tail_is_a_warning_not_an_error() {
        let mut buf = Vec::new();
        write_jsonl(&sample().snapshot(), &mut buf).unwrap();
        let good = String::from_utf8(buf).unwrap();
        // Kill the writer mid-way through the final record.
        let cut = good.len() - 9;
        let damaged = &good[..cut];
        let summary = check_jsonl(damaged).unwrap();
        let tail = summary.truncated.expect("tail detected");
        assert_eq!(tail.line, damaged.lines().count());
        assert!(
            damaged[tail.byte_offset..].starts_with("{\"type\":\"span\""),
            "offset points at the partial line"
        );
        assert_eq!(summary.spans, 0, "the partial record is not counted");

        // The same damage mid-file (i.e. followed by a newline) is real
        // corruption and must still fail.
        let mut mid = damaged.to_owned();
        mid.push('\n');
        assert!(check_jsonl(&mid).is_err());
    }

    #[test]
    fn every_jsonl_line_is_valid_json() {
        let mut buf = Vec::new();
        write_jsonl(&sample().snapshot(), &mut buf).unwrap();
        for line in String::from_utf8(buf).unwrap().lines() {
            crate::json::parse(line).expect("valid line");
        }
    }

    #[test]
    fn check_rejects_corruption() {
        let mut buf = Vec::new();
        write_jsonl(&sample().snapshot(), &mut buf).unwrap();
        let good = String::from_utf8(buf).unwrap();

        let (line, msg) = check_jsonl(&good.replace("\"counter\"", "\"frob\"")).unwrap_err();
        assert!(line > 1, "{msg}");
        assert!(msg.contains("frob") || msg.contains("counts"), "{msg}");

        let truncated: String = good.lines().take(2).collect::<Vec<_>>().join("\n");
        let (_, msg) = check_jsonl(&truncated).unwrap_err();
        assert!(msg.contains("do not match"), "{msg}");

        assert!(check_jsonl("").is_err());
        assert!(check_jsonl("not json\n").is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json_array() {
        let mut buf = Vec::new();
        write_chrome_trace(&sample().snapshot(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = crate::json::parse(&text).unwrap();
        let crate::json::Value::Arr(events) = parsed else {
            panic!("not an array");
        };
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("ph").and_then(crate::json::Value::as_str),
            Some("X")
        );
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let r = Registry::new();
        let mut buf = Vec::new();
        write_jsonl(&r.snapshot(), &mut buf).unwrap();
        let summary = check_jsonl(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(summary.total(), 0);
        let mut buf = Vec::new();
        write_chrome_trace(&r.snapshot(), &mut buf).unwrap();
        crate::json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        assert!(render_table(&r.snapshot()).is_empty());
    }

    #[test]
    fn table_indents_children_and_lists_metrics() {
        let r = sample();
        {
            let _outer = r.span("replay");
            let _inner = r.span("point");
        }
        let table = render_table(&r.snapshot());
        assert!(table.contains("capture"));
        assert!(table.contains("  point"), "{table}");
        assert!(table.contains("ecc.decode"));
        assert!(table.contains("util"));
    }
}
