//! Property-based tests for the array cost model: physical sanity must
//! hold across the whole supported design space, not just the paper point.

use proptest::prelude::*;
use reap_nvarray::{estimate, ArraySpec, MemTech, TechnologyNode};

fn spec_strategy() -> impl Strategy<Value = ArraySpec> {
    (10usize..=22, 0usize..=4, 5usize..=9, 0usize..=64).prop_map(
        |(cap_pow, ways_pow, block_pow, check)| {
            ArraySpec::new(
                1 << cap_pow.max(ways_pow + block_pow + 1),
                1 << block_pow,
                1 << ways_pow,
            )
            .expect("power-of-two geometry always divides")
            .with_check_bits(check)
        },
    )
}

proptest! {
    /// Every estimate is positive and finite for any valid spec/tech/node.
    #[test]
    fn estimates_are_physical(
        spec in spec_strategy(),
        nm in 10u32..=90,
        stt in any::<bool>(),
    ) {
        let tech = if stt { MemTech::SttMram } else { MemTech::Sram };
        let e = estimate(&spec, tech, TechnologyNode::nm(nm).unwrap());
        for (name, v) in [
            ("line_read_energy", e.line_read_energy),
            ("line_write_energy", e.line_write_energy),
            ("tag_access_energy", e.tag_access_energy),
            ("leakage_power", e.leakage_power),
            ("area", e.area),
            ("tag_latency", e.tag_latency),
            ("data_read_latency", e.data_read_latency),
            ("data_write_latency", e.data_write_latency),
            ("mux_latency", e.mux_latency),
        ] {
            prop_assert!(v.is_finite() && v > 0.0, "{name} = {v}");
        }
    }

    /// STT-MRAM always leaks less and writes slower than SRAM at identical
    /// geometry and node.
    #[test]
    fn stt_tradeoffs_hold_everywhere(spec in spec_strategy(), nm in 10u32..=90) {
        let node = TechnologyNode::nm(nm).unwrap();
        let stt = estimate(&spec, MemTech::SttMram, node);
        let sram = estimate(&spec, MemTech::Sram, node);
        prop_assert!(stt.leakage_power < sram.leakage_power);
        prop_assert!(stt.data_write_latency > sram.data_write_latency);
        prop_assert!(stt.area < sram.area);
        prop_assert!(stt.line_write_energy > stt.line_read_energy);
    }

    /// Energy and area scale monotonically with capacity.
    #[test]
    fn capacity_monotonicity(cap_pow in 16usize..=21, nm in 16u32..=45) {
        let node = TechnologyNode::nm(nm).unwrap();
        let small = ArraySpec::new(1 << cap_pow, 64, 8).unwrap();
        let big = ArraySpec::new(1 << (cap_pow + 1), 64, 8).unwrap();
        let es = estimate(&small, MemTech::SttMram, node);
        let eb = estimate(&big, MemTech::SttMram, node);
        prop_assert!(eb.area > es.area);
        prop_assert!(eb.leakage_power > es.leakage_power);
        prop_assert!(eb.line_read_energy >= es.line_read_energy);
    }

    /// Check bits increase stored width, energy and area, and never
    /// decrease any latency.
    #[test]
    fn check_bits_cost_something(check in 1usize..=80) {
        let node = TechnologyNode::nm(22).unwrap();
        let plain = ArraySpec::new(1 << 20, 64, 8).unwrap();
        let ecc = plain.with_check_bits(check);
        prop_assert_eq!(ecc.stored_line_bits(), 512 + check);
        let ep = estimate(&plain, MemTech::SttMram, node);
        let ee = estimate(&ecc, MemTech::SttMram, node);
        prop_assert!(ee.line_read_energy > ep.line_read_energy);
        prop_assert!(ee.area > ep.area);
        prop_assert!(ee.data_read_latency >= ep.data_read_latency);
    }
}
