//! Circuit-level energy / area / latency estimation for cache arrays —
//! a deliberately simplified reimplementation of the role NVSim ref. 21 of the paper
//! plays in the paper.
//!
//! Given a cache geometry, a memory technology ([`MemTech::Sram`] or
//! [`MemTech::SttMram`]) and a process node, [`estimate`] produces an
//! [`ArrayEstimate`]: per-line read/write energies, tag-array access
//! energy, leakage, silicon area and the read-path component latencies the
//! REAP access-time argument (§V-B) needs.
//!
//! Calibration targets (documented in `DESIGN.md` §2) are the published
//! NVSim values for a 1 MB STT-MRAM L2 at 22 nm — read ≈ 0.1–0.5 nJ,
//! write several× the read energy, leakage far below SRAM — so the
//! *relative* quantities that drive the paper's Figs. 5–6 (read vs write
//! energy, ECC decoder ≪ array) are faithful even though absolute joules
//! are estimates.
//!
//! # Examples
//!
//! ```
//! use reap_nvarray::{estimate, ArraySpec, MemTech, TechnologyNode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ArraySpec::new(1 << 20, 64, 8)?; // the paper's L2
//! let stt = estimate(&spec, MemTech::SttMram, TechnologyNode::nm(22)?);
//! let sram = estimate(&spec, MemTech::Sram, TechnologyNode::nm(22)?);
//! assert!(stt.leakage_power < sram.leakage_power / 5.0);
//! assert!(stt.area < sram.area);
//! assert!(stt.line_write_energy > stt.line_read_energy);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// A process technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TechnologyNode {
    feature_nm: u32,
}

impl TechnologyNode {
    /// Creates a node from its feature size in nanometres.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnsupportedNode`] outside 10–90 nm (the range
    /// the scaling rules are sane for).
    pub fn nm(feature_nm: u32) -> Result<Self, SpecError> {
        if !(10..=90).contains(&feature_nm) {
            return Err(SpecError::UnsupportedNode { feature_nm });
        }
        Ok(Self { feature_nm })
    }

    /// Feature size in nanometres.
    pub fn feature_nm(&self) -> u32 {
        self.feature_nm
    }

    /// Energy/area scale factor relative to the 45 nm calibration point.
    fn quad_scale(&self) -> f64 {
        (f64::from(self.feature_nm) / 45.0).powi(2)
    }

    /// Latency scale factor relative to 45 nm.
    fn lin_scale(&self) -> f64 {
        f64::from(self.feature_nm) / 45.0
    }

    /// Square metres per F².
    fn f2(&self) -> f64 {
        let f = f64::from(self.feature_nm) * 1e-9;
        f * f
    }
}

/// Memory cell technology of the data array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTech {
    /// 6T SRAM.
    Sram,
    /// 1T-1MTJ STT-MRAM.
    SttMram,
}

impl fmt::Display for MemTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemTech::Sram => f.write_str("SRAM"),
            MemTech::SttMram => f.write_str("STT-MRAM"),
        }
    }
}

/// Per-technology calibration constants at the 45 nm reference node.
struct TechConstants {
    /// Cell area in F².
    cell_f2: f64,
    /// Read energy per bit (J), including local bitline + sense.
    read_per_bit: f64,
    /// Write energy per bit (J).
    write_per_bit: f64,
    /// Leakage per bit (W) including its share of periphery.
    leak_per_bit: f64,
    /// Sense latency floor (s).
    sense_latency: f64,
    /// Write pulse latency (s).
    write_latency: f64,
}

impl MemTech {
    fn constants(self) -> TechConstants {
        match self {
            MemTech::Sram => TechConstants {
                cell_f2: 146.0,
                read_per_bit: 30e-15,
                write_per_bit: 30e-15,
                leak_per_bit: 60e-12,
                sense_latency: 0.20e-9,
                write_latency: 0.20e-9,
            },
            MemTech::SttMram => TechConstants {
                cell_f2: 40.0,
                read_per_bit: 500e-15,
                write_per_bit: 3_500e-15,
                leak_per_bit: 2e-12,
                sense_latency: 1.0e-9,
                write_latency: 10.0e-9,
            },
        }
    }
}

/// Geometry of the modelled cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArraySpec {
    capacity_bytes: usize,
    block_bytes: usize,
    associativity: usize,
    check_bits_per_line: usize,
}

impl ArraySpec {
    /// Creates a spec; `check_bits_per_line` defaults to zero.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::BadGeometry`] if any quantity is zero or the
    /// capacity does not divide into whole sets.
    pub fn new(
        capacity_bytes: usize,
        block_bytes: usize,
        associativity: usize,
    ) -> Result<Self, SpecError> {
        if capacity_bytes == 0
            || block_bytes == 0
            || associativity == 0
            || !capacity_bytes.is_multiple_of(block_bytes * associativity)
        {
            return Err(SpecError::BadGeometry {
                capacity_bytes,
                block_bytes,
                associativity,
            });
        }
        Ok(Self {
            capacity_bytes,
            block_bytes,
            associativity,
            check_bits_per_line: 0,
        })
    }

    /// Adds per-line ECC check bits to the stored width.
    pub fn with_check_bits(mut self, check_bits_per_line: usize) -> Self {
        self.check_bits_per_line = check_bits_per_line;
        self
    }

    /// Stored bits per line (data + check).
    pub fn stored_line_bits(&self) -> usize {
        self.block_bytes * 8 + self.check_bits_per_line
    }

    /// Total stored data-array bits.
    pub fn total_bits(&self) -> usize {
        self.capacity_bytes / self.block_bytes * self.stored_line_bits()
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.capacity_bytes / (self.block_bytes * self.associativity)
    }

    /// Tag width in bits for a 48-bit physical address space.
    pub fn tag_bits(&self) -> usize {
        let offset_bits = (self.block_bytes as f64).log2() as usize;
        let index_bits = (self.num_sets() as f64).log2() as usize;
        // valid + dirty + tag
        48 - offset_bits - index_bits + 2
    }
}

/// Estimated electrical characteristics of one cache array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayEstimate {
    /// Energy to read one line (one way) from the data array (J).
    pub line_read_energy: f64,
    /// Energy to write one line (J).
    pub line_write_energy: f64,
    /// Energy of one tag-array access (all ways' tags compared) (J).
    pub tag_access_energy: f64,
    /// Static leakage of the whole array (W).
    pub leakage_power: f64,
    /// Silicon area of data + tag arrays (m²).
    pub area: f64,
    /// Latency of tag read + comparison (s).
    pub tag_latency: f64,
    /// Latency of a data-array line read (s).
    pub data_read_latency: f64,
    /// Latency of a data-array line write (s).
    pub data_write_latency: f64,
    /// Latency of the way-select output MUX (s).
    pub mux_latency: f64,
}

impl ArrayEstimate {
    /// Silicon area in mm² — the unit design-space comparisons (and the
    /// paper's area discussions) are quoted in. Pure unit conversion of
    /// [`area`](Self::area).
    pub fn area_mm2(&self) -> f64 {
        self.area * 1e6
    }
}

/// Estimates the array characteristics of `spec` in `tech` at `node`.
///
/// The model is a two-level NVSim-like abstraction: per-bit cell energy
/// plus an H-tree routing overhead that grows with the square root of the
/// mat count, and periphery (decoder/sense) latency that grows with
/// log₂(rows).
pub fn estimate(spec: &ArraySpec, tech: MemTech, node: TechnologyNode) -> ArrayEstimate {
    let c = tech.constants();
    let bits = spec.total_bits() as f64;
    let line_bits = spec.stored_line_bits() as f64;

    // Mat organization: 512x512-bit subarrays.
    let mats = (bits / (512.0 * 512.0)).max(1.0);
    let routing_factor = 1.0 + 0.15 * mats.sqrt().log2().max(0.0);

    let quad = node.quad_scale();
    let lin = node.lin_scale();

    let line_read_energy = line_bits * c.read_per_bit * quad * routing_factor;
    let line_write_energy = line_bits * c.write_per_bit * quad * routing_factor;

    // Tag array is SRAM in both cases (as in commercial STT-MRAM proposals
    // and the paper's premise that REAP leaves tags untouched).
    let tag_bits_total = (spec.tag_bits() * spec.associativity) as f64;
    let sram = MemTech::Sram.constants();
    let tag_access_energy = tag_bits_total * sram.read_per_bit * quad * routing_factor;

    // Tag-array leakage is folded into the SRAM per-bit constant.
    let leakage_power = bits * c.leak_per_bit * quad
        + tag_bits_total * spec.num_sets() as f64 * sram.leak_per_bit * quad;

    let tag_area = spec.tag_bits() as f64
        * spec.associativity as f64
        * spec.num_sets() as f64
        * sram.cell_f2
        * node.f2();
    let area = (bits * c.cell_f2 * node.f2() + tag_area) * 1.6; // periphery (decoders, sense amps, H-tree) overhead

    let rows = 512.0f64;
    let decode_latency = 0.15e-9 * lin * rows.log2() / 9.0;
    let wire_latency = 0.05e-9 * lin * mats.sqrt().log2().max(1.0);
    let data_read_latency = decode_latency + wire_latency + c.sense_latency * lin;
    let data_write_latency = decode_latency + wire_latency + c.write_latency;
    let tag_latency = decode_latency + wire_latency + sram.sense_latency * lin + 0.25e-9 * lin;
    let mux_latency = 0.08e-9 * lin;

    ArrayEstimate {
        line_read_energy,
        line_write_energy,
        tag_access_energy,
        leakage_power,
        area,
        tag_latency,
        data_read_latency,
        data_write_latency,
        mux_latency,
    }
}

/// Error constructing a spec or node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// Feature size out of the supported scaling range.
    UnsupportedNode {
        /// Requested feature size.
        feature_nm: u32,
    },
    /// Geometry quantities are zero or do not divide evenly.
    BadGeometry {
        /// Requested capacity.
        capacity_bytes: usize,
        /// Requested block size.
        block_bytes: usize,
        /// Requested associativity.
        associativity: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SpecError::UnsupportedNode { feature_nm } => {
                write!(f, "unsupported technology node {feature_nm} nm (10-90 nm)")
            }
            SpecError::BadGeometry {
                capacity_bytes,
                block_bytes,
                associativity,
            } => write!(
                f,
                "invalid geometry: {capacity_bytes} B / ({associativity} x {block_bytes} B)"
            ),
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2_spec() -> ArraySpec {
        ArraySpec::new(1 << 20, 64, 8).unwrap().with_check_bits(64)
    }

    fn node22() -> TechnologyNode {
        TechnologyNode::nm(22).unwrap()
    }

    #[test]
    fn area_mm2_is_the_area_in_square_millimetres() {
        let e = estimate(&l2_spec(), MemTech::SttMram, node22());
        assert_eq!(e.area_mm2().to_bits(), (e.area * 1e6).to_bits());
        assert!(e.area_mm2() > 0.0);
    }

    #[test]
    fn stt_l2_energies_in_plausible_range() {
        let e = estimate(&l2_spec(), MemTech::SttMram, node22());
        // Published NVSim figures for ~1 MB STT-MRAM: reads 0.05-0.5 nJ,
        // writes a few times larger.
        assert!(
            e.line_read_energy > 0.02e-9 && e.line_read_energy < 1e-9,
            "read {:.3e}",
            e.line_read_energy
        );
        assert!(e.line_write_energy / e.line_read_energy > 2.0);
    }

    #[test]
    fn stt_beats_sram_on_leakage_and_area() {
        let stt = estimate(&l2_spec(), MemTech::SttMram, node22());
        let sram = estimate(&l2_spec(), MemTech::Sram, node22());
        assert!(stt.leakage_power < sram.leakage_power / 5.0);
        assert!(stt.area < sram.area / 2.0);
    }

    #[test]
    fn sram_reads_faster_than_stt() {
        let stt = estimate(&l2_spec(), MemTech::SttMram, node22());
        let sram = estimate(&l2_spec(), MemTech::Sram, node22());
        assert!(sram.data_read_latency < stt.data_read_latency);
        assert!(sram.data_write_latency < stt.data_write_latency);
    }

    #[test]
    fn stt_write_dominated_by_pulse() {
        let e = estimate(&l2_spec(), MemTech::SttMram, node22());
        assert!(
            e.data_write_latency >= 10e-9,
            "10 ns programming pulse floor"
        );
    }

    #[test]
    fn scaling_with_node() {
        let spec = l2_spec();
        let e22 = estimate(&spec, MemTech::SttMram, node22());
        let e45 = estimate(&spec, MemTech::SttMram, TechnologyNode::nm(45).unwrap());
        assert!(e22.line_read_energy < e45.line_read_energy);
        assert!(e22.area < e45.area);
        assert!(e22.tag_latency < e45.tag_latency);
    }

    #[test]
    fn bigger_arrays_cost_more() {
        let small = ArraySpec::new(1 << 18, 64, 8).unwrap();
        let big = ArraySpec::new(1 << 22, 64, 8).unwrap();
        let es = estimate(&small, MemTech::SttMram, node22());
        let eb = estimate(&big, MemTech::SttMram, node22());
        assert!(eb.area > 3.0 * es.area);
        assert!(eb.leakage_power > 3.0 * es.leakage_power);
        assert!(
            eb.line_read_energy > es.line_read_energy,
            "routing overhead grows"
        );
    }

    #[test]
    fn check_bits_increase_stored_width_and_energy() {
        let plain = ArraySpec::new(1 << 20, 64, 8).unwrap();
        let ecc = plain.with_check_bits(64);
        assert_eq!(plain.stored_line_bits(), 512);
        assert_eq!(ecc.stored_line_bits(), 576);
        let ep = estimate(&plain, MemTech::SttMram, node22());
        let ee = estimate(&ecc, MemTech::SttMram, node22());
        assert!(ee.line_read_energy > ep.line_read_energy);
    }

    #[test]
    fn tag_latency_shorter_than_stt_data_latency() {
        // The premise of the parallel-access win and of REAP's free ECC
        // overlap: tags (SRAM) resolve no later than STT data.
        let e = estimate(&l2_spec(), MemTech::SttMram, node22());
        assert!(e.tag_latency <= e.data_read_latency);
    }

    #[test]
    fn paper_l2_area_about_right() {
        // 1 MB STT-MRAM at 22 nm should land in the low square millimetres.
        let e = estimate(&l2_spec(), MemTech::SttMram, node22());
        let mm2 = e.area * 1e6;
        assert!(mm2 > 0.05 && mm2 < 5.0, "area = {mm2} mm²");
    }

    #[test]
    fn spec_validation() {
        assert!(ArraySpec::new(0, 64, 8).is_err());
        assert!(ArraySpec::new(1000, 64, 8).is_err());
        assert!(TechnologyNode::nm(5).is_err());
        assert!(TechnologyNode::nm(130).is_err());
        let err = TechnologyNode::nm(5).unwrap_err();
        assert!(err.to_string().contains("5 nm"));
    }

    #[test]
    fn tag_bits_account_for_geometry() {
        let spec = ArraySpec::new(1 << 20, 64, 8).unwrap();
        // 48 - 6 (offset) - 11 (index) + 2 (valid+dirty) = 33.
        assert_eq!(spec.tag_bits(), 33);
    }
}
