//! Support library for the paper-figure regenerators in `src/bin/`.
//!
//! Each binary regenerates one table or figure of the paper (see
//! `DESIGN.md` §4 for the experiment index) and prints a small
//! space-aligned table plus a CSV block that plotting scripts can consume.
//!
//! The access budget is configurable through the `REAP_ACCESSES`
//! environment variable (default 4 000 000 measured accesses per
//! workload) — larger budgets sharpen the tails of the concealed-read
//! distribution at proportional runtime cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use reap_core::{Experiment, ProtectionScheme, Report};
use reap_trace::SpecWorkload;

/// Default measured accesses per workload — ~10× the original budget,
/// affordable now that captures are stored compressed and replayed
/// streaming.
pub const DEFAULT_ACCESSES: u64 = 4_000_000;

/// The seed all regenerators use, so published numbers are reproducible.
pub const DEFAULT_SEED: u64 = 2019;

/// Reads the access budget from `REAP_ACCESSES` (falls back to
/// [`DEFAULT_ACCESSES`]).
///
/// # Examples
///
/// ```
/// let n = reap_bench::access_budget();
/// assert!(n > 0);
/// ```
pub fn access_budget() -> u64 {
    std::env::var("REAP_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &u64| n > 0)
        .unwrap_or(DEFAULT_ACCESSES)
}

/// Runs the paper-hierarchy experiment for one workload at the configured
/// budget.
///
/// # Panics
///
/// Panics if the paper configuration fails to instantiate (it cannot).
pub fn run_workload(workload: SpecWorkload, accesses: u64) -> Report {
    Experiment::paper_hierarchy()
        .workload(workload)
        .accesses(accesses)
        .seed(DEFAULT_SEED)
        .run()
        .expect("paper configuration is valid")
}

/// Geometric mean of strictly positive values.
///
/// # Panics
///
/// Panics if `values` is empty or any value is not positive.
///
/// # Examples
///
/// ```
/// let g = reap_bench::geometric_mean(&[1.0, 100.0]);
/// assert!((g - 10.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    assert!(values.iter().all(|&v| v > 0.0), "values must be positive");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Prints a CSV block with a marker line so downstream tooling can find it.
pub fn print_csv(header: &str, rows: &[String]) {
    println!();
    println!("# CSV");
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
}

/// Formats an MTTF-improvement entry the way the paper's Fig. 5 labels do.
pub fn format_improvement(workload: SpecWorkload, gain: f64) -> String {
    format!("{:<12} {:>10.1}x", workload.name(), gain)
}

/// Convenience: the Fig. 5/6 per-workload sweep across all profiles,
/// parallelized over the machine's cores (simulations are independent and
/// deterministic, so scheduling never changes results).
pub fn sweep_all_workloads(accesses: u64) -> Vec<(SpecWorkload, Report)> {
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    reap_core::sweep::sweep_workloads(accesses, DEFAULT_SEED, parallelism)
        .into_iter()
        .map(|(w, r)| (w, r.expect("paper configuration is valid")))
        .collect()
}

/// Arms the global telemetry for a regenerator run, so capture/replay
/// phase timings accumulate in [`reap_obs::global`] as the experiment
/// runs. Resets the registry first so the totals cover this process only.
pub fn enable_telemetry() {
    reap_obs::global().reset();
    reap_obs::set_enabled(true);
}

/// The capture/replay wall-clock split of a two-phase experiment, read
/// back from the global telemetry (see [`enable_telemetry`]).
///
/// The `capture` and `replay` spans are recorded by
/// `Simulator::capture`/`replay` themselves (or by an experiment's own
/// `reap_obs::span("capture")` blocks for hand-rolled capture passes), so
/// regenerators no longer stopwatch the phases by hand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPhaseSummary {
    /// Total seconds spent in capture passes.
    pub capture_s: f64,
    /// Total seconds spent replaying analysis points.
    pub replay_s: f64,
    /// Number of capture passes.
    pub captures: u64,
    /// Number of replayed analysis points.
    pub replays: u64,
}

impl TwoPhaseSummary {
    /// Reads the phase totals out of the global registry.
    pub fn from_global() -> Self {
        let registry = reap_obs::global();
        Self {
            capture_s: registry.span_seconds("capture"),
            replay_s: registry.span_seconds("replay"),
            captures: registry.span_count("capture"),
            replays: registry.span_count("replay"),
        }
    }

    /// Estimated cost of running every replayed point from scratch: the
    /// mean capture cost times the number of points.
    pub fn estimated_single_pass_s(&self) -> f64 {
        if self.captures == 0 {
            return 0.0;
        }
        self.capture_s / self.captures as f64 * self.replays as f64
    }

    /// Speedup of the two-phase run over the estimated from-scratch cost.
    pub fn speedup(&self) -> f64 {
        let actual = self.capture_s + self.replay_s;
        if actual <= 0.0 {
            return 1.0;
        }
        self.estimated_single_pass_s() / actual
    }
}

/// Prints the "Two-phase cost" line the capture/replay regenerators share,
/// from the globally accumulated phase spans.
pub fn print_two_phase_summary() {
    let s = TwoPhaseSummary::from_global();
    println!(
        "Two-phase cost: {:.2} s capturing + {:.2} s replaying {} points \
         (vs ≈{:.2} s for {} from-scratch runs — {:.1}x speedup)",
        s.capture_s,
        s.replay_s,
        s.replays,
        s.estimated_single_pass_s(),
        s.replays,
        s.speedup()
    );
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux or when the file is
/// unreadable. Benchmarks report it as the honest memory cost of a
/// phase; pair with [`reset_peak_rss`] to scope it to one phase.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Resets the kernel's peak-RSS watermark (`VmHWM`) by writing `5` to
/// `/proc/self/clear_refs`, so a subsequent [`peak_rss_bytes`] reflects
/// only allocations made after this call. Returns `false` (and changes
/// nothing) where the knob is unavailable or not permitted.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", b"5").is_ok()
}

/// The Fig. 5 metric for a report.
pub fn mttf_gain(report: &Report) -> f64 {
    report.mttf_improvement(ProtectionScheme::Reap)
}

/// The Fig. 6 metric for a report (percent).
pub fn energy_overhead_percent(report: &Report) -> f64 {
    100.0 * report.energy_overhead(ProtectionScheme::Reap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn arithmetic_mean_basics() {
        assert!((arithmetic_mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn budget_defaults_when_unset() {
        // The test environment does not set REAP_ACCESSES.
        if std::env::var("REAP_ACCESSES").is_err() {
            assert_eq!(access_budget(), DEFAULT_ACCESSES);
        }
    }

    #[test]
    fn quick_workload_run() {
        let r = run_workload(SpecWorkload::Hmmer, 20_000);
        assert!(mttf_gain(&r) >= 1.0);
        assert!(energy_overhead_percent(&r) >= 0.0);
    }
}
