//! Performance benchmark for the batched multi-point replay kernel.
//!
//! Captures every SPEC workload profile once, then scores an 8-point
//! analysis sweep (ECC strengths cycled across distinct MTJ read
//! currents, so the points mix stored widths *and* `P_rd` values) two
//! ways over the same captures:
//!
//! 1. **per-point** — one [`Simulator::replay`] walk of the exposure
//!    stream per analysis point (the historical hot path),
//! 2. **scalar batched** — one [`Simulator::replay_batch_scalar`] walk
//!    driving the pre-vectorization per-record kernel, and
//! 3. **batched** — one [`Simulator::replay_batch`] walk driving the
//!    vectorized kernel.
//!
//! The reports must agree bit-for-bit across all three (the bench fails
//! otherwise — it doubles as an end-to-end identity check at realistic
//! scale), and neither batched pass may regress: the process exits
//! non-zero if the batched speedup over per-point drops below 1, or if
//! the vectorized kernel is slower than its scalar ancestor
//! (`kernel_speedup < 1`). Each capture is additionally encoded
//! to a byte sink in both on-disk formats, so the bench reports
//! bytes-per-event for `reap-capture/1` and `/2` and the v1→v2
//! compression ratio alongside the kernel speedup. Results land in
//! `BENCH_replay.json` (override the path with the first argument).
//!
//! `--smoke` (or `REAP_BENCH_SMOKE=1`) shrinks the access budget for CI.

use reap_bench::access_budget;
use reap_core::capture_store::{write_capture, write_capture_v2};
use reap_core::{EccStrength, Experiment, ProtectionScheme, Simulator};
use reap_mtj::MtjParams;
use reap_trace::SpecWorkload;
use std::time::Instant;

/// Read currents (A) cycled across the 8 analysis points. All below the
/// default card's critical current; each gives a distinct `P_rd`.
const READ_CURRENTS: [f64; 8] = [70e-6, 65e-6, 60e-6, 55e-6, 50e-6, 45e-6, 40e-6, 35e-6];

fn failure_bits(r: &reap_core::Report) -> [u64; 4] {
    [
        r.expected_failures(ProtectionScheme::Conventional)
            .to_bits(),
        r.expected_failures(ProtectionScheme::Reap).to_bits(),
        r.expected_failures(ProtectionScheme::SerialTagFirst)
            .to_bits(),
        r.writeback_exposure().to_bits(),
    ]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_replay.json");
    let mut metrics_out: Option<String> = None;
    let mut smoke = std::env::var("REAP_BENCH_SMOKE").is_ok_and(|v| v != "0");
    while let Some(a) = args.next() {
        if a == "--smoke" {
            smoke = true;
        } else if a == "--metrics-out" {
            metrics_out = Some(args.next().expect("--metrics-out needs a path"));
        } else {
            out_path = a;
        }
    }
    if metrics_out.is_some() {
        reap_bench::enable_telemetry();
    }
    let accesses = if smoke { 20_000 } else { access_budget() };
    let workloads = SpecWorkload::ALL;
    println!(
        "replay kernel benchmark — {} workloads x {} points, {accesses} accesses each{}",
        workloads.len(),
        READ_CURRENTS.len(),
        if smoke { " (smoke)" } else { "" }
    );

    // Analysis points are built once, outside both timed regions: the
    // benchmark measures replay cost, not code construction.
    let points: Vec<Simulator> = READ_CURRENTS
        .iter()
        .enumerate()
        .map(|(i, &i_read)| {
            let e = Experiment::paper_hierarchy()
                .accesses(accesses)
                .seed(reap_bench::DEFAULT_SEED)
                .ecc(EccStrength::ALL[i % EccStrength::ALL.len()])
                .mtj(
                    MtjParams::default()
                        .with_read_current(i_read)
                        .expect("read current below critical"),
                );
            Simulator::new(e.config().clone()).expect("paper configuration is valid")
        })
        .collect();

    let mut per_point_s = 0.0f64;
    let mut scalar_s = 0.0f64;
    let mut batched_s = 0.0f64;
    let mut events = 0u64;
    let mut bytes_v1 = 0u64;
    let mut bytes_v2 = 0u64;
    for w in workloads {
        let capture = Experiment::paper_hierarchy()
            .workload(w)
            .accesses(accesses)
            .seed(reap_bench::DEFAULT_SEED)
            .capture()
            .expect("capture");
        events += capture.event_count();
        // Encode into a sink in both on-disk formats: the byte counts
        // quantify what the store would pay per format, without disk I/O
        // noise in the replay timings below.
        bytes_v1 += write_capture(std::io::sink(), 0, &capture).expect("v1 encode");
        bytes_v2 += write_capture_v2(std::io::sink(), 0, &capture).expect("v2 encode");

        let t0 = Instant::now();
        let independent: Vec<_> = points
            .iter()
            .map(|sim| sim.replay(&capture).expect("replay"))
            .collect();
        per_point_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let scalar = Simulator::replay_batch_scalar(&points, &capture).expect("scalar batch");
        scalar_s += t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let batched = Simulator::replay_batch(&points, &capture).expect("batch");
        batched_s += t2.elapsed().as_secs_f64();

        for (i, ((a, s), b)) in independent.iter().zip(&scalar).zip(&batched).enumerate() {
            assert_eq!(
                failure_bits(a),
                failure_bits(b),
                "batched kernel diverged from per-point replay ({} point {i})",
                w.name()
            );
            assert_eq!(
                failure_bits(s),
                failure_bits(b),
                "vectorized kernel diverged from the scalar kernel ({} point {i})",
                w.name()
            );
        }
    }

    let speedup = per_point_s / batched_s;
    let kernel_speedup = scalar_s / batched_s;
    let bytes_per_event_v1 = bytes_v1 as f64 / events.max(1) as f64;
    let bytes_per_event_v2 = bytes_v2 as f64 / events.max(1) as f64;
    let compression_ratio = bytes_v1 as f64 / bytes_v2.max(1) as f64;
    println!(
        "per-point: {per_point_s:.3} s   scalar: {scalar_s:.3} s   batched: {batched_s:.3} s   \
         speedup: {speedup:.2}x   kernel: {kernel_speedup:.2}x \
         ({events} exposure events, bit-identical)"
    );
    println!(
        "encoding: {bytes_per_event_v1:.2} B/event v1   {bytes_per_event_v2:.2} B/event v2   \
         compression: {compression_ratio:.2}x"
    );

    let json = format!(
        "{{\n  \"accesses\": {accesses},\n  \"workloads\": {},\n  \"points\": {},\n  \
         \"exposure_events\": {events},\n  \"per_point_s\": {per_point_s:.6},\n  \
         \"scalar_s\": {scalar_s:.6},\n  \"batched_s\": {batched_s:.6},\n  \
         \"speedup\": {speedup:.3},\n  \"kernel_speedup\": {kernel_speedup:.3},\n  \
         \"bytes_v1\": {bytes_v1},\n  \"bytes_v2\": {bytes_v2},\n  \
         \"bytes_per_event_v1\": {bytes_per_event_v1:.3},\n  \
         \"bytes_per_event_v2\": {bytes_per_event_v2:.3},\n  \
         \"compression_ratio\": {compression_ratio:.3},\n  \
         \"bit_identical\": true,\n  \"smoke\": {smoke}\n}}\n",
        workloads.len(),
        READ_CURRENTS.len(),
    );
    std::fs::write(&out_path, json).expect("write benchmark results");
    println!("wrote {out_path}");

    if let Some(path) = &metrics_out {
        let mut buf = Vec::new();
        reap_obs::export::write_jsonl(&reap_obs::global().snapshot(), &mut buf)
            .expect("serialize metrics");
        std::fs::write(path, buf).expect("write metrics");
        println!("wrote {path}");
    }

    if speedup < 1.0 {
        eprintln!("FAIL: batched replay slower than per-point ({speedup:.2}x)");
        std::process::exit(1);
    }
    if kernel_speedup < 1.0 {
        eprintln!("FAIL: vectorized kernel slower than scalar ({kernel_speedup:.2}x)");
        std::process::exit(1);
    }
}
