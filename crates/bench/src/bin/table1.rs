//! Regenerates **Table I**: the on-chip cache configuration, verified
//! against the constructed simulator objects (not just echoed strings).

use reap_cache::HierarchyConfig;

fn main() {
    let c = HierarchyConfig::paper();
    println!("Table I — Configuration of On-Chip Caches");
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>12} {:>10}",
        "cache", "size", "ways", "block", "sets", "write policy", "technology"
    );
    for (name, cfg, tech) in [
        ("L1 I-cache", &c.l1i, "SRAM"),
        ("L1 D-cache", &c.l1d, "SRAM"),
        ("L2 cache", &c.l2, "STT-MRAM"),
    ] {
        println!(
            "{:<10} {:>6}KB {:>8} {:>7}B {:>8} {:>12} {:>10}",
            name,
            cfg.size_bytes() / 1024,
            cfg.associativity(),
            cfg.block_bytes(),
            cfg.num_sets(),
            "write-back",
            tech
        );
    }
    println!();
    println!("Paper values: L1I/L1D 32KB 4-way 64B SRAM; L2 1MB 8-way 64B STT-MRAM.");
    assert_eq!(c.l1i.size_bytes(), 32 * 1024);
    assert_eq!(c.l1d.associativity(), 4);
    assert_eq!(c.l2.size_bytes(), 1024 * 1024);
    assert_eq!(c.l2.associativity(), 8);
    println!("All Table I constraints verified against the constructed configs.");
}
