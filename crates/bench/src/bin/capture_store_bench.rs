//! Performance benchmark for the persistent capture store.
//!
//! Runs the full per-workload ECC sweep twice against one on-disk
//! [`CaptureStore`]:
//!
//! 1. **cold** — the store directory starts empty, so every workload pays
//!    its trace pass and persists the capture, and
//! 2. **warm** — the same sweep again, now served entirely from disk: the
//!    trace pass is skipped and only the replay kernel runs.
//!
//! The two sweeps must agree bit-for-bit (the bench fails otherwise — a
//! capture that survives the disk round-trip differently is a correctness
//! bug, not a performance result), every warm workload must register a
//! `capture_store.hit`, and the warm pass must clear the speedup floor:
//! 2x at full budget, 1x in smoke mode (tiny captures leave little trace
//! cost to amortise). Results land in `BENCH_capture.json` (override the
//! path with the first argument).
//!
//! `--smoke` (or `REAP_BENCH_SMOKE=1`) shrinks the access budget for CI.

use reap_bench::access_budget;
use reap_core::capture_store::{CapturePolicy, CaptureStore};
use reap_core::sweep::replay_ecc_sweep_with;
use reap_core::{EccStrength, Experiment, ProtectionScheme, Report};
use reap_trace::SpecWorkload;
use std::time::Instant;

fn failure_bits(r: &Report) -> [u64; 4] {
    [
        r.expected_failures(ProtectionScheme::Conventional)
            .to_bits(),
        r.expected_failures(ProtectionScheme::Reap).to_bits(),
        r.expected_failures(ProtectionScheme::SerialTagFirst)
            .to_bits(),
        r.writeback_exposure().to_bits(),
    ]
}

/// One store-backed ECC sweep over every workload, timed.
fn sweep_all(accesses: u64, store: &CaptureStore) -> (f64, Vec<Vec<(EccStrength, Report)>>) {
    let t0 = Instant::now();
    let results = SpecWorkload::ALL
        .iter()
        .map(|&w| {
            let experiment = Experiment::paper_hierarchy()
                .workload(w)
                .accesses(accesses)
                .seed(reap_bench::DEFAULT_SEED);
            replay_ecc_sweep_with(&experiment, Some(store)).expect("sweep")
        })
        .collect();
    (t0.elapsed().as_secs_f64(), results)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_capture.json");
    let mut smoke = std::env::var("REAP_BENCH_SMOKE").is_ok_and(|v| v != "0");
    for a in args.by_ref() {
        if a == "--smoke" {
            smoke = true;
        } else {
            out_path = a;
        }
    }
    let accesses = if smoke { 20_000 } else { access_budget() };
    let workloads = SpecWorkload::ALL;
    let points = EccStrength::ALL.len();
    println!(
        "capture store benchmark — {} workloads x {points} ECC points, {accesses} accesses each{}",
        workloads.len(),
        if smoke { " (smoke)" } else { "" }
    );

    // A scratch store that is guaranteed empty, so the first sweep is a
    // true cold run even when the bench is re-invoked.
    let dir = std::env::temp_dir().join(format!("reap-capture-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = CaptureStore::new(&dir, CapturePolicy::ReadWrite);

    // Count the store traffic, so the bench can prove the warm pass was
    // actually served from disk rather than quietly recapturing.
    reap_bench::enable_telemetry();

    let (cold_s, cold) = sweep_all(accesses, &store);
    let (warm_s, warm) = sweep_all(accesses, &store);

    for (&w, (a, b)) in workloads.iter().zip(cold.iter().zip(&warm)) {
        assert_eq!(a.len(), b.len());
        for ((ecc_a, ra), (ecc_b, rb)) in a.iter().zip(b) {
            assert_eq!(ecc_a, ecc_b);
            assert_eq!(
                failure_bits(ra),
                failure_bits(rb),
                "warm sweep diverged from cold ({} at {ecc_a:?})",
                w.name()
            );
        }
    }

    let hits = reap_obs::global().counter("capture_store.hit").get();
    assert_eq!(
        hits,
        workloads.len() as u64,
        "every warm workload must be served from the store"
    );

    let speedup = cold_s / warm_s;
    println!(
        "cold: {cold_s:.3} s   warm: {warm_s:.3} s   speedup: {speedup:.2}x \
         ({hits} store hits, bit-identical)"
    );

    let json = format!(
        "{{\n  \"accesses\": {accesses},\n  \"workloads\": {},\n  \"points\": {points},\n  \
         \"cold_s\": {cold_s:.6},\n  \"warm_s\": {warm_s:.6},\n  \"speedup\": {speedup:.3},\n  \
         \"hits\": {hits},\n  \"bit_identical\": true,\n  \"smoke\": {smoke}\n}}\n",
        workloads.len(),
    );
    std::fs::write(&out_path, json).expect("write benchmark results");
    println!("wrote {out_path}");
    std::fs::remove_dir_all(&dir).ok();

    let floor = if smoke { 1.0 } else { 2.0 };
    if speedup < floor {
        eprintln!("FAIL: warm sweep below the {floor:.0}x speedup floor ({speedup:.2}x)");
        std::process::exit(1);
    }
}
