//! Performance benchmark for the persistent capture store.
//!
//! Runs the full per-workload ECC sweep twice per on-disk format
//! (`reap-capture/1` and `/2`) against a fresh [`CaptureStore`] each:
//!
//! 1. **cold** — the store directory starts empty, so every workload pays
//!    its trace pass and persists the capture, and
//! 2. **warm** — the same sweep again, now served entirely from disk: the
//!    trace pass is skipped and only the replay kernel runs, streamed
//!    straight out of the decoder's reusable buffers (frame-by-frame for
//!    v2, block-by-block for v1) without materializing the event vector.
//!
//! Correctness gates: cold and warm must agree bit-for-bit within a
//! format, the v1 and v2 cold sweeps must agree bit-for-bit with each
//! other (the encoding must never leak into results), and every warm
//! workload must register a `capture_store.hit`. Performance gates: each
//! warm pass must clear the speedup floor (2x at full budget, 1x in
//! smoke mode — tiny captures leave little trace cost to amortise) and
//! the v2 store directory must be at least 2x smaller than v1 (1.2x in
//! smoke mode, where fixed headers dominate). The bench also reports the
//! peak RSS of each warm pass — the bounded-memory streaming claim in
//! numbers. Results land in `BENCH_capture.json` (override the path with
//! the first argument).
//!
//! `--smoke` (or `REAP_BENCH_SMOKE=1`) shrinks the access budget for CI.

use reap_bench::{access_budget, peak_rss_bytes, reset_peak_rss};
use reap_core::capture_store::{CaptureFormat, CapturePolicy, CaptureStore};
use reap_core::sweep::replay_ecc_sweep_with;
use reap_core::{EccStrength, Experiment, ProtectionScheme, Report};
use reap_trace::SpecWorkload;
use std::time::Instant;

fn failure_bits(r: &Report) -> [u64; 4] {
    [
        r.expected_failures(ProtectionScheme::Conventional)
            .to_bits(),
        r.expected_failures(ProtectionScheme::Reap).to_bits(),
        r.expected_failures(ProtectionScheme::SerialTagFirst)
            .to_bits(),
        r.writeback_exposure().to_bits(),
    ]
}

/// One store-backed ECC sweep over every workload, timed.
fn sweep_all(accesses: u64, store: &CaptureStore) -> (f64, Vec<Vec<(EccStrength, Report)>>) {
    let t0 = Instant::now();
    let results = SpecWorkload::ALL
        .iter()
        .map(|&w| {
            let experiment = Experiment::paper_hierarchy()
                .workload(w)
                .accesses(accesses)
                .seed(reap_bench::DEFAULT_SEED);
            replay_ecc_sweep_with(&experiment, Some(store)).expect("sweep")
        })
        .collect();
    (t0.elapsed().as_secs_f64(), results)
}

/// Total bytes of `.rcap` entries under a store directory.
fn store_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok()?.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Everything one format's cold/warm pair produces.
struct FormatRun {
    cold_s: f64,
    warm_s: f64,
    hits: u64,
    bytes: u64,
    bytes_written: u64,
    bytes_read: u64,
    warm_peak_rss: Option<u64>,
    results: Vec<Vec<(EccStrength, Report)>>,
}

/// Runs the cold+warm sweep pair for one on-disk format in a fresh store
/// directory, verifying warm ≡ cold bit-for-bit and full store service.
fn run_format(accesses: u64, format: CaptureFormat) -> FormatRun {
    let dir = std::env::temp_dir().join(format!(
        "reap-capture-bench-{}-{format}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = CaptureStore::new(&dir, CapturePolicy::ReadWrite).with_format(format);

    // Count the store traffic, so the bench can prove the warm pass was
    // actually served from disk rather than quietly recapturing. Reset
    // per format so the counters below cover exactly this pair.
    reap_bench::enable_telemetry();

    let (cold_s, cold) = sweep_all(accesses, &store);
    let bytes = store_bytes(&dir);

    // Scope the peak-RSS watermark to the warm pass: this is the memory
    // cost of replaying from disk, the number the streaming path bounds.
    let rss_scoped = reset_peak_rss();
    let (warm_s, warm) = sweep_all(accesses, &store);
    let warm_peak_rss = if rss_scoped { peak_rss_bytes() } else { None };

    for (&w, (a, b)) in SpecWorkload::ALL.iter().zip(cold.iter().zip(&warm)) {
        assert_eq!(a.len(), b.len());
        for ((ecc_a, ra), (ecc_b, rb)) in a.iter().zip(b) {
            assert_eq!(ecc_a, ecc_b);
            assert_eq!(
                failure_bits(ra),
                failure_bits(rb),
                "warm sweep diverged from cold ({format}, {} at {ecc_a:?})",
                w.name()
            );
        }
    }

    let registry = reap_obs::global();
    let hits = registry.counter("capture_store.hit").get();
    assert_eq!(
        hits,
        SpecWorkload::ALL.len() as u64,
        "every warm workload must be served from the store ({format})"
    );
    let bytes_written = registry.counter("capture_store.bytes_written").get();
    let bytes_read = registry.counter("capture_store.bytes_read").get();
    assert!(
        bytes_written >= bytes && bytes_read >= bytes,
        "store I/O counters must cover the on-disk entries ({format}: \
         wrote {bytes_written}, read {bytes_read}, on disk {bytes})"
    );

    std::fs::remove_dir_all(&dir).ok();
    FormatRun {
        cold_s,
        warm_s,
        hits,
        bytes,
        bytes_written,
        bytes_read,
        warm_peak_rss,
        results: cold,
    }
}

fn format_json(run: &FormatRun) -> String {
    let speedup = run.cold_s / run.warm_s;
    format!(
        "{{\n    \"cold_s\": {:.6},\n    \"warm_s\": {:.6},\n    \"speedup\": {speedup:.3},\n    \
         \"hits\": {},\n    \"store_bytes\": {},\n    \"bytes_written\": {},\n    \
         \"bytes_read\": {},\n    \"warm_peak_rss_bytes\": {}\n  }}",
        run.cold_s,
        run.warm_s,
        run.hits,
        run.bytes,
        run.bytes_written,
        run.bytes_read,
        run.warm_peak_rss
            .map_or("null".to_string(), |b| b.to_string()),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_capture.json");
    let mut metrics_out: Option<String> = None;
    let mut smoke = std::env::var("REAP_BENCH_SMOKE").is_ok_and(|v| v != "0");
    while let Some(a) = args.next() {
        if a == "--smoke" {
            smoke = true;
        } else if a == "--metrics-out" {
            metrics_out = Some(args.next().expect("--metrics-out needs a path"));
        } else {
            out_path = a;
        }
    }
    let accesses = if smoke { 20_000 } else { access_budget() };
    let workloads = SpecWorkload::ALL;
    let points = EccStrength::ALL.len();
    println!(
        "capture store benchmark — {} workloads x {points} ECC points, {accesses} accesses each, \
         formats v1+v2{}",
        workloads.len(),
        if smoke { " (smoke)" } else { "" }
    );

    let v1 = run_format(accesses, CaptureFormat::V1);
    let v2 = run_format(accesses, CaptureFormat::V2);

    // The serialization format must never leak into results: the v1 and
    // v2 cold sweeps saw identical captures, so they must agree exactly.
    for (&w, (a, b)) in workloads.iter().zip(v1.results.iter().zip(&v2.results)) {
        assert_eq!(a.len(), b.len());
        for ((ecc_a, ra), (ecc_b, rb)) in a.iter().zip(b) {
            assert_eq!(ecc_a, ecc_b);
            assert_eq!(
                failure_bits(ra),
                failure_bits(rb),
                "v2 sweep diverged from v1 ({} at {ecc_a:?})",
                w.name()
            );
        }
    }

    let speedup_v1 = v1.cold_s / v1.warm_s;
    let speedup_v2 = v2.cold_s / v2.warm_s;
    let compression_ratio = v1.bytes as f64 / v2.bytes.max(1) as f64;
    for (label, run, speedup) in [("v1", &v1, speedup_v1), ("v2", &v2, speedup_v2)] {
        println!(
            "{label}: cold {:.3} s   warm {:.3} s   speedup {speedup:.2}x   \
             {} B on disk   warm peak RSS {}",
            run.cold_s,
            run.warm_s,
            run.bytes,
            run.warm_peak_rss.map_or("n/a".to_string(), |b| format!(
                "{:.1} MiB",
                b as f64 / (1 << 20) as f64
            )),
        );
    }
    println!("compression: v2 entries {compression_ratio:.2}x smaller than v1 (bit-identical)");

    let json = format!(
        "{{\n  \"accesses\": {accesses},\n  \"workloads\": {},\n  \"points\": {points},\n  \
         \"v1\": {},\n  \"v2\": {},\n  \"compression_ratio\": {compression_ratio:.3},\n  \
         \"bit_identical\": true,\n  \"smoke\": {smoke}\n}}\n",
        workloads.len(),
        format_json(&v1),
        format_json(&v2),
    );
    std::fs::write(&out_path, json).expect("write benchmark results");
    println!("wrote {out_path}");

    // `run_format` resets the registry per format, so the snapshot here
    // covers the v2 cold/warm pair — the store path we actually ship.
    if let Some(path) = &metrics_out {
        let mut buf = Vec::new();
        reap_obs::export::write_jsonl(&reap_obs::global().snapshot(), &mut buf)
            .expect("serialize metrics");
        std::fs::write(path, buf).expect("write metrics");
        println!("wrote {path}");
    }

    let floor = if smoke { 1.0 } else { 2.0 };
    let mut failed = false;
    for (label, speedup) in [("v1", speedup_v1), ("v2", speedup_v2)] {
        if speedup < floor {
            eprintln!(
                "FAIL: {label} warm sweep below the {floor:.0}x speedup floor ({speedup:.2}x)"
            );
            failed = true;
        }
    }
    let size_floor = if smoke { 1.2 } else { 2.0 };
    if compression_ratio < size_floor {
        eprintln!(
            "FAIL: v2 store only {compression_ratio:.2}x smaller than v1 \
             (floor {size_floor:.1}x)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
