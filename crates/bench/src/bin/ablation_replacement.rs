//! Ablation **A4**: replacement policies and reliability. Recency
//! policies (LRU/PLRU/FIFO/random/SRRIP) are reliability-blind; the LER
//! policy (the paper's related work, ref. 13) victimizes the most
//! disturbance-exposed line, trading hit rate for a lower conventional
//! failure mass. REAP makes the choice moot: with per-read checking, the
//! policy can be chosen purely for performance.

use reap_bench::{access_budget, print_csv, DEFAULT_SEED};
use reap_cache::Replacement;
use reap_core::{Experiment, ProtectionScheme};
use reap_trace::SpecWorkload;

fn main() {
    let accesses = access_budget().min(4_000_000);
    let workload = SpecWorkload::Perlbench;
    println!("Ablation A4 — replacement policy vs reliability ({workload}, {accesses} accesses)");
    println!();
    println!(
        "{:<10} {:>10} {:>16} {:>16} {:>12}",
        "policy", "L2 hit%", "E[fail] conv", "E[fail] REAP", "REAP gain"
    );
    let mut rows = Vec::new();
    for policy in [
        Replacement::Lru,
        Replacement::TreePlru,
        Replacement::Fifo,
        Replacement::Random(7),
        Replacement::Srrip,
        Replacement::LeastErrorRate,
    ] {
        let report = Experiment::paper_hierarchy()
            .workload(workload)
            .accesses(accesses)
            .seed(DEFAULT_SEED)
            .replacement(policy)
            .run()
            .expect("valid configuration");
        let conv = report.expected_failures(ProtectionScheme::Conventional);
        let reap = report.expected_failures(ProtectionScheme::Reap);
        let hit = 100.0 * report.l2_stats().hit_rate();
        println!(
            "{:<10} {:>9.1}% {:>16.3e} {:>16.3e} {:>11.1}x",
            policy.to_string(),
            hit,
            conv,
            reap,
            report.mttf_improvement(ProtectionScheme::Reap)
        );
        rows.push(format!(
            "{},{:.3},{:.6e},{:.6e},{:.3}",
            policy,
            hit,
            conv,
            reap,
            report.mttf_improvement(ProtectionScheme::Reap)
        ));
    }
    println!();
    println!(
        "Reading: LER shifts failure mass out of the conventional cache by \
         evicting exposed lines, at a hit-rate penalty; under REAP the \
         failure mass is already per-read bounded, so the recency policies' \
         better hit rates win outright."
    );
    print_csv(
        "policy,l2_hit_pct,fail_conventional,fail_reap,reap_gain",
        &rows,
    );
}
