//! Regenerates the paper's **§III-B / §IV numeric example**
//! (Eqs. (4) and (5), and the REAP counterpart): a cache line with 100
//! stored `1`s at `P_rd = 1e-8` read 50 times.

use reap_core::analysis::NumericExample;

fn main() {
    let ex = NumericExample::compute();
    println!("Numeric example of §III-B / §IV (n = 100 ones, P_rd = 1e-8, N = 50)");
    println!();
    println!("{:<46} {:>12} {:>12}", "quantity", "computed", "paper");
    println!(
        "{:<46} {:>12.2e} {:>12}",
        "Eq. (4)  P_err single checked read", ex.p_err_single, "5.0e-13"
    );
    println!(
        "{:<46} {:>12.2e} {:>12}",
        "Eq. (5)  P_err after 50 accumulated reads", ex.p_err_accumulated, "1.3e-9"
    );
    println!(
        "{:<46} {:>12.2e} {:>12}",
        "§IV      P_err with REAP (50 checked reads)", ex.p_err_reap, "2.6e-11"
    );
    println!();
    println!(
        "accumulation penalty: {:>8.0}x   (paper: 'more than 3 orders of magnitude')",
        ex.p_err_accumulated / ex.p_err_single
    );
    println!(
        "REAP vs conventional: {:>8.1}x   (paper: '50x lower')",
        ex.p_err_accumulated / ex.p_err_reap
    );

    println!();
    println!("Sensitivity over N (same line):");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "N", "conventional", "REAP", "gain"
    );
    for n in [1u64, 10, 50, 100, 1_000, 10_000, 100_000] {
        let e = NumericExample::with_parameters(1e-8, 100, n);
        println!(
            "{:<8} {:>14.3e} {:>14.3e} {:>9.1}x",
            n,
            e.p_err_accumulated,
            e.p_err_reap,
            e.p_err_accumulated / e.p_err_reap
        );
    }
}
