//! Regenerates the device-level backdrop of **Fig. 1 / Eq. (1)**: the
//! read-disturbance probability as a function of read current, pulse
//! width and thermal stability.

use reap_bench::print_csv;
use reap_mtj::{read_current_for_probability, DisturbanceSweep, MtjParams};

fn main() {
    let nominal = MtjParams::default();
    println!("Eq. (1) — read-disturbance probability of one STT-MRAM cell");
    println!("nominal card: {nominal}");
    println!();
    println!("{:<14} {:>14}", "I_read (µA)", "P_rd per read");
    let mut rows = Vec::new();
    for (i, p) in DisturbanceSweep::over_read_current(nominal, 30e-6, 95e-6, 14) {
        println!("{:<14.1} {:>14.3e}", i * 1e6, p);
        rows.push(format!("{:.2e},{:.6e}", i, p));
    }

    println!();
    println!("{:<14} {:>14}", "Delta", "P_rd per read");
    for delta in [40.0, 50.0, 60.0, 70.0, 80.0] {
        let card = nominal.with_thermal_stability(delta).expect("valid");
        println!(
            "{:<14.0} {:>14.3e}",
            delta,
            reap_mtj::read_disturbance_probability(&card)
        );
    }

    println!();
    for target in [1e-9, 1e-8, 1e-6] {
        match read_current_for_probability(&nominal, target) {
            Some(i) => println!(
                "read current for P_rd = {target:.0e}: {:.1} µA ({:.0}% of Ic0)",
                i * 1e6,
                100.0 * i / nominal.critical_current()
            ),
            None => println!("read current for P_rd = {target:.0e}: unreachable"),
        }
    }

    print_csv("i_read_amps,p_rd", &rows);
}
