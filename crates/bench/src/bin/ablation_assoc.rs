//! Ablation **A2**: associativity sweep. Concealed reads scale with
//! `k − 1`, so the accumulation problem — and REAP's benefit — grows with
//! associativity; a direct-mapped cache has no concealed reads at all.

use reap_bench::{access_budget, print_csv};
use reap_cache::HierarchyConfig;
use reap_core::{Experiment, ProtectionScheme};
use reap_trace::SpecWorkload;

fn main() {
    let accesses = access_budget().min(4_000_000);
    println!("Ablation A2 — L2 associativity sweep (namd, {accesses} accesses)");
    println!();
    println!(
        "{:<6} {:>16} {:>14} {:>12} {:>12}",
        "ways", "concealed/acc", "REAP gain", "REAP +E%", "hit rate"
    );
    let mut rows = Vec::new();
    for ways in [1usize, 2, 4, 8, 16] {
        let hierarchy = HierarchyConfig::paper_with_l2_ways(ways).expect("valid geometry");
        let report = Experiment::paper_hierarchy()
            .workload(SpecWorkload::Namd)
            .hierarchy(hierarchy)
            .accesses(accesses)
            .seed(2019)
            .run()
            .expect("valid configuration");
        let concealed = report.mean_concealed_reads();
        let gain = report.mttf_improvement(ProtectionScheme::Reap);
        let energy = 100.0 * report.energy_overhead(ProtectionScheme::Reap);
        let hit = report.l2_stats().hit_rate();
        println!(
            "{:<6} {:>16.2} {:>13.1}x {:>+11.2}% {:>11.1}%",
            ways,
            concealed,
            gain,
            energy,
            100.0 * hit
        );
        rows.push(format!(
            "{ways},{concealed:.4},{gain:.3},{energy:.4},{hit:.4}"
        ));
    }
    println!();
    println!(
        "Reading: a direct-mapped L2 (k = 1) has no concealed reads, so REAP \
         degenerates to the conventional design; the gain grows with k - 1."
    );
    print_csv(
        "ways,concealed_per_access,reap_gain,reap_energy_pct,l2_hit_rate",
        &rows,
    );
}
