//! Regenerates **Fig. 6**: dynamic energy of REAP-cache normalized to the
//! conventional cache, per workload.
//!
//! Paper reference points: average +2.7 %, worst case +6.5 %
//! (`cactusADM`), best case +1.0 % (`xalancbmk`).

use reap_bench::{
    access_budget, arithmetic_mean, energy_overhead_percent, print_csv, sweep_all_workloads,
};
use reap_core::ProtectionScheme;

fn main() {
    let accesses = access_budget();
    println!("Fig. 6 — dynamic energy overhead of REAP over conventional");
    println!("({accesses} measured L1 accesses per workload, seed 2019)");
    println!();
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>12}",
        "workload", "REAP", "restore", "serial", "ECC share"
    );

    let mut overheads = Vec::new();
    let mut rows = Vec::new();
    for (w, report) in sweep_all_workloads(accesses) {
        let reap = energy_overhead_percent(&report);
        let restore = 100.0 * report.energy_overhead(ProtectionScheme::DisruptiveRestore);
        let serial = 100.0 * report.energy_overhead(ProtectionScheme::SerialTagFirst);
        let ecc_share = 100.0 * report.energy(ProtectionScheme::Conventional).ecc_fraction();
        println!(
            "{:<12} {:>+11.2}% {:>+13.1}% {:>+13.1}% {:>11.3}%",
            w.name(),
            reap,
            restore,
            serial,
            ecc_share
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            w.name(),
            reap,
            restore,
            serial,
            ecc_share
        ));
        overheads.push(reap);
    }

    println!();
    println!(
        "average REAP overhead {:>+7.2}%   (paper: +2.7%)",
        arithmetic_mean(&overheads)
    );
    let min = overheads.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = overheads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("best case             {min:>+7.2}%   (paper: +1.0%, xalancbmk)");
    println!("worst case            {max:>+7.2}%   (paper: +6.5%, cactusADM)");

    print_csv(
        "workload,reap_pct,restore_pct,serial_pct,ecc_share_pct",
        &rows,
    );
}
