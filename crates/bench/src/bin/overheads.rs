//! Regenerates the **§V-B area and access-time claims**: the ECC decoder
//! is ~0.1 % of cache area, so replicating it per way costs <1 %; and the
//! REAP read path is never longer than the conventional one.

use reap_core::{ProtectionScheme, ReadPathModel};
use reap_ecc::{DecoderCost, EccCode, HammingSec};
use reap_nvarray::{estimate, ArraySpec, MemTech, TechnologyNode};

fn main() {
    let node = TechnologyNode::nm(22).expect("supported node");
    let code = HammingSec::new(512).expect("SEC for a 512-bit line");
    let spec = ArraySpec::new(1 << 20, 64, 8)
        .expect("Table I geometry")
        .with_check_bits(code.check_bits());
    let array = estimate(&spec, MemTech::SttMram, node);
    let decoder = DecoderCost::estimate(&code, 22);

    println!("§V-B — area and access-time overheads of REAP (Table I L2, 22 nm)");
    println!();
    println!("cache array area          {:>10.4} mm²", array.area * 1e6);
    println!("one ECC decoder area      {:>10.6} mm²", decoder.area * 1e6);
    let one = 100.0 * decoder.area / array.area;
    println!("decoder / cache           {:>10.4} %   (paper: ~0.1%)", one);
    let eight = decoder.replicated(8);
    let k_minus_1 = 100.0 * (eight.area - decoder.area) / array.area;
    println!(
        "extra 7 decoders / cache  {:>10.4} %   (paper: <1%)",
        k_minus_1
    );
    assert!(k_minus_1 < 1.0, "the <1% claim must hold in the model");
    println!();

    let model = ReadPathModel::new(array, decoder);
    println!("{:<30} {:>14} {:>14}", "scheme", "access time", "bank busy");
    for s in ProtectionScheme::ALL {
        println!(
            "{:<30} {:>11.3} ns {:>11.3} ns",
            s.to_string(),
            model.read_access_time(s) * 1e9,
            model.bank_busy_time(s) * 1e9
        );
    }
    let delta = model.reap_access_time_delta();
    println!();
    println!(
        "REAP vs conventional access-time delta: {:+.3} ns (paper: 'less than or equal')",
        delta * 1e9
    );
    assert!(delta <= 1e-15, "REAP must not lengthen the read path");

    println!();
    println!(
        "read-path components: tag {:.3} ns, data {:.3} ns, mux {:.3} ns, ecc {:.3} ns",
        array.tag_latency * 1e9,
        array.data_read_latency * 1e9,
        array.mux_latency * 1e9,
        DecoderCost::estimate(&code, 22).latency * 1e9,
    );
}
