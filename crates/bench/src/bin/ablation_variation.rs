//! Ablation **A5**: process variation. The nominal card's `P_rd` is the
//! median cell; fabricated arrays have a distribution whose *tail* cells
//! dominate block failure probability (the disturbance probability is
//! exponential in Δ, so `E[p] > p(E[delta])`). This experiment re-evaluates the
//! cache failure laws at variation-aware effective probabilities.
//!
//! Runs two-phase: the variation-adjusted MTJ card is analysis-side, so
//! one exposure capture of the workload replays at every sigma point —
//! bit-identical to per-point runs, paying the trace cost once.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reap_bench::{
    access_budget, enable_telemetry, print_csv, print_two_phase_summary, DEFAULT_SEED,
};
use reap_core::{Experiment, ProtectionScheme};
use reap_mtj::{read_disturbance_probability, MtjParams, VariationModel};
use reap_trace::SpecWorkload;

fn main() {
    enable_telemetry();
    let accesses = access_budget().min(2_000_000);
    let nominal = MtjParams::default();
    let sigmas = [0.0, 0.02, 0.05, 0.08];
    println!("Ablation A5 — process variation and the effective disturbance rate");
    println!(
        "nominal card: {nominal}, P_rd = {:.3e}",
        read_disturbance_probability(&nominal)
    );
    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>16} {:>12}",
        "sigma(Δ)/Δ", "mean P_rd", "max P_rd (10k)", "E[fail] conv", "REAP gain"
    );

    let base = Experiment::paper_hierarchy()
        .workload(SpecWorkload::Calculix)
        .accesses(accesses)
        .seed(DEFAULT_SEED);
    let capture = base.capture().expect("valid configuration");
    let mut rows = Vec::new();
    for sigma in sigmas {
        let model = VariationModel::new(sigma, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(99);
        let (mean_p, max_p) = model.disturbance_statistics(&nominal, 10_000, &mut rng);
        // Evaluate the cache at the variation-aware mean cell probability:
        // the block failure law is linear in per-cell probability mass for
        // the dominant double-error term, so E over cells of p is the
        // first-order effective rate.
        let i_eff = reap_mtj::read_current_for_probability(&nominal, mean_p.min(0.5));
        let card = match i_eff {
            Some(i) => nominal.with_read_current(i).expect("valid current"),
            None => nominal,
        };
        let report = base
            .clone()
            .mtj(card)
            .replay(&capture)
            .expect("capture shares the behavioural configuration");
        let conv = report.expected_failures(ProtectionScheme::Conventional);
        let gain = report.mttf_improvement(ProtectionScheme::Reap);
        println!(
            "{:<12.2} {:>14.3e} {:>14.3e} {:>16.3e} {:>11.1}x",
            sigma, mean_p, max_p, conv, gain
        );
        rows.push(format!(
            "{sigma},{mean_p:.6e},{max_p:.6e},{conv:.6e},{gain:.3}"
        ));
    }
    println!();
    print_two_phase_summary();
    println!();
    println!(
        "Reading: a few percent of Δ variation multiplies the effective \
         disturbance rate (the mean is dragged up by tail cells); the \
         absolute failure mass grows for both designs, while REAP's relative \
         gain — set by the concealed-read distribution — is stable."
    );
    print_csv(
        "sigma_delta,mean_p_rd,max_p_rd,fail_conventional,reap_gain",
        &rows,
    );
}
