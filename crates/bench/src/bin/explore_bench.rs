//! Performance benchmark for `reap explore`, the design-space layer.
//!
//! Runs the same multi-hundred-point exploration twice against one
//! persistent [`CaptureStore`]:
//!
//! 1. **cold** — the store starts empty, so every (geometry, scrub,
//!    workload) combination pays its trace pass before the batched
//!    replay scores all (ECC, read-current) points against it;
//! 2. **warm** — the store now holds every capture (including the ones
//!    the refinement pass minted), so the exploration is pure store
//!    reads plus batched replays.
//!
//! The two outcomes must agree bit-for-bit — the bench doubles as an
//! end-to-end determinism check at realistic scale — and the warm pass
//! must be at least 2× faster than the cold one (the process exits
//! non-zero otherwise): that ratio is the whole point of factoring the
//! grid into behavioural captures and analysis replays. Telemetry
//! counters are asserted, not just reported: the grid must have been
//! scored through `sim.replay_batch.points` and the warm pass must be
//! all `capture_store.hit`, zero `capture_store.miss`. Results land in
//! `BENCH_explore.json` (override the path with the first argument).
//!
//! `--smoke` (or `REAP_BENCH_SMOKE=1`) shrinks the grid and the access
//! budget for CI.

use reap_core::explore::{explore, parse_grid, ExploreConfig, ExploreRow};
use reap_core::{CapturePolicy, CaptureStore};
use std::time::Instant;

/// 3 ways × 2 scrub periods × 3 ECC strengths × 13 read currents =
/// 234 base points, behind only 6 behavioural captures per workload.
const FULL_GRID: &str = "ways=4,8,16 scrub=0,50k ecc=sec,dec,tec read-current=0.7:1.0:0.025";
/// 1 × 2 × 2 × 2 = 8 base points, 2 captures per workload.
const SMOKE_GRID: &str = "scrub=0,2k ecc=sec,dec read-current=0.8,1.0";

fn row_bits(rows: &[ExploreRow]) -> Vec<(usize, u64, usize, u64, u64, u64, u64)> {
    rows.iter()
        .map(|r| {
            (
                r.ways,
                r.scrub,
                r.ecc.t(),
                r.read_scale.to_bits(),
                r.mttf_s.to_bits(),
                r.energy_j.to_bits(),
                r.area_mm2.to_bits(),
            )
        })
        .collect()
}

fn counter(name: &str) -> u64 {
    reap_obs::global().counter(name).get()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_explore.json");
    let mut metrics_out: Option<String> = None;
    let mut smoke = std::env::var("REAP_BENCH_SMOKE").is_ok_and(|v| v != "0");
    while let Some(a) = args.next() {
        if a == "--smoke" {
            smoke = true;
        } else if a == "--metrics-out" {
            metrics_out = Some(args.next().expect("--metrics-out needs a path"));
        } else {
            out_path = a;
        }
    }
    // The counter assertions below need live telemetry regardless of
    // whether a metrics file was requested.
    reap_bench::enable_telemetry();

    let (grid_spec, accesses) = if smoke {
        (SMOKE_GRID, 20_000)
    } else {
        (FULL_GRID, reap_bench::access_budget().min(1_000_000))
    };
    let grid = parse_grid(grid_spec).expect("benchmark grid is valid");
    let base_points = grid.point_count();
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "explore benchmark — {base_points}-point base grid, {accesses} accesses per workload{}",
        if smoke { " (smoke)" } else { "" }
    );

    let dir = std::env::temp_dir().join(format!("reap-explore-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = CaptureStore::new(dir.clone(), CapturePolicy::ReadWrite);
    let mut config = ExploreConfig::new(grid, accesses, reap_bench::DEFAULT_SEED, parallelism);
    config.capture_store = Some(store);

    let t0 = Instant::now();
    let cold = explore(&config).expect("cold exploration");
    let cold_s = t0.elapsed().as_secs_f64();
    let misses_after_cold = counter("capture_store.miss");

    let t1 = Instant::now();
    let warm = explore(&config).expect("warm exploration");
    let warm_s = t1.elapsed().as_secs_f64();
    let warm_hits = counter("capture_store.hit");
    let warm_misses = counter("capture_store.miss") - misses_after_cold;

    assert_eq!(
        row_bits(&cold.rows),
        row_bits(&warm.rows),
        "warm-store exploration diverged from the cold one"
    );
    assert_eq!(cold.front, warm.front, "Pareto front diverged");
    let batch_points = counter("sim.replay_batch.points");
    assert!(
        batch_points as usize >= cold.rows.len(),
        "grid must be scored through the batched replay kernel \
         ({batch_points} batch points < {} rows)",
        cold.rows.len()
    );
    assert_eq!(warm_misses, 0, "warm exploration must be all store hits");
    assert!(warm_hits > 0, "warm exploration never touched the store");

    let total_points = cold.rows.len();
    let front_size = cold.front.len();
    let refined_points = cold.refined_points;
    let warm_speedup = cold_s / warm_s;
    println!(
        "cold: {cold_s:.3} s   warm: {warm_s:.3} s   speedup: {warm_speedup:.2}x   \
         ({total_points} points, {refined_points} refined, front {front_size}, \
         {batch_points} batch-replayed, warm hits {warm_hits}, bit-identical)"
    );

    let json = format!(
        "{{\n  \"grid\": \"{grid_spec}\",\n  \"accesses\": {accesses},\n  \
         \"base_points\": {base_points},\n  \"refined_points\": {refined_points},\n  \
         \"total_points\": {total_points},\n  \"front_size\": {front_size},\n  \
         \"cold_s\": {cold_s:.6},\n  \"warm_s\": {warm_s:.6},\n  \
         \"warm_speedup\": {warm_speedup:.3},\n  \
         \"replay_batch_points\": {batch_points},\n  \
         \"warm_store_hits\": {warm_hits},\n  \"warm_store_misses\": {warm_misses},\n  \
         \"bit_identical\": true,\n  \"smoke\": {smoke}\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write benchmark results");
    println!("wrote {out_path}");

    if let Some(path) = &metrics_out {
        let mut buf = Vec::new();
        reap_obs::export::write_jsonl(&reap_obs::global().snapshot(), &mut buf)
            .expect("serialize metrics");
        std::fs::write(path, buf).expect("write metrics");
        println!("wrote {path}");
    }
    std::fs::remove_dir_all(&dir).ok();

    if warm_speedup < 2.0 {
        eprintln!("FAIL: warm-store exploration under 2x faster than cold ({warm_speedup:.2}x)");
        std::process::exit(1);
    }
}
