//! Ablation **A6**: operating temperature. STT-MRAM disturbance is
//! exponential in the thermal stability factor, which softens with die
//! temperature, so the accumulation problem explodes on a hot die. REAP's
//! relative gain is temperature-independent (it is set by the
//! concealed-read distribution), but the *absolute* margin it restores
//! decides whether a target FIT rate survives at `T_max`.
//!
//! Runs two-phase: the MTJ card only rescales the per-read disturbance
//! probability, so one exposure capture of the workload replays at every
//! temperature point — bit-identical to per-point runs, paying the trace
//! cost once instead of five times.

use reap_bench::{
    access_budget, enable_telemetry, print_csv, print_two_phase_summary, DEFAULT_SEED,
};
use reap_core::{Experiment, ProtectionScheme};
use reap_mtj::temperature::at_temperature;
use reap_mtj::{read_disturbance_probability, MtjParams};
use reap_trace::SpecWorkload;

fn main() {
    enable_telemetry();
    let accesses = access_budget().min(2_000_000);
    let nominal = MtjParams::default();
    let temperatures = [300.0, 320.0, 340.0, 360.0, 380.0];
    println!("Ablation A6 — die temperature (h264ref, {accesses} accesses)");
    println!();
    println!(
        "{:<8} {:>8} {:>12} {:>16} {:>14} {:>12}",
        "T (K)", "Delta", "P_rd", "E[fail] conv", "MTTF conv", "REAP gain"
    );
    let base = Experiment::paper_hierarchy()
        .workload(SpecWorkload::H264ref)
        .accesses(accesses)
        .seed(DEFAULT_SEED);
    let capture = base.capture().expect("valid configuration");
    let mut rows = Vec::new();
    for t in temperatures {
        let card = at_temperature(&nominal, t).expect("within operating range");
        let p_rd = read_disturbance_probability(&card);
        let report = base
            .clone()
            .mtj(card)
            .replay(&capture)
            .expect("capture shares the behavioural configuration");
        let conv = report.expected_failures(ProtectionScheme::Conventional);
        let gain = report.mttf_improvement(ProtectionScheme::Reap);
        let mttf = report.mttf(ProtectionScheme::Conventional);
        println!(
            "{:<8.0} {:>8.1} {:>12.3e} {:>16.3e} {:>14} {:>11.1}x",
            t,
            card.thermal_stability(),
            p_rd,
            conv,
            mttf.to_string(),
            gain
        );
        rows.push(format!(
            "{t},{:.2},{p_rd:.6e},{conv:.6e},{:.6e},{gain:.3}",
            card.thermal_stability(),
            mttf.as_seconds()
        ));
    }
    println!();
    print_two_phase_summary();
    println!();
    println!(
        "Reading: 80 K of heating costs several orders of magnitude of MTTF \
         in the conventional design; REAP's multiplicative gain moves the \
         whole curve up, buying back the thermal margin."
    );
    print_csv(
        "t_kelvin,delta,p_rd,fail_conventional,mttf_conv_seconds,reap_gain",
        &rows,
    );
}
