//! Ablation **A3**: the full design space of §IV — conventional,
//! REAP, serial tag-first (approach 1) and disruptive-restore (refs. 14, 15 of the paper) —
//! on reliability, energy and access time simultaneously.

use reap_bench::{access_budget, print_csv, run_workload};
use reap_core::ProtectionScheme;
use reap_trace::SpecWorkload;

fn main() {
    let accesses = access_budget().min(4_000_000);
    let workloads = [
        SpecWorkload::DealII,
        SpecWorkload::Mcf,
        SpecWorkload::CactusAdm,
    ];
    let mut rows = Vec::new();
    for w in workloads {
        let report = run_workload(w, accesses);
        println!("Ablation A3 — scheme comparison on {w} ({accesses} accesses)");
        println!(
            "{:<30} {:>12} {:>12} {:>14} {:>12}",
            "scheme", "MTTF gain", "energy", "access time", "bank busy"
        );
        for s in ProtectionScheme::ALL {
            let gain = report.mttf_improvement(s);
            let energy = 100.0 * report.energy_overhead(s);
            let t_ns = report.access_time(s) * 1e9;
            println!(
                "{:<30} {:>11.1}x {:>+11.2}% {:>11.3} ns {:>12}",
                s.to_string(),
                gain,
                energy,
                t_ns,
                if s.restores_after_read() {
                    "(+write)"
                } else {
                    ""
                }
            );
            rows.push(format!(
                "{},{},{:.3},{:.4},{:.4}",
                w.name(),
                s.id(),
                gain,
                energy,
                t_ns
            ));
        }
        println!();
    }
    println!(
        "Reading: serial access matches REAP's reliability but pays the full \
         serialized latency on every read; restore matches it while multiplying \
         write energy and wear. REAP alone keeps the fast parallel path."
    );
    print_csv("workload,scheme,mttf_gain,energy_pct,access_time_ns", &rows);
}
