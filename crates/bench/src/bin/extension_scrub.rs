//! Extension **E-SCRUB**: periodic scrubbing as the classical alternative
//! to REAP. A scrub sweep reads, checks and rewrites every valid L2 line
//! every `P` demand accesses, bounding accumulation at the cost of extra
//! array reads/decodes (and bank occupancy). REAP is the `P → 1-access`
//! limit at far lower cost because its checks ride on reads that happen
//! anyway.
//!
//! Runs two-phase: the scrub period is *behavioural* — it changes which
//! exposure events occur — so each period gets its own capture pass, but
//! every capture then replays across all three ECC strengths
//! analysis-side. The trace is driven once per period instead of once per
//! `(period, ECC)` point.
//!
//! Accounting note: every configuration (including the no-scrub baseline)
//! receives one *terminal* scrub so that disturbance still latent in
//! resident lines at window end is counted everywhere — otherwise the
//! no-scrub baseline would silently truncate its own accumulated risk.

use reap_bench::{access_budget, enable_telemetry, print_csv, TwoPhaseSummary, DEFAULT_SEED};
use reap_cache::{sample_ones, Hierarchy, HierarchyConfig, Replacement};
use reap_core::{
    CaptureObserver, EccStrength, ExposureCapture, ExposureStream, HierarchySnapshot,
    SimulationConfig,
};
use reap_mtj::read_disturbance_probability;
use reap_reliability::{AccumulationModel, ReplayAggregator};
use reap_trace::SpecWorkload;

/// Phase 1 for one scrub period: drives the paper hierarchy once with a
/// [`CaptureObserver`], scrubbing the L2 every `period` accesses (`None` =
/// unscrubbed), and returns the analysis-independent capture plus the
/// number of scrub checks performed.
fn capture_with_scrub(
    workload: SpecWorkload,
    accesses: u64,
    period: Option<u64>,
) -> (ExposureCapture, u64) {
    // The hand-rolled trace pass records itself under the same phase name
    // Simulator::capture uses, so the shared two-phase summary covers it.
    let mut span = reap_obs::span("capture");
    let config = HierarchyConfig::paper();
    let line_bits = config.l2.line_bits();
    let mut hierarchy = Hierarchy::new(config.clone(), Replacement::Lru);
    let ones_seed = hierarchy.l2().ones_seed();
    let mut observer = CaptureObserver::new();
    let mut stream = workload.stream(DEFAULT_SEED);
    let warmup = accesses / 10;
    for a in stream.by_ref().take(warmup as usize) {
        hierarchy.access(a, &mut ());
    }
    hierarchy.l2_mut().reset_stats();
    let mut since_scrub = 0u64;
    for a in stream.take(accesses as usize) {
        hierarchy.access(a, &mut observer);
        if let Some(p) = period {
            since_scrub += 1;
            if since_scrub >= p {
                hierarchy.l2_mut().scrub(&mut observer);
                since_scrub = 0;
            }
        }
    }
    // Terminal scrub: surface latent accumulation in every configuration.
    hierarchy.l2_mut().scrub(&mut observer);
    let scrub_checks = hierarchy.l2().stats().scrub_checks;
    let capture = ExposureCapture::from_parts(
        observer.into_records(),
        HierarchySnapshot::of(&hierarchy),
        line_bits,
        ones_seed,
        config,
        Replacement::Lru,
        warmup,
        accesses,
        period.unwrap_or(0),
    );
    span.add_events(warmup + accesses);
    (capture, scrub_checks)
}

/// Phase 2: scores a capture at one ECC strength, resampling each event's
/// line weight at that strength's stored width. Returns conventional and
/// REAP expected failures.
fn replay_at(capture: &ExposureCapture, ecc: EccStrength, p_rd: f64) -> (f64, f64) {
    let mut span = reap_obs::span("replay");
    span.add_events(capture.event_count());
    let check_bits = ecc
        .build_code(capture.line_bits())
        .expect("code fits a 64 B line")
        .check_bits();
    let stored_bits = capture.line_bits() + check_bits;
    let mut agg = ReplayAggregator::new(AccumulationModel::new(p_rd, ecc.t()), stored_bits as u32);
    let seed = capture.ones_seed();
    let mut events = capture.iter().expect("local capture streams");
    while let Some(record) = events.next_record().expect("local capture streams") {
        let ones = sample_ones(
            seed,
            record.key.tag,
            record.key.set,
            record.key.version,
            stored_bits,
        );
        agg.record(record.kind, ones, record.unchecked_reads);
    }
    (
        agg.conventional().expected_failures(),
        agg.reap().expected_failures(),
    )
}

/// Replays one capture at every ECC strength, returning the per-strength
/// `(conventional, REAP)` failures.
fn replay_all(capture: &ExposureCapture, p_rd: f64) -> [(f64, f64); 3] {
    let mut out = [(0.0, 0.0); 3];
    for (i, ecc) in EccStrength::ALL.into_iter().enumerate() {
        out[i] = replay_at(capture, ecc, p_rd);
    }
    out
}

fn main() {
    enable_telemetry();
    let accesses = access_budget().min(4_000_000);
    let workload = SpecWorkload::DealII;
    let p_rd = read_disturbance_probability(&SimulationConfig::default().mtj);
    let periods = [1_000_000u64, 300_000, 100_000, 30_000, 10_000];

    println!("Extension — periodic scrubbing vs REAP ({workload}, {accesses} accesses)");
    println!();
    let (baseline, _) = capture_with_scrub(workload, accesses, None);
    let base_fails = replay_all(&baseline, p_rd);
    let (no_scrub, reap) = base_fails[0];
    println!("no scrub (conventional): E[fail] = {no_scrub:.3e}");
    println!(
        "REAP                   : E[fail] = {reap:.3e}  (gain {:.1}x)",
        no_scrub / reap
    );
    println!();
    println!(
        "{:>12} {:>16} {:>12} {:>14} {:>16}",
        "scrub period", "E[fail] SEC", "gain", "scrub checks", "extra reads/acc"
    );

    let mut rows = Vec::new();
    let mut cross = vec![("none".to_string(), base_fails)];
    for period in periods {
        let (capture, scrubs) = capture_with_scrub(workload, accesses, Some(period));
        let fails = replay_all(&capture, p_rd);
        let (fail, _) = fails[0];
        let extra = scrubs as f64 / accesses as f64;
        println!(
            "{:>12} {:>16.3e} {:>11.1}x {:>14} {:>16.3}",
            period,
            fail,
            no_scrub / fail,
            scrubs,
            extra
        );
        rows.push(format!(
            "{period},{fail:.6e},{:.3},{scrubs},{extra:.4},{:.6e},{:.6e}",
            no_scrub / fail,
            fails[1].0,
            fails[2].0
        ));
        cross.push((period.to_string(), fails));
    }

    println!();
    println!(
        "Scrub period × ECC strength (conventional E[fail]; one capture per row, three replays):"
    );
    println!(
        "{:>12} {:>16} {:>16} {:>16}",
        "scrub period", "SEC", "DEC", "TEC"
    );
    for (label, fails) in &cross {
        println!(
            "{:>12} {:>16.3e} {:>16.3e} {:>16.3e}",
            label, fails[0].0, fails[1].0, fails[2].0
        );
    }

    println!();
    let s = TwoPhaseSummary::from_global();
    println!(
        "Two-phase cost: {:.2} s capturing {} periods + {:.2} s replaying {} \
         (period, ECC) points (vs ≈{:.2} s for {} from-scratch runs — {:.1}x speedup)",
        s.capture_s,
        s.captures,
        s.replay_s,
        s.replays,
        s.estimated_single_pass_s(),
        s.replays,
        s.speedup()
    );
    println!();
    println!(
        "Reading: scrubbing approaches REAP's reliability only when the sweep \
         period shrinks toward the inter-access scale, by which point the \
         scrub traffic rivals the demand traffic; REAP gets the same \
         guarantee from decoders on reads that happen anyway."
    );
    print_csv(
        "scrub_period,expected_failures,gain_vs_no_scrub,scrub_checks,extra_reads_per_access,fail_dec,fail_tec",
        &rows,
    );
}
