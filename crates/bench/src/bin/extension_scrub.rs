//! Extension **E-SCRUB**: periodic scrubbing as the classical alternative
//! to REAP. A scrub sweep reads, checks and rewrites every valid L2 line
//! every `P` demand accesses, bounding accumulation at the cost of extra
//! array reads/decodes (and bank occupancy). REAP is the `P → 1-access`
//! limit at far lower cost because its checks ride on reads that happen
//! anyway.
//!
//! Accounting note: every configuration (including the no-scrub baseline)
//! receives one *terminal* scrub so that disturbance still latent in
//! resident lines at window end is counted everywhere — otherwise the
//! no-scrub baseline would silently truncate its own accumulated risk.

use reap_bench::{access_budget, print_csv, DEFAULT_SEED};
use reap_cache::{Hierarchy, HierarchyConfig, Replacement};
use reap_core::{ReliabilityObserver, SimulationConfig};
use reap_mtj::read_disturbance_probability;
use reap_reliability::AccumulationModel;
use reap_trace::SpecWorkload;

/// Runs the paper hierarchy with a scrub every `period` accesses
/// (`None` = unscrubbed) and returns (expected failures, scrub checks,
/// REAP expected failures).
fn run_with_scrub(
    workload: SpecWorkload,
    accesses: u64,
    period: Option<u64>,
    p_rd: f64,
) -> (f64, u64, f64) {
    let mut hierarchy = Hierarchy::new(HierarchyConfig::paper(), Replacement::Lru);
    let stored_bits = hierarchy.l2().stored_line_bits() as u32;
    let mut observer = ReliabilityObserver::new(AccumulationModel::sec(p_rd), stored_bits);
    let mut stream = workload.stream(DEFAULT_SEED);
    for a in stream.by_ref().take(accesses as usize / 10) {
        hierarchy.access(a, &mut ());
    }
    hierarchy.l2_mut().reset_stats();
    let mut since_scrub = 0u64;
    for a in stream.take(accesses as usize) {
        hierarchy.access(a, &mut observer);
        if let Some(p) = period {
            since_scrub += 1;
            if since_scrub >= p {
                hierarchy.l2_mut().scrub(&mut observer);
                since_scrub = 0;
            }
        }
    }
    // Terminal scrub: surface latent accumulation in every configuration.
    hierarchy.l2_mut().scrub(&mut observer);
    (
        observer.conventional().expected_failures(),
        hierarchy.l2().stats().scrub_checks,
        observer.reap().expected_failures(),
    )
}

fn main() {
    let accesses = access_budget().min(4_000_000);
    let workload = SpecWorkload::DealII;
    let p_rd = read_disturbance_probability(&SimulationConfig::default().mtj);

    println!("Extension — periodic scrubbing vs REAP ({workload}, {accesses} accesses)");
    println!();
    let (no_scrub, _, reap) = run_with_scrub(workload, accesses, None, p_rd);
    println!("no scrub (conventional): E[fail] = {no_scrub:.3e}");
    println!(
        "REAP                   : E[fail] = {reap:.3e}  (gain {:.1}x)",
        no_scrub / reap
    );
    println!();
    println!(
        "{:>12} {:>16} {:>12} {:>14} {:>16}",
        "scrub period", "E[fail]", "gain", "scrub checks", "extra reads/acc"
    );

    let mut rows = Vec::new();
    for period in [1_000_000u64, 300_000, 100_000, 30_000, 10_000] {
        let (fail, scrubs, _) = run_with_scrub(workload, accesses, Some(period), p_rd);
        let extra = scrubs as f64 / accesses as f64;
        println!(
            "{:>12} {:>16.3e} {:>11.1}x {:>14} {:>16.3}",
            period,
            fail,
            no_scrub / fail,
            scrubs,
            extra
        );
        rows.push(format!(
            "{period},{fail:.6e},{:.3},{scrubs},{extra:.4}",
            no_scrub / fail
        ));
    }
    println!();
    println!(
        "Reading: scrubbing approaches REAP's reliability only when the sweep \
         period shrinks toward the inter-access scale, by which point the \
         scrub traffic rivals the demand traffic; REAP gets the same \
         guarantee from decoders on reads that happen anyway."
    );
    print_csv(
        "scrub_period,expected_failures,gain_vs_no_scrub,scrub_checks,extra_reads_per_access",
        &rows,
    );
}
