//! Extension **E-WB**: the write-back exposure channel the paper does not
//! model. A dirty line evicted after `N` unchecked reads carries its
//! accumulated disturbance *into main memory* through the write-back path.
//! The conventional cache forwards that data unchecked; REAP has already
//! checked every read, so the victim is clean up to one read's
//! disturbance.

use reap_bench::{access_budget, print_csv, run_workload};
use reap_core::ProtectionScheme;
use reap_trace::SpecWorkload;

fn main() {
    let accesses = access_budget().min(4_000_000);
    println!("Extension — unchecked failure probability escaping via write-backs");
    println!("({accesses} accesses per workload)");
    println!();
    println!(
        "{:<12} {:>10} {:>16} {:>18} {:>14}",
        "workload", "dirty ev.", "wb exposure", "demand E[fail]", "wb / demand"
    );
    let mut rows = Vec::new();
    for w in [
        SpecWorkload::Xalancbmk,
        SpecWorkload::Lbm,
        SpecWorkload::Mcf,
        SpecWorkload::Perlbench,
        SpecWorkload::DealII,
    ] {
        let report = run_workload(w, accesses);
        let exposure = report.writeback_exposure();
        let demand = report.expected_failures(ProtectionScheme::Conventional);
        let dirty = report.l2_stats().dirty_evictions;
        let ratio = if demand > 0.0 {
            exposure / demand
        } else {
            f64::NAN
        };
        println!(
            "{:<12} {:>10} {:>16.3e} {:>18.3e} {:>14.3}",
            w.name(),
            dirty,
            exposure,
            demand,
            ratio
        );
        rows.push(format!(
            "{},{dirty},{exposure:.6e},{demand:.6e},{ratio:.4}",
            w.name()
        ));
    }
    println!();
    println!(
        "Reading: for write-heavy workloads the unchecked write-back channel \
         carries failure probability comparable to the demand-read channel — \
         silent data corruption in DRAM that neither Fig. 5 nor a memory-side \
         scrubber attributes to the cache. REAP closes this channel for free \
         (the write-back read passes through its per-way decoders)."
    );
    print_csv(
        "workload,dirty_evictions,writeback_exposure,demand_expected_failures,ratio",
        &rows,
    );
}
