//! Ablation **A1**: ECC strength sweep. The paper's introduction
//! motivates "aggressive ECCs"; this experiment quantifies how far DEC/TEC
//! codes push the conventional cache, and shows REAP + SEC still wins at
//! far lower check-bit cost in the high-accumulation regime.
//!
//! Runs two-phase: one exposure capture per workload, replayed at every
//! ECC strength — the results are bit-identical to per-point runs (the
//! replay-equivalence property tests enforce this), at roughly a third of
//! the trace-driving cost.

use reap_bench::{access_budget, enable_telemetry, print_csv, print_two_phase_summary};
use reap_core::{EccStrength, Experiment, ProtectionScheme};
use reap_trace::SpecWorkload;

fn main() {
    enable_telemetry();
    let accesses = access_budget().min(2_000_000);
    let workloads = [
        SpecWorkload::Namd,
        SpecWorkload::Perlbench,
        SpecWorkload::Mcf,
    ];
    println!("Ablation A1 — ECC strength sweep ({accesses} accesses per capture)");
    println!();
    println!(
        "{:<12} {:>5} {:>7} {:>16} {:>16} {:>12}",
        "workload", "ECC", "check", "E[fail] conv", "E[fail] REAP", "REAP gain"
    );
    let mut rows = Vec::new();
    for w in workloads {
        let base = Experiment::paper_hierarchy()
            .workload(w)
            .accesses(accesses)
            .seed(2019);
        let capture = base.capture().expect("valid configuration");
        for ecc in EccStrength::ALL {
            let report = base
                .clone()
                .ecc(ecc)
                .replay(&capture)
                .expect("capture shares the behavioural configuration");
            let conv = report.expected_failures(ProtectionScheme::Conventional);
            let reap = report.expected_failures(ProtectionScheme::Reap);
            let gain = report.mttf_improvement(ProtectionScheme::Reap);
            let check = ecc.build_code(512).expect("fits").check_bits();
            println!(
                "{:<12} {:>5} {:>7} {:>16.3e} {:>16.3e} {:>11.1}x",
                w.name(),
                ecc.to_string(),
                check,
                conv,
                reap,
                gain
            );
            rows.push(format!(
                "{},{},{},{:.6e},{:.6e},{:.3}",
                w.name(),
                ecc,
                check,
                conv,
                reap,
                gain
            ));
        }
    }
    println!();
    print_two_phase_summary();
    println!();
    println!(
        "Reading: stronger codes reduce absolute failure mass dramatically, but \
         accumulation still costs the conventional design a factor that grows \
         with N^t — REAP removes it at constant (replicated-decoder) cost."
    );
    print_csv(
        "workload,ecc,check_bits,fail_conventional,fail_reap,reap_gain",
        &rows,
    );
}
