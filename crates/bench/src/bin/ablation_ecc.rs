//! Ablation **A1**: ECC strength sweep. The paper's introduction
//! motivates "aggressive ECCs"; this experiment quantifies how far DEC/TEC
//! codes push the conventional cache, and shows REAP + SEC still wins at
//! far lower check-bit cost in the high-accumulation regime.
//!
//! Runs two-phase: one exposure capture per workload, replayed at every
//! ECC strength — the results are bit-identical to per-point runs (the
//! replay-equivalence property tests enforce this), at roughly a third of
//! the trace-driving cost.

use reap_bench::{access_budget, print_csv};
use reap_core::{EccStrength, Experiment, ProtectionScheme};
use reap_trace::SpecWorkload;
use std::time::Instant;

fn main() {
    let accesses = access_budget().min(2_000_000);
    let workloads = [
        SpecWorkload::Namd,
        SpecWorkload::Perlbench,
        SpecWorkload::Mcf,
    ];
    println!("Ablation A1 — ECC strength sweep ({accesses} accesses per capture)");
    println!();
    println!(
        "{:<12} {:>5} {:>7} {:>16} {:>16} {:>12}",
        "workload", "ECC", "check", "E[fail] conv", "E[fail] REAP", "REAP gain"
    );
    let mut rows = Vec::new();
    let mut capture_time = 0.0f64;
    let mut replay_time = 0.0f64;
    for w in workloads {
        let base = Experiment::paper_hierarchy()
            .workload(w)
            .accesses(accesses)
            .seed(2019);
        let start = Instant::now();
        let capture = base.capture().expect("valid configuration");
        capture_time += start.elapsed().as_secs_f64();
        for ecc in EccStrength::ALL {
            let start = Instant::now();
            let report = base
                .clone()
                .ecc(ecc)
                .replay(&capture)
                .expect("capture shares the behavioural configuration");
            replay_time += start.elapsed().as_secs_f64();
            let conv = report.expected_failures(ProtectionScheme::Conventional);
            let reap = report.expected_failures(ProtectionScheme::Reap);
            let gain = report.mttf_improvement(ProtectionScheme::Reap);
            let check = ecc.build_code(512).expect("fits").check_bits();
            println!(
                "{:<12} {:>5} {:>7} {:>16.3e} {:>16.3e} {:>11.1}x",
                w.name(),
                ecc.to_string(),
                check,
                conv,
                reap,
                gain
            );
            rows.push(format!(
                "{},{},{},{:.6e},{:.6e},{:.3}",
                w.name(),
                ecc,
                check,
                conv,
                reap,
                gain
            ));
        }
    }
    println!();
    let points = workloads.len() * EccStrength::ALL.len();
    let one_pass = capture_time / workloads.len() as f64;
    println!(
        "Two-phase cost: {:.2} s capturing + {:.2} s replaying {points} points \
         (vs ≈{:.2} s for {points} from-scratch runs — {:.1}x speedup)",
        capture_time,
        replay_time,
        one_pass * points as f64,
        (one_pass * points as f64) / (capture_time + replay_time)
    );
    println!();
    println!(
        "Reading: stronger codes reduce absolute failure mass dramatically, but \
         accumulation still costs the conventional design a factor that grows \
         with N^t — REAP removes it at constant (replicated-decoder) cost."
    );
    print_csv(
        "workload,ecc,check_bits,fail_conventional,fail_reap,reap_gain",
        &rows,
    );
}
