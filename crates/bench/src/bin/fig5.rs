//! Regenerates **Fig. 5**: MTTF of REAP-cache normalized to the
//! conventional cache, per workload.
//!
//! Paper reference points: average 171x, worst case 7.9x (`mcf`), above
//! 1000x for `namd`, `dealII`, `h264ref`.

use reap_bench::{
    access_budget, arithmetic_mean, geometric_mean, mttf_gain, print_csv, sweep_all_workloads,
};
use reap_core::ProtectionScheme;

fn main() {
    let accesses = access_budget();
    println!("Fig. 5 — MTTF improvement of REAP over conventional");
    println!("({accesses} measured L1 accesses per workload, seed 2019)");
    println!();
    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "workload", "REAP gain", "serial gain", "mean N"
    );

    let mut gains = Vec::new();
    let mut rows = Vec::new();
    for (w, report) in sweep_all_workloads(accesses) {
        let gain = mttf_gain(&report);
        let serial = report.mttf_improvement(ProtectionScheme::SerialTagFirst);
        let mean_n = report.l2_stats().concealed_per_access();
        println!(
            "{:<12} {:>11.1}x {:>13.1}x {:>14.2}",
            w.name(),
            gain,
            serial,
            mean_n
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3}",
            w.name(),
            gain,
            serial,
            mean_n
        ));
        gains.push(gain);
    }

    println!();
    println!(
        "average (arithmetic) {:>8.1}x   (paper: 171x)",
        arithmetic_mean(&gains)
    );
    println!("average (geometric)  {:>8.1}x", geometric_mean(&gains));
    let min = gains.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = gains.iter().cloned().fold(0.0f64, f64::max);
    println!("worst case           {min:>8.1}x   (paper: 7.9x, mcf)");
    println!("best case            {max:>8.1}x   (paper: >1000x, namd/dealII/h264ref)");

    print_csv("workload,reap_gain,serial_gain,mean_concealed_reads", &rows);
}
