//! Regenerates **Fig. 3**: the frequency of concealed-read counts and
//! their contribution to the cache failure rate, for the paper's four
//! exemplary workloads (perlbench, calculix, h264ref, dealII).
//!
//! Axis conventions follow the paper: the frequency axis is normalized so
//! the "no concealed reads" (N = 1) population reads 100; both axes are
//! log-scale quantities, so bins are powers of two.

use reap_bench::{access_budget, print_csv, run_workload};
use reap_trace::SpecWorkload;

fn main() {
    let accesses = access_budget();
    let workloads = [
        SpecWorkload::Perlbench,
        SpecWorkload::Calculix,
        SpecWorkload::H264ref,
        SpecWorkload::DealII,
    ];
    let mut rows = Vec::new();
    for w in workloads {
        let report = run_workload(w, accesses);
        let hist = report.histogram();
        println!(
            "Fig. 3({}) — {} ({} measured accesses)",
            w.name(),
            w,
            accesses
        );
        println!(
            "{:>16} {:>12} {:>16} {:>18}",
            "N range", "events", "freq (N=1=100)", "P(fail) contrib"
        );
        for (i, bin) in hist.bins().enumerate() {
            if bin.count == 0 {
                continue;
            }
            let freq = hist.normalized_frequency(i).unwrap_or(f64::NAN);
            println!(
                "{:>7}..{:<7} {:>12} {:>16.4} {:>18.3e}",
                bin.lo, bin.hi, bin.count, freq, bin.failure_probability
            );
            rows.push(format!(
                "{},{},{},{},{:.6},{:.6e}",
                w.name(),
                bin.lo,
                bin.hi,
                bin.count,
                freq,
                bin.failure_probability
            ));
        }
        // The paper's headline observation: the high-N bins dominate the
        // failure rate despite their rarity.
        let bins: Vec<_> = hist.bins().collect();
        let split = bins.len() / 2;
        let low: f64 = bins[..split].iter().map(|b| b.failure_probability).sum();
        let high: f64 = bins[split..].iter().map(|b| b.failure_probability).sum();
        let low_n: u64 = bins[..split].iter().map(|b| b.count).sum();
        let high_n: u64 = bins[split..].iter().map(|b| b.count).sum();
        println!(
            "upper-half-N bins: {:.4}% of events, {:.1}% of failure probability",
            100.0 * high_n as f64 / (low_n + high_n).max(1) as f64,
            100.0 * high / (low + high).max(f64::MIN_POSITIVE)
        );
        println!("max N observed: {}", hist.max_n());
        println!();
    }
    print_csv(
        "workload,n_lo,n_hi,events,freq_norm100,failure_contribution",
        &rows,
    );
}
