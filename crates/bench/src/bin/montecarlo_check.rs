//! Cross-check **MC**: bit-level Monte-Carlo fault injection against the
//! analytical model, at amplified disturbance probability, using real
//! codecs (Hsiao SEC-DED and BCH) and real MTJ-array disturbance.

use reap_bench::{enable_telemetry, print_csv};
use reap_ecc::{Bch, EccCode, HsiaoSecDed};
use reap_reliability::{montecarlo::CheckPolicy, AccumulationModel, MonteCarloLine};

fn main() {
    enable_telemetry();
    let trials = 30_000;
    println!("Monte-Carlo validation of the accumulation model ({trials} trials/point)");
    println!();
    let secded = HsiaoSecDed::new(64).expect("valid geometry");
    let bch = Bch::new(64, 2).expect("valid geometry");
    println!(
        "{:<22} {:>8} {:>8} {:>12} {:>24} {:>12}",
        "code", "p_rd", "reads", "MC conv", "95% CI", "model conv"
    );
    let mut rows = Vec::new();
    for (name, code, t) in [
        ("Hsiao SEC-DED (72,64)", &secded as &dyn EccCode, 1usize),
        ("BCH t=2 (78,64)", &bch as &dyn EccCode, 2usize),
    ] {
        for (p, reads) in [(1e-3, 20u64), (1e-3, 60), (3e-3, 40)] {
            let mc = MonteCarloLine::new(code, p, 2019);
            let conv_result = mc.run(reads, trials, CheckPolicy::AtEnd);
            let conv = conv_result.failure_rate();
            let (lo, hi) = conv_result.failure_rate_ci95();
            let reap = mc.run(reads, trials, CheckPolicy::EveryRead).failure_rate();
            let model = AccumulationModel::new(p, t);
            let expected = model.fail_conventional(code.code_bits() as u32 / 2, reads);
            let inside = if (lo..=hi).contains(&expected) {
                "model in CI"
            } else {
                ""
            };
            println!(
                "{:<22} {:>8.0e} {:>8} {:>12.4e} [{:>9.3e},{:>9.3e}] {:>12.4e} {} (REAP MC {:.2e})",
                name, p, reads, conv, lo, hi, expected, inside, reap
            );
            rows.push(format!(
                "{},{:e},{},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}",
                name, p, reads, conv, lo, hi, expected, reap
            ));
        }
    }
    println!();
    println!(
        "Reading: the observed conventional failure rate tracks Eq. (3) evaluated \
         at the mean codeword weight, and checking every read (REAP) collapses \
         the failure rate — the same mechanism the analytical Fig. 5 pipeline uses."
    );
    print_csv(
        "code,p_rd,reads,mc_conventional,ci_lo,ci_hi,model_conventional,mc_reap",
        &rows,
    );
    // Measured split: montecarlo spans plus the real codec encode/decode
    // counters the trials exercised.
    println!();
    print!(
        "{}",
        reap_obs::export::render_table(&reap_obs::global().snapshot())
    );
}
