//! Criterion bench: raw cache-simulator throughput (accesses/second) for
//! single-level and hierarchical configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reap_cache::{Cache, CacheConfig, Hierarchy, HierarchyConfig, Replacement};
use reap_trace::{MemoryAccess, SpecWorkload};

fn single_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_level_cache");
    for &ways in &[1usize, 4, 8, 16] {
        let config = CacheConfig::builder()
            .name("L2")
            .size_bytes(1 << 20)
            .associativity(ways)
            .block_bytes(64)
            .build()
            .unwrap();
        let accesses: Vec<MemoryAccess> = SpecWorkload::Gcc.stream(1).take(20_000).collect();
        group.throughput(Throughput::Elements(accesses.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ways), &ways, |b, _| {
            b.iter(|| {
                let mut cache = Cache::new(config.clone(), Replacement::Lru);
                for a in &accesses {
                    if a.kind.is_read() {
                        cache.read(a.address, &mut ());
                    } else {
                        cache.write(a.address, &mut ());
                    }
                }
                cache.stats().hits()
            });
        });
    }
    group.finish();
}

fn full_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    for policy in [Replacement::Lru, Replacement::TreePlru, Replacement::Srrip] {
        let accesses: Vec<MemoryAccess> = SpecWorkload::Perlbench.stream(2).take(20_000).collect();
        group.throughput(Throughput::Elements(accesses.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut h = Hierarchy::new(HierarchyConfig::paper(), policy);
                    h.run(accesses.iter().copied(), &mut ())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, single_level, full_hierarchy);
criterion_main!(benches);
