//! Criterion bench: full experiment throughput (trace generation +
//! hierarchy + reliability observer), the unit of cost for every figure
//! regenerator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reap_core::Experiment;
use reap_trace::SpecWorkload;

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    for w in [
        SpecWorkload::Namd,
        SpecWorkload::Mcf,
        SpecWorkload::CactusAdm,
    ] {
        let accesses = 50_000u64;
        group.throughput(Throughput::Elements(accesses));
        group.bench_with_input(BenchmarkId::from_parameter(w.name()), &w, |b, &w| {
            b.iter(|| {
                Experiment::paper_hierarchy()
                    .workload(w)
                    .budgets(5_000, accesses)
                    .seed(1)
                    .run()
                    .expect("valid configuration")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
