//! Criterion bench: the analytical reliability model's per-event cost —
//! it runs once per L2 demand read in simulation, so it must stay cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reap_mtj::{read_disturbance_probability, MtjParams};
use reap_reliability::{uncorrectable_probability, AccumulationModel};

fn eq1(c: &mut Criterion) {
    let params = MtjParams::default();
    c.bench_function("eq1_read_disturbance", |b| {
        b.iter(|| read_disturbance_probability(std::hint::black_box(&params)));
    });
}

fn binomial_tail(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncorrectable_probability");
    for &trials in &[512u64, 51_200, 5_120_000] {
        group.bench_with_input(BenchmarkId::from_parameter(trials), &trials, |b, &m| {
            b.iter(|| uncorrectable_probability(std::hint::black_box(m), 1.5e-8, 1));
        });
    }
    group.finish();
}

fn accumulation_laws(c: &mut Criterion) {
    let model = AccumulationModel::sec(1.5e-8);
    let mut group = c.benchmark_group("accumulation_model");
    group.bench_function("fail_conventional_n1000", |b| {
        b.iter(|| model.fail_conventional(std::hint::black_box(288), 1_000));
    });
    group.bench_function("fail_reap_n1000", |b| {
        b.iter(|| model.fail_reap(std::hint::black_box(288), 1_000));
    });
    group.finish();
}

criterion_group!(benches, eq1, binomial_tail, accumulation_laws);
criterion_main!(benches);
