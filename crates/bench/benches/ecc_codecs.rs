//! Criterion bench: encode/decode throughput of the ECC codecs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reap_ecc::{Bch, EccCode, HammingSec, HsiaoSecDed, Interleaved};

fn codecs() -> Vec<(&'static str, Box<dyn EccCode>)> {
    vec![
        ("hamming_sec_64", Box::new(HammingSec::new(64).unwrap())),
        ("hsiao_secded_64", Box::new(HsiaoSecDed::new(64).unwrap())),
        ("bch_t2_64", Box::new(Bch::new(64, 2).unwrap())),
        ("bch_t3_512", Box::new(Bch::new(512, 3).unwrap())),
        (
            "interleaved_8x_secded",
            Box::new(Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap()),
        ),
    ]
}

fn encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for (name, code) in codecs() {
        let data: Vec<u8> = (0..code.data_bits().div_ceil(8)).map(|i| i as u8).collect();
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &code, |b, code| {
            b.iter(|| code.encode(&data));
        });
    }
    group.finish();
}

fn decode_clean(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_clean");
    for (name, code) in codecs() {
        let data: Vec<u8> = (0..code.data_bits().div_ceil(8)).map(|i| i as u8).collect();
        let cw = code.encode(&data);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &code, |b, code| {
            b.iter(|| code.decode(cw.as_bytes()));
        });
    }
    group.finish();
}

fn decode_with_errors(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_corrupted");
    for (name, code) in codecs() {
        let data: Vec<u8> = (0..code.data_bits().div_ceil(8)).map(|i| i as u8).collect();
        let mut cw = code.encode(&data);
        cw.flip_bit(code.data_bits() / 2);
        group.bench_with_input(BenchmarkId::from_parameter(name), &code, |b, code| {
            b.iter(|| code.decode(cw.as_bytes()));
        });
    }
    group.finish();
}

criterion_group!(benches, encode, decode_clean, decode_with_errors);
criterion_main!(benches);
