//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so this local
//! crate supplies the slice of the criterion 0.5 API the workspace's
//! benches use: [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! (`throughput`, `sample_size`, `bench_with_input`, `bench_function`,
//! `finish`), [`Bencher::iter`], [`BenchmarkId::from_parameter`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Statistics are intentionally simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples, and reports the median
//! per-iteration time (plus derived throughput). That is stable enough
//! for the before/after comparisons this repository makes; there is no
//! HTML report, outlier analysis, or regression baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark, used to derive elem/s or MB/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from the parameter value alone (`group/param`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Hands the measurement closure to the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size,
        }
    }

    /// Times `routine`, first calibrating how many iterations fit in a
    /// sample, then recording `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that takes ≥ ~1 ms so that
        // timer resolution noise stays well under 1 %.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Median nanoseconds per single iteration.
    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        let mid = ns.len() / 2;
        if ns.len() % 2 == 1 {
            ns[mid]
        } else {
            (ns[mid - 1] + ns[mid]) / 2.0
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(full_id: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{full_id:<44} time: [{}]", human_time(ns));
    if let Some(t) = throughput {
        let per_second = match t {
            Throughput::Elements(n) => format!("{:.3} Kelem/s", n as f64 / ns * 1e9 / 1e3),
            Throughput::Bytes(n) => format!("{:.3} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0)),
        };
        line.push_str(&format!(" thrpt: [{per_second}]"));
    }
    println!("{line}");
}

/// A set of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` against `input` under `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.id),
            bencher.median_ns_per_iter(),
            self.throughput,
        );
        self
    }

    /// Benchmarks `routine` under a plain string id.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        report(
            &format!("{}/{}", self.name, id),
            bencher.median_ns_per_iter(),
            self.throughput,
        );
        self
    }

    /// Ends the group (separator line, mirroring upstream's summary).
    pub fn finish(self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function with default settings.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.default_sample_size);
        routine(&mut bencher);
        report(id, bencher.median_ns_per_iter(), None);
        self
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_finite_positive_medians() {
        let mut b = Bencher::new(5);
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        let ns = b.median_ns_per_iter();
        assert!(ns.is_finite() && ns > 0.0, "median = {ns}");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| x.wrapping_mul(3))
        });
        group.bench_function("plain", |b| b.iter(|| 1u8 + 1));
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| ()));
    }

    #[test]
    fn human_time_scales() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
        assert!(human_time(12_000_000_000.0).ends_with(" s"));
    }
}
