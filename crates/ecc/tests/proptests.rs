//! Property-based tests for the ECC codecs.

use proptest::prelude::*;
use reap_ecc::{Bch, DecodeOutcome, EccCode, HammingSec, HsiaoSecDed, Interleaved};

fn masked(mut data: Vec<u8>, bits: usize) -> Vec<u8> {
    let rem = bits % 8;
    if rem != 0 {
        let last = data.len() - 1;
        data[last] &= (1 << rem) - 1;
    }
    data
}

proptest! {
    /// Any Hamming codeword decodes cleanly back to its data.
    #[test]
    fn hamming_round_trip(data in proptest::collection::vec(any::<u8>(), 8)) {
        let code = HammingSec::new(64).unwrap();
        let out = code.decode(code.encode(&data).as_bytes());
        prop_assert_eq!(out.outcome, DecodeOutcome::Clean);
        prop_assert_eq!(out.data, data);
    }

    /// Hamming corrects any single flip at any position for any payload.
    #[test]
    fn hamming_corrects_any_single_flip(
        data in proptest::collection::vec(any::<u8>(), 8),
        bit in 0usize..71,
    ) {
        let code = HammingSec::new(64).unwrap();
        let mut cw = code.encode(&data);
        cw.flip_bit(bit);
        let out = code.decode(cw.as_bytes());
        prop_assert_eq!(out.outcome, DecodeOutcome::Corrected(1));
        prop_assert_eq!(out.data, data);
    }

    /// Hsiao round-trips at odd data widths too.
    #[test]
    fn hsiao_round_trip_odd_widths(
        raw in proptest::collection::vec(any::<u8>(), 6),
        width in 33usize..48,
    ) {
        let code = HsiaoSecDed::new(width).unwrap();
        let data = masked(raw[..width.div_ceil(8)].to_vec(), width);
        let out = code.decode(code.encode(&data).as_bytes());
        prop_assert_eq!(out.outcome, DecodeOutcome::Clean);
        prop_assert_eq!(out.data, data);
    }

    /// Hsiao corrects one flip and detects any two flips, for any payload.
    #[test]
    fn hsiao_sec_ded_property(
        data in proptest::collection::vec(any::<u8>(), 8),
        b1 in 0usize..72,
        b2 in 0usize..72,
    ) {
        let code = HsiaoSecDed::new(64).unwrap();
        let mut cw = code.encode(&data);
        cw.flip_bit(b1);
        if b1 == b2 {
            // Flip + unflip = clean.
            cw.flip_bit(b2);
            let out = code.decode(cw.as_bytes());
            prop_assert_eq!(out.outcome, DecodeOutcome::Clean);
            prop_assert_eq!(out.data, data);
        } else {
            let single = code.decode(cw.as_bytes());
            prop_assert_eq!(single.outcome, DecodeOutcome::Corrected(1));
            prop_assert_eq!(single.data, data.clone());
            cw.flip_bit(b2);
            let double = code.decode(cw.as_bytes());
            prop_assert_eq!(double.outcome, DecodeOutcome::Detected);
        }
    }

    /// BCH t=2 corrects any pair of flips in a 64-bit word.
    #[test]
    fn bch_corrects_any_double_flip(
        data in proptest::collection::vec(any::<u8>(), 8),
        b1 in 0usize..78,
        b2 in 0usize..78,
    ) {
        prop_assume!(b1 != b2);
        let code = Bch::new(64, 2).unwrap();
        let mut cw = code.encode(&data);
        cw.flip_bit(b1);
        cw.flip_bit(b2);
        let out = code.decode(cw.as_bytes());
        prop_assert_eq!(out.outcome, DecodeOutcome::Corrected(2));
        prop_assert_eq!(out.data, data);
    }

    /// BCH t=3 on a 512-bit line corrects any three flips.
    #[test]
    fn bch_t3_corrects_any_triple_flip(
        data in proptest::collection::vec(any::<u8>(), 64),
        bits in proptest::collection::hash_set(0usize..542, 3),
    ) {
        let code = Bch::new(512, 3).unwrap();
        let mut cw = code.encode(&data);
        for &b in &bits {
            cw.flip_bit(b);
        }
        let out = code.decode(cw.as_bytes());
        prop_assert_eq!(out.outcome, DecodeOutcome::Corrected(3));
        prop_assert_eq!(out.data, data);
    }

    /// Interleaved SEC-DED corrects up to one flip per sub-word.
    #[test]
    fn interleaved_corrects_spread_flips(
        data in proptest::collection::vec(any::<u8>(), 64),
        offsets in proptest::collection::vec(0usize..72, 8),
    ) {
        let code = Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap();
        let mut cw = code.encode(&data);
        let mut flips = 0;
        for (w, &off) in offsets.iter().enumerate() {
            cw.flip_bit(w * 72 + off);
            flips += 1;
        }
        let out = code.decode(cw.as_bytes());
        prop_assert_eq!(out.outcome, DecodeOutcome::Corrected(flips));
        prop_assert_eq!(out.data, data);
    }

    /// Unidirectional (1→0 only) flips — the read-disturbance error model —
    /// are corrected whenever their count is within the code capability.
    #[test]
    fn unidirectional_flips_within_capability_are_corrected(
        data in proptest::collection::vec(any::<u8>(), 8),
        pick in any::<u64>(),
    ) {
        let code = Bch::new(64, 2).unwrap();
        let cw = code.encode(&data);
        let ones: Vec<usize> = (0..code.code_bits()).filter(|&i| cw.bit(i)).collect();
        prop_assume!(ones.len() >= 2);
        let i1 = (pick as usize) % ones.len();
        let i2 = (pick as usize / ones.len()) % ones.len();
        prop_assume!(i1 != i2);
        let mut w = cw.clone();
        w.set_bit(ones[i1], false);
        w.set_bit(ones[i2], false);
        let out = code.decode(w.as_bytes());
        prop_assert_eq!(out.outcome, DecodeOutcome::Corrected(2));
        prop_assert_eq!(out.data, data);
    }

    /// Codeword weight (the `n` fed to the accumulation model) never
    /// exceeds the code length and tracks the payload weight direction.
    #[test]
    fn codeword_weight_is_bounded(data in proptest::collection::vec(any::<u8>(), 8)) {
        let code = HsiaoSecDed::new(64).unwrap();
        let cw = code.encode(&data);
        prop_assert!(cw.count_ones() <= code.code_bits());
    }
}
