//! Codec operation counters.
//!
//! Every concrete codec reports encode/decode traffic and decode outcomes
//! through these [`StaticCounter`]s. While telemetry is disabled
//! (`reap_obs::set_enabled(false)`, the default) each call site costs one
//! relaxed atomic load, so the codecs carry the instrumentation
//! unconditionally — including in the Monte-Carlo and benchmark hot
//! loops. [`Interleaved`](crate::Interleaved) delegates to its inner
//! codes, so interleaved traffic is counted once per *sub-word*
//! operation, at the leaf codec that actually ran.
//!
//! Exported metric names:
//!
//! | name | meaning |
//! |------|---------|
//! | `ecc.encode` | codewords encoded |
//! | `ecc.decode` | words decoded |
//! | `ecc.decode.clean` | decodes with a zero syndrome |
//! | `ecc.decode.corrected` | decodes that corrected ≥ 1 bit |
//! | `ecc.corrected_bits` | total bits corrected |
//! | `ecc.decode.detected` | decodes flagging an uncorrectable error |

use crate::code::DecodeOutcome;
use reap_obs::StaticCounter;

/// Codewords encoded across all codecs.
pub static ENCODES: StaticCounter = StaticCounter::new("ecc.encode");
/// Words decoded across all codecs.
pub static DECODES: StaticCounter = StaticCounter::new("ecc.decode");
/// Decodes that observed a zero syndrome.
pub static DECODES_CLEAN: StaticCounter = StaticCounter::new("ecc.decode.clean");
/// Decodes that corrected at least one bit.
pub static DECODES_CORRECTED: StaticCounter = StaticCounter::new("ecc.decode.corrected");
/// Total bits corrected.
pub static CORRECTED_BITS: StaticCounter = StaticCounter::new("ecc.corrected_bits");
/// Decodes that flagged an uncorrectable error.
pub static DECODES_DETECTED: StaticCounter = StaticCounter::new("ecc.decode.detected");

/// Records one encode.
pub(crate) fn note_encode() {
    ENCODES.inc();
}

/// Records one decode and its outcome.
pub(crate) fn note_decode(outcome: DecodeOutcome) {
    DECODES.inc();
    match outcome {
        DecodeOutcome::Clean => DECODES_CLEAN.inc(),
        DecodeOutcome::Corrected(bits) => {
            DECODES_CORRECTED.inc();
            CORRECTED_BITS.add(bits as u64);
        }
        DecodeOutcome::Detected => DECODES_DETECTED.inc(),
    }
}
