//! First-order cost model of ECC decoder hardware.
//!
//! The REAP-cache overhead analysis (§V-B of the paper) rests on two
//! premises: an ECC decoder is ~0.1 % of the cache *area* and <1 % of its
//! *energy*. This module estimates decoder gate counts from code geometry
//! and converts them to energy/area/latency with per-technology constants,
//! so those premises are derived rather than asserted.
//!
//! Gate-count heuristics (XOR2-equivalent gates):
//!
//! * **Syndrome generation** — each of the `r` syndrome bits is an XOR tree
//!   over ~half the `n` codeword bits: `r · n / 2` gates, `log2(n)` depth.
//! * **Correction** — an `n`-way column match (decoder) plus the correcting
//!   XOR row: `≈ n · log2(r)` gates, constant depth.
//! * **Algebraic decoding (BCH)** — syndrome evaluation plus
//!   Berlekamp–Massey/Chien iterations cost `≈ t²` field multipliers of
//!   `m²` gates each, with `2t` sequential steps.

use crate::code::EccCode;

/// XOR2-equivalent gate energy (J) per switching event at a given node.
fn gate_energy(tech_nm: u32) -> f64 {
    // ~0.2 fJ at 45 nm, scaling roughly with feature size squared.
    0.2e-15 * (f64::from(tech_nm) / 45.0).powi(2)
}

/// XOR2-equivalent gate area (m²).
fn gate_area(tech_nm: u32) -> f64 {
    // ~0.4 µm² at 45 nm (dense synthesized standard cells); calibrated so
    // a (522,512) SEC line decoder is ~0.1 % of a 1 MB STT-MRAM array —
    // the paper's §V-B operating point.
    0.4e-12 * (f64::from(tech_nm) / 45.0).powi(2)
}

/// XOR2 gate delay (s).
fn gate_delay(tech_nm: u32) -> f64 {
    // ~15 ps at 45 nm, scaling linearly with feature size.
    15e-12 * f64::from(tech_nm) / 45.0
}

/// Estimated silicon cost of one ECC decoder instance.
///
/// # Examples
///
/// ```
/// use reap_ecc::{DecoderCost, HsiaoSecDed, Interleaved};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let line_code = Interleaved::new(HsiaoSecDed::new(64)?, 8)?;
/// let cost = DecoderCost::estimate(&line_code, 22);
/// // A SEC-DED line decoder is a few thousand gates — tiny next to a 1 MB
/// // array (hundreds of millions of transistors).
/// assert!(cost.gates > 1_000 && cost.gates < 100_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderCost {
    /// XOR2-equivalent gate count.
    pub gates: u64,
    /// Dynamic energy per decode operation (J).
    pub energy_per_decode: f64,
    /// Silicon area (m²).
    pub area: f64,
    /// Critical-path latency per decode (s).
    pub latency: f64,
}

impl DecoderCost {
    /// Estimates the cost of a decoder for `code` at `tech_nm` nanometers.
    pub fn estimate(code: &dyn EccCode, tech_nm: u32) -> Self {
        let n = code.code_bits() as f64;
        let r = code.check_bits() as f64;
        let t = code.correctable_errors() as f64;
        let syndrome_gates = r * n / 2.0;
        let correction_gates = n * r.log2().max(1.0);
        let algebraic_gates = if t > 1.0 {
            // Field multipliers for BM + Chien; m ≈ log2(n).
            let m = n.log2();
            t * t * m * m * 4.0
        } else {
            0.0
        };
        let gates = (syndrome_gates + correction_gates + algebraic_gates).ceil() as u64;
        // Per-decode energy: ~25 % of gates toggle, times an implementation
        // factor covering wiring capacitance, clocking and pipeline
        // registers that a bare XOR-toggle count misses. The factor is
        // calibrated so a (522,512) SEC line decode costs ~2-3 pJ at
        // 22 nm — consistent with published SEC-DED decoder silicon and
        // with the paper's operating point (decoder <1 % of cache energy,
        // REAP's k-1 extra decodes ≈ +2.7 % dynamic energy).
        const IMPLEMENTATION_OVERHEAD: f64 = 70.0;
        let energy_per_decode =
            gates as f64 * 0.25 * gate_energy(tech_nm) * IMPLEMENTATION_OVERHEAD;
        let area = gates as f64 * gate_area(tech_nm);
        let depth = n.log2().ceil() + 2.0 + if t > 1.0 { 2.0 * t } else { 0.0 };
        let latency = depth * gate_delay(tech_nm);
        Self {
            gates,
            energy_per_decode,
            area,
            latency,
        }
    }

    /// Cost of `count` replicated decoder instances (the REAP modification:
    /// one decoder per way).
    ///
    /// Area and per-operation energy scale linearly; latency is unchanged
    /// because the instances operate in parallel.
    pub fn replicated(&self, count: usize) -> Self {
        Self {
            gates: self.gates * count as u64,
            energy_per_decode: self.energy_per_decode, // per decode op, unchanged
            area: self.area * count as f64,
            latency: self.latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bch::Bch;
    use crate::hamming::HammingSec;
    use crate::hsiao::HsiaoSecDed;
    use crate::interleave::Interleaved;

    #[test]
    fn stronger_codes_cost_more() {
        let sec = DecoderCost::estimate(&HammingSec::new(64).unwrap(), 22);
        let secded = DecoderCost::estimate(&HsiaoSecDed::new(64).unwrap(), 22);
        let dec = DecoderCost::estimate(&Bch::new(64, 2).unwrap(), 22);
        assert!(secded.gates >= sec.gates);
        assert!(dec.gates > secded.gates);
        assert!(dec.latency > secded.latency);
    }

    #[test]
    fn smaller_nodes_are_cheaper() {
        let code = HsiaoSecDed::new(64).unwrap();
        let c22 = DecoderCost::estimate(&code, 22);
        let c45 = DecoderCost::estimate(&code, 45);
        assert!(c22.energy_per_decode < c45.energy_per_decode);
        assert!(c22.area < c45.area);
        assert!(c22.latency < c45.latency);
    }

    #[test]
    fn replication_scales_area_not_latency() {
        let code = HsiaoSecDed::new(64).unwrap();
        let one = DecoderCost::estimate(&code, 22);
        let eight = one.replicated(8);
        assert_eq!(eight.gates, one.gates * 8);
        assert_eq!(eight.latency, one.latency);
        assert!((eight.area / one.area - 8.0).abs() < 1e-12);
        assert_eq!(eight.energy_per_decode, one.energy_per_decode);
    }

    #[test]
    fn line_decoder_is_positive_and_finite() {
        let line = Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap();
        let c = DecoderCost::estimate(&line, 22);
        assert!(c.energy_per_decode > 0.0 && c.energy_per_decode.is_finite());
        assert!(c.area > 0.0 && c.latency > 0.0);
    }
}
