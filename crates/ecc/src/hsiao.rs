//! Hsiao-style odd-weight-column SEC-DED codes.
//!
//! The industry-standard memory ECC: a parity-check matrix `H = [A | I]`
//! whose data columns all have odd weight ≥ 3. Consequences:
//!
//! * a zero syndrome means a clean word;
//! * a single error yields a syndrome equal to one column of `H`
//!   (odd weight) — correctable;
//! * a double error yields the XOR of two odd-weight columns, which has
//!   *even* weight and matches no column — always **detected**.
//!
//! The construction generalizes the classic (72,64) layout to any data
//! width; columns are allocated in increasing weight for decoder balance.

use crate::bits::{get_bit, Codeword};
use crate::code::{
    check_code_buffer, check_data_buffer, CodeError, DecodeOutcome, Decoded, EccCode,
};

/// A single-error-correcting, double-error-detecting Hsiao code
/// `(k + r, k)` with odd-weight columns.
///
/// # Examples
///
/// ```
/// use reap_ecc::{EccCode, HsiaoSecDed};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = HsiaoSecDed::new(64)?;
/// assert_eq!(code.check_bits(), 8); // the classic (72,64) geometry
/// let cw = code.encode(&[0u8; 8]);
/// let mut word = cw.clone();
/// word.flip_bit(5);
/// word.flip_bit(61);
/// // Double errors are *detected*, never miscorrected.
/// assert!(code.decode(word.as_bytes()).outcome.is_detected_uncorrectable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsiaoSecDed {
    data_bits: usize,
    check_bits: usize,
    /// Column `i` of `A`: the r-bit syndrome pattern of data bit `i`.
    columns: Vec<u32>,
}

impl HsiaoSecDed {
    /// Constructs a Hsiao SEC-DED code for `data_bits` payload bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedDataWidth`] if `data_bits == 0` or
    /// the construction would need more than 30 check bits
    /// (data widths beyond ~500 Mbit).
    pub fn new(data_bits: usize) -> Result<Self, CodeError> {
        if data_bits == 0 {
            return Err(CodeError::UnsupportedDataWidth { data_bits });
        }
        // Smallest r with enough odd-weight-≥3 columns: 2^(r-1) - r ≥ k.
        let mut r = 4usize;
        loop {
            if r > 30 {
                return Err(CodeError::UnsupportedDataWidth { data_bits });
            }
            let capacity = (1usize << (r - 1)) - r;
            if capacity >= data_bits {
                break;
            }
            r += 1;
        }
        // Enumerate odd-weight (≥3) r-bit patterns, lightest first.
        let mut columns = Vec::with_capacity(data_bits);
        'outer: for weight in (3..=r as u32).step_by(2) {
            for v in 1u32..(1u32 << r) {
                if v.count_ones() == weight {
                    columns.push(v);
                    if columns.len() == data_bits {
                        break 'outer;
                    }
                }
            }
        }
        debug_assert_eq!(columns.len(), data_bits);
        Ok(Self {
            data_bits,
            check_bits: r,
            columns,
        })
    }

    /// Computes the r-bit syndrome of a full received word
    /// (`[data | check]` layout).
    fn syndrome(&self, received: &[u8]) -> u32 {
        let mut s = 0u32;
        for i in 0..self.data_bits {
            if get_bit(received, i) {
                s ^= self.columns[i];
            }
        }
        for j in 0..self.check_bits {
            if get_bit(received, self.data_bits + j) {
                s ^= 1u32 << j;
            }
        }
        s
    }

    fn extract_data(&self, word: &[u8]) -> Vec<u8> {
        let mut data = vec![0u8; self.data_bits.div_ceil(8)];
        for i in 0..self.data_bits {
            if get_bit(word, i) {
                crate::bits::set_bit(&mut data, i, true);
            }
        }
        data
    }
}

impl EccCode for HsiaoSecDed {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        self.check_bits
    }

    fn correctable_errors(&self) -> usize {
        1
    }

    fn detectable_errors(&self) -> usize {
        2
    }

    fn name(&self) -> String {
        format!("Hsiao SEC-DED ({},{})", self.code_bits(), self.data_bits)
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        crate::telemetry::note_encode();
        check_data_buffer(data, self.data_bits);
        let mut cw = Codeword::zeroed(self.code_bits());
        let mut check = 0u32;
        for i in 0..self.data_bits {
            if get_bit(data, i) {
                cw.set_bit(i, true);
                check ^= self.columns[i];
            }
        }
        for j in 0..self.check_bits {
            if check >> j & 1 == 1 {
                cw.set_bit(self.data_bits + j, true);
            }
        }
        cw
    }

    fn decode(&self, received: &[u8]) -> Decoded {
        let decoded = self.decode_inner(received);
        crate::telemetry::note_decode(decoded.outcome);
        decoded
    }
}

impl HsiaoSecDed {
    fn decode_inner(&self, received: &[u8]) -> Decoded {
        check_code_buffer(received, self.code_bits());
        let s = self.syndrome(received);
        if s == 0 {
            return Decoded {
                data: self.extract_data(received),
                outcome: DecodeOutcome::Clean,
            };
        }
        if s.count_ones() % 2 == 1 {
            // Odd syndrome: single-bit error if it matches a column.
            if s.count_ones() == 1 {
                // Check-bit error; data is untouched.
                return Decoded {
                    data: self.extract_data(received),
                    outcome: DecodeOutcome::Corrected(1),
                };
            }
            if let Some(i) = self.columns.iter().position(|&c| c == s) {
                let mut word = received.to_vec();
                crate::bits::flip_bit(&mut word, i);
                return Decoded {
                    data: self.extract_data(&word),
                    outcome: DecodeOutcome::Corrected(1),
                };
            }
            // Odd-weight syndrome matching no column: ≥3 errors, detected.
            return Decoded {
                data: self.extract_data(received),
                outcome: DecodeOutcome::Detected,
            };
        }
        // Even, non-zero syndrome: double error detected.
        Decoded {
            data: self.extract_data(received),
            outcome: DecodeOutcome::Detected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_standard_codes() {
        for (k, r) in [
            (8, 5),
            (16, 6),
            (32, 7),
            (64, 8),
            (128, 9),
            (256, 10),
            (512, 11),
        ] {
            let c = HsiaoSecDed::new(k).unwrap();
            assert_eq!(c.check_bits(), r, "k = {k}");
        }
    }

    #[test]
    fn all_columns_are_distinct_odd_weight() {
        let c = HsiaoSecDed::new(64).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &col in &c.columns {
            assert!(col.count_ones() >= 3 && col.count_ones() % 2 == 1);
            assert!(seen.insert(col), "duplicate column {col:#b}");
        }
    }

    #[test]
    fn clean_round_trip() {
        let code = HsiaoSecDed::new(64).unwrap();
        let data = [0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF];
        let out = code.decode(code.encode(&data).as_bytes());
        assert_eq!(out.outcome, DecodeOutcome::Clean);
        assert_eq!(out.data, data);
    }

    #[test]
    fn corrects_every_single_bit_error_exhaustively() {
        let code = HsiaoSecDed::new(64).unwrap();
        let data = [0xF0, 0x0D, 0xCA, 0xFE, 0xBA, 0xBE, 0x00, 0xFF];
        let cw = code.encode(&data);
        for i in 0..code.code_bits() {
            let mut w = cw.clone();
            w.flip_bit(i);
            let out = code.decode(w.as_bytes());
            assert_eq!(out.outcome, DecodeOutcome::Corrected(1), "bit {i}");
            assert_eq!(out.data, data, "bit {i}");
        }
    }

    #[test]
    fn detects_every_double_bit_error_exhaustively() {
        let code = HsiaoSecDed::new(16).unwrap();
        let data = [0x3C, 0xA5];
        let cw = code.encode(&data);
        let n = code.code_bits();
        for i in 0..n {
            for j in (i + 1)..n {
                let mut w = cw.clone();
                w.flip_bit(i);
                w.flip_bit(j);
                let out = code.decode(w.as_bytes());
                assert_eq!(out.outcome, DecodeOutcome::Detected, "bits {i},{j}");
            }
        }
    }

    #[test]
    fn unidirectional_double_errors_also_detected() {
        // Read disturbance only flips 1 -> 0; verify DED holds for that
        // error model specifically (all-ones payload, clear two bits).
        let code = HsiaoSecDed::new(64).unwrap();
        let data = [0xFF; 8];
        let cw = code.encode(&data);
        let ones: Vec<usize> = (0..code.code_bits()).filter(|&i| cw.bit(i)).collect();
        for w1 in 0..ones.len().min(20) {
            for w2 in (w1 + 1)..ones.len().min(20) {
                let mut w = cw.clone();
                w.set_bit(ones[w1], false);
                w.set_bit(ones[w2], false);
                assert_eq!(code.decode(w.as_bytes()).outcome, DecodeOutcome::Detected);
            }
        }
    }

    #[test]
    fn name_mentions_geometry() {
        assert_eq!(
            HsiaoSecDed::new(64).unwrap().name(),
            "Hsiao SEC-DED (72,64)"
        );
    }

    #[test]
    fn zero_width_rejected() {
        assert!(HsiaoSecDed::new(0).is_err());
    }

    #[test]
    fn check_bit_error_corrects_without_touching_data() {
        let code = HsiaoSecDed::new(32).unwrap();
        let data = [0xDE, 0xAD, 0xBE, 0xEF];
        let mut w = code.encode(&data);
        w.flip_bit(code.data_bits()); // first check bit
        let out = code.decode(w.as_bytes());
        assert_eq!(out.outcome, DecodeOutcome::Corrected(1));
        assert_eq!(out.data, data);
    }
}
