//! Bit-interleaving of several codewords across one wide line.
//!
//! Wide cache lines (512 bits) are conventionally protected by several
//! narrower codewords (e.g. 8 × (72,64)) with their bits interleaved, so a
//! physically clustered multi-bit upset lands in distinct codewords. For
//! the independent, uniformly-spread bit flips of read disturbance,
//! interleaving instead *partitions* the error budget: each sub-word only
//! has to cope with the flips that land in it.

use crate::bits::{get_bit, set_bit, Codeword};
use crate::code::{
    check_code_buffer, check_data_buffer, CodeError, DecodeOutcome, Decoded, EccCode,
};

/// `ways` interleaved instances of an inner code protecting one line.
///
/// Line data bit `i` maps to sub-word `i % ways`, data position `i / ways`;
/// the stored line is the concatenation of the sub-codewords.
///
/// # Examples
///
/// ```
/// use reap_ecc::{EccCode, HsiaoSecDed, Interleaved};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 512-bit line as 8 interleaved (72,64) words: 8 single-bit errors
/// // are correctable as long as no two land in the same sub-word.
/// let line_code = Interleaved::new(HsiaoSecDed::new(64)?, 8)?;
/// assert_eq!(line_code.data_bits(), 512);
/// assert_eq!(line_code.code_bits(), 576);
/// let data = vec![0x5Au8; 64];
/// let mut cw = line_code.encode(&data);
/// cw.flip_bit(0);      // inside stored sub-word 0 (bits 0..72)
/// cw.flip_bit(72 + 5); // inside stored sub-word 1 (bits 72..144)
/// let out = line_code.decode(cw.as_bytes());
/// assert_eq!(out.data, data);
/// assert!(out.outcome.is_corrected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interleaved<C> {
    inner: C,
    ways: usize,
}

impl<C: EccCode> Interleaved<C> {
    /// Interleaves `ways` copies of `inner`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedDataWidth`] if `ways == 0`.
    pub fn new(inner: C, ways: usize) -> Result<Self, CodeError> {
        if ways == 0 {
            return Err(CodeError::UnsupportedDataWidth { data_bits: 0 });
        }
        Ok(Self { inner, ways })
    }

    /// The inner code.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Number of interleaved sub-words.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

impl<C: EccCode> EccCode for Interleaved<C> {
    fn data_bits(&self) -> usize {
        self.inner.data_bits() * self.ways
    }

    fn check_bits(&self) -> usize {
        self.inner.check_bits() * self.ways
    }

    fn correctable_errors(&self) -> usize {
        // Guaranteed only for the single worst sub-word.
        self.inner.correctable_errors()
    }

    fn detectable_errors(&self) -> usize {
        self.inner.detectable_errors()
    }

    fn name(&self) -> String {
        format!("{}x interleaved {}", self.ways, self.inner.name())
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        check_data_buffer(data, self.data_bits());
        let k = self.inner.data_bits();
        let n = self.inner.code_bits();
        let mut line = Codeword::zeroed(self.code_bits());
        let mut sub = vec![0u8; k.div_ceil(8)];
        for w in 0..self.ways {
            sub.fill(0);
            for j in 0..k {
                if get_bit(data, j * self.ways + w) {
                    set_bit(&mut sub, j, true);
                }
            }
            let cw = self.inner.encode(&sub);
            for j in 0..n {
                if cw.bit(j) {
                    line.set_bit(w * n + j, true);
                }
            }
        }
        line
    }

    fn decode(&self, received: &[u8]) -> Decoded {
        check_code_buffer(received, self.code_bits());
        let k = self.inner.data_bits();
        let n = self.inner.code_bits();
        let mut data = vec![0u8; self.data_bits().div_ceil(8)];
        let mut corrected = 0usize;
        let mut any_detected = false;
        let mut any_corrected = false;
        let mut sub = vec![0u8; n.div_ceil(8)];
        for w in 0..self.ways {
            sub.fill(0);
            for j in 0..n {
                if get_bit(received, w * n + j) {
                    set_bit(&mut sub, j, true);
                }
            }
            let out = self.inner.decode(&sub);
            match out.outcome {
                DecodeOutcome::Clean => {}
                DecodeOutcome::Corrected(c) => {
                    corrected += c;
                    any_corrected = true;
                }
                DecodeOutcome::Detected => any_detected = true,
            }
            for j in 0..k {
                if get_bit(&out.data, j) {
                    set_bit(&mut data, j * self.ways + w, true);
                }
            }
        }
        let outcome = if any_detected {
            DecodeOutcome::Detected
        } else if any_corrected {
            DecodeOutcome::Corrected(corrected)
        } else {
            DecodeOutcome::Clean
        };
        Decoded { data, outcome }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::HammingSec;
    use crate::hsiao::HsiaoSecDed;

    fn payload(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
            .collect()
    }

    #[test]
    fn geometry_scales_with_ways() {
        let c = Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap();
        assert_eq!(c.data_bits(), 512);
        assert_eq!(c.check_bits(), 64);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    fn zero_ways_rejected() {
        assert!(Interleaved::new(HammingSec::new(8).unwrap(), 0).is_err());
    }

    #[test]
    fn clean_round_trip() {
        let c = Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap();
        let data = payload(64);
        let out = c.decode(c.encode(&data).as_bytes());
        assert_eq!(out.outcome, DecodeOutcome::Clean);
        assert_eq!(out.data, data);
    }

    #[test]
    fn corrects_one_error_per_subword() {
        let c = Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap();
        let data = payload(64);
        let mut cw = c.encode(&data);
        // One flip inside each of the 8 sub-codewords (each is 72 bits).
        for w in 0..8 {
            cw.flip_bit(w * 72 + 11 + w);
        }
        let out = c.decode(cw.as_bytes());
        assert_eq!(out.outcome, DecodeOutcome::Corrected(8));
        assert_eq!(out.data, data);
    }

    #[test]
    fn detects_two_errors_in_same_subword() {
        let c = Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap();
        let data = payload(64);
        let mut cw = c.encode(&data);
        cw.flip_bit(3);
        cw.flip_bit(40); // both in sub-word 0
        assert_eq!(c.decode(cw.as_bytes()).outcome, DecodeOutcome::Detected);
    }

    #[test]
    fn adjacent_line_bits_land_in_distinct_subwords() {
        // A burst of 8 adjacent *data* bits must be fully correctable.
        let c = Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap();
        let data = payload(64);
        let clean = c.encode(&data);
        // Corrupt the encoded positions of data bits 100..108 by re-encoding
        // data with those bits flipped and checking decode of a mixed word is
        // equivalent; simpler: flip one bit in each sub-word region edge.
        let mut cw = clean.clone();
        for w in 0..8 {
            cw.flip_bit(w * 72); // first bit of each sub-word
        }
        let out = c.decode(cw.as_bytes());
        assert_eq!(out.outcome, DecodeOutcome::Corrected(8));
        assert_eq!(out.data, data);
    }

    #[test]
    fn name_mentions_ways_and_inner() {
        let c = Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap();
        assert_eq!(c.name(), "8x interleaved Hsiao SEC-DED (72,64)");
    }
}
