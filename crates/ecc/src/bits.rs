//! Bit-level helpers and the [`Codeword`] buffer.

/// Reads bit `i` of `buf` (LSB-first within each byte).
///
/// # Panics
///
/// Panics if `i / 8 >= buf.len()`.
///
/// # Examples
///
/// ```
/// assert!(reap_ecc::bits::get_bit(&[0b0000_0100], 2));
/// assert!(!reap_ecc::bits::get_bit(&[0b0000_0100], 3));
/// ```
pub fn get_bit(buf: &[u8], i: usize) -> bool {
    buf[i / 8] >> (i % 8) & 1 == 1
}

/// Sets bit `i` of `buf` to `value` (LSB-first within each byte).
///
/// # Panics
///
/// Panics if `i / 8 >= buf.len()`.
pub fn set_bit(buf: &mut [u8], i: usize, value: bool) {
    let mask = 1u8 << (i % 8);
    if value {
        buf[i / 8] |= mask;
    } else {
        buf[i / 8] &= !mask;
    }
}

/// Flips bit `i` of `buf`.
///
/// # Panics
///
/// Panics if `i / 8 >= buf.len()`.
pub fn flip_bit(buf: &mut [u8], i: usize) {
    buf[i / 8] ^= 1u8 << (i % 8);
}

/// Number of bits set in `buf`.
pub fn count_ones(buf: &[u8]) -> usize {
    buf.iter().map(|b| b.count_ones() as usize).sum()
}

/// An encoded codeword: a byte buffer with an exact bit length.
///
/// Produced by [`EccCode::encode`](crate::EccCode::encode); the trailing
/// bits of the last byte beyond [`bit_len`](Self::bit_len) are always zero.
///
/// # Examples
///
/// ```
/// use reap_ecc::Codeword;
///
/// let mut cw = Codeword::zeroed(71);
/// cw.set_bit(70, true);
/// assert_eq!(cw.count_ones(), 1);
/// cw.flip_bit(70);
/// assert_eq!(cw.count_ones(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Codeword {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl Codeword {
    /// Creates an all-zero codeword of `bit_len` bits.
    pub fn zeroed(bit_len: usize) -> Self {
        Self {
            bytes: vec![0u8; bit_len.div_ceil(8)],
            bit_len,
        }
    }

    /// Wraps existing bytes as a codeword of `bit_len` bits, clearing any
    /// bits beyond `bit_len`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short to hold `bit_len` bits.
    pub fn from_bytes(mut bytes: Vec<u8>, bit_len: usize) -> Self {
        assert!(bytes.len() * 8 >= bit_len, "buffer shorter than bit length");
        bytes.truncate(bit_len.div_ceil(8));
        let mut cw = Self { bytes, bit_len };
        cw.mask_tail();
        cw
    }

    /// Bit length of the codeword.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Borrows the underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutably borrows the underlying bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Consumes the codeword and returns the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bit_len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.bit_len, "bit {i} out of range");
        get_bit(&self.bytes, i)
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bit_len()`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.bit_len, "bit {i} out of range");
        set_bit(&mut self.bytes, i, value);
    }

    /// Flips bit `i` — the primitive a fault-injection harness uses.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bit_len()`.
    pub fn flip_bit(&mut self, i: usize) {
        assert!(i < self.bit_len, "bit {i} out of range");
        flip_bit(&mut self.bytes, i);
    }

    /// Number of `1` bits in the codeword — the `n` that the accumulation
    /// model of `reap-reliability` consumes.
    pub fn count_ones(&self) -> usize {
        count_ones(&self.bytes)
    }

    fn mask_tail(&mut self) {
        let rem = self.bit_len % 8;
        if rem != 0 {
            if let Some(last) = self.bytes.last_mut() {
                *last &= (1u8 << rem) - 1;
            }
        }
    }
}

impl AsRef<[u8]> for Codeword {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_flip_round_trip() {
        let mut buf = [0u8; 4];
        set_bit(&mut buf, 17, true);
        assert!(get_bit(&buf, 17));
        flip_bit(&mut buf, 17);
        assert!(!get_bit(&buf, 17));
        assert_eq!(count_ones(&buf), 0);
    }

    #[test]
    fn codeword_from_bytes_masks_tail() {
        let cw = Codeword::from_bytes(vec![0xFF, 0xFF], 12);
        assert_eq!(cw.count_ones(), 12);
        assert_eq!(cw.as_bytes(), &[0xFF, 0x0F]);
    }

    #[test]
    fn codeword_from_bytes_truncates_excess() {
        let cw = Codeword::from_bytes(vec![0xAA; 10], 16);
        assert_eq!(cw.as_bytes().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn codeword_bit_bounds_checked() {
        let cw = Codeword::zeroed(12);
        let _ = cw.bit(12);
    }

    #[test]
    #[should_panic(expected = "shorter than bit length")]
    fn from_bytes_rejects_short_buffer() {
        let _ = Codeword::from_bytes(vec![0u8; 1], 9);
    }

    #[test]
    fn zeroed_is_all_zero() {
        assert_eq!(Codeword::zeroed(100).count_ones(), 0);
        assert_eq!(Codeword::zeroed(100).bit_len(), 100);
    }
}
