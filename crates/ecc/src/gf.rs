//! Arithmetic in the finite fields GF(2^m), 3 ≤ m ≤ 14.
//!
//! BCH decoding needs multiplication, inversion and exponentiation of field
//! elements. [`GfTables`] precomputes log/antilog tables from a primitive
//! polynomial, giving O(1) products.

use std::fmt;

/// Primitive polynomials (bit `i` = coefficient of x^i) for GF(2^m).
const PRIMITIVE_POLYS: [(u32, u32); 12] = [
    (3, 0b1011),                // x^3 + x + 1
    (4, 0b1_0011),              // x^4 + x + 1
    (5, 0b10_0101),             // x^5 + x^2 + 1
    (6, 0b100_0011),            // x^6 + x + 1
    (7, 0b1000_1001),           // x^7 + x^3 + 1
    (8, 0b1_0001_1101),         // x^8 + x^4 + x^3 + x^2 + 1
    (9, 0b10_0001_0001),        // x^9 + x^4 + 1
    (10, 0b100_0000_1001),      // x^10 + x^3 + 1
    (11, 0b1000_0000_0101),     // x^11 + x^2 + 1
    (12, 0b1_0000_0101_0011),   // x^12 + x^6 + x^4 + x + 1
    (13, 0b10_0000_0001_1011),  // x^13 + x^4 + x^3 + x + 1
    (14, 0b100_0000_0010_1011), // x^14 + x^5 + x^3 + x + 1
];

/// Log/antilog tables for GF(2^m).
///
/// Elements are represented as `u32` bit-vectors of polynomial coefficients;
/// `0` is the additive identity, `1` the multiplicative identity, and
/// `alpha = 2` (the polynomial `x`) is a primitive element.
///
/// # Examples
///
/// ```
/// use reap_ecc::gf::GfTables;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gf = GfTables::new(4)?;
/// let a = gf.alpha_pow(3);
/// let inv = gf.inv(a);
/// assert_eq!(gf.mul(a, inv), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct GfTables {
    m: u32,
    size: usize, // 2^m - 1
    exp: Vec<u32>,
    log: Vec<u32>,
}

impl fmt::Debug for GfTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GfTables")
            .field("m", &self.m)
            .field("order", &self.size)
            .finish()
    }
}

/// Error constructing [`GfTables`] for an unsupported extension degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedFieldError {
    /// The requested degree `m`.
    pub m: u32,
}

impl fmt::Display for UnsupportedFieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GF(2^{}) is not supported (3 ≤ m ≤ 14)", self.m)
    }
}

impl std::error::Error for UnsupportedFieldError {}

impl GfTables {
    /// Builds the tables for GF(2^m).
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedFieldError`] unless `3 ≤ m ≤ 14`.
    pub fn new(m: u32) -> Result<Self, UnsupportedFieldError> {
        let poly = PRIMITIVE_POLYS
            .iter()
            .find(|(deg, _)| *deg == m)
            .map(|(_, p)| *p)
            .ok_or(UnsupportedFieldError { m })?;
        let size = (1usize << m) - 1;
        let mut exp = vec![0u32; 2 * size];
        let mut log = vec![0u32; size + 1];
        let mut x = 1u32;
        for (i, slot) in exp.iter_mut().take(size).enumerate() {
            *slot = x;
            log[x as usize] = i as u32;
            x <<= 1;
            if x >> m & 1 == 1 {
                x ^= poly;
            }
        }
        // Duplicate for mod-free indexing in mul.
        exp.copy_within(0..size, size);
        Ok(Self { m, size, exp, log })
    }

    /// Extension degree `m`.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order `2^m - 1` (also the natural BCH length).
    pub fn order(&self) -> usize {
        self.size
    }

    /// α^i for any integer exponent `i ≥ 0`.
    pub fn alpha_pow(&self, i: usize) -> u32 {
        self.exp[i % self.size]
    }

    /// Discrete logarithm of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0` or `x` is outside the field.
    pub fn log(&self, x: u32) -> u32 {
        assert!(x != 0, "log of zero is undefined");
        assert!((x as usize) <= self.size, "element out of field");
        self.log[x as usize]
    }

    /// Field product.
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    pub fn inv(&self, x: u32) -> u32 {
        assert!(x != 0, "inverse of zero is undefined");
        self.exp[self.size - self.log[x as usize] as usize]
    }

    /// Field quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn div(&self, a: u32, b: u32) -> u32 {
        if a == 0 {
            return 0;
        }
        self.mul(a, self.inv(b))
    }

    /// `x` raised to an arbitrary power (square-free via logs).
    pub fn pow(&self, x: u32, e: usize) -> u32 {
        if x == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let l = self.log[x as usize] as usize;
        self.exp[(l * e) % self.size]
    }

    /// Evaluates a polynomial (coefficients low-to-high) at field element
    /// `x` using Horner's rule.
    pub fn eval_poly(&self, coeffs: &[u32], x: u32) -> u32 {
        let mut acc = 0u32;
        for &c in coeffs.iter().rev() {
            acc = self.mul(acc, x) ^ c;
        }
        acc
    }

    /// Minimal polynomial of α^i as a coefficient bit-vector (bit `j` =
    /// coefficient of x^j), computed from the conjugacy class
    /// {i, 2i, 4i, ...} mod (2^m − 1).
    pub fn minimal_polynomial(&self, i: usize) -> u64 {
        // Collect the cyclotomic coset of i.
        let mut coset = Vec::new();
        let mut c = i % self.size;
        loop {
            coset.push(c);
            c = (c * 2) % self.size;
            if c == i % self.size {
                break;
            }
        }
        // Multiply out prod (x - α^c) over GF(2^m); result has GF(2) coeffs.
        // poly holds GF(2^m) coefficients low-to-high.
        let mut poly: Vec<u32> = vec![1];
        for &cc in &coset {
            let root = self.alpha_pow(cc);
            // poly *= (x + root)
            let mut next = vec![0u32; poly.len() + 1];
            for (j, &pj) in poly.iter().enumerate() {
                next[j + 1] ^= pj; // x * pj
                next[j] ^= self.mul(pj, root);
            }
            poly = next;
        }
        let mut out = 0u64;
        for (j, &pj) in poly.iter().enumerate() {
            debug_assert!(pj <= 1, "minimal polynomial must have GF(2) coefficients");
            out |= u64::from(pj) << j;
        }
        out
    }
}

/// Multiplies two GF(2) polynomials given as coefficient bit-vectors.
#[cfg(test)]
pub(crate) fn gf2_poly_mul(a: u64, b: u64) -> u128 {
    let mut out = 0u128;
    let mut bb = b;
    let mut shift = 0;
    while bb != 0 {
        if bb & 1 == 1 {
            out ^= (a as u128) << shift;
        }
        bb >>= 1;
        shift += 1;
    }
    out
}

/// Degree of a GF(2) polynomial bit-vector (`None` for the zero polynomial).
pub(crate) fn gf2_poly_degree(p: u128) -> Option<u32> {
    if p == 0 {
        None
    } else {
        Some(127 - p.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_supported_fields_construct() {
        for m in 3..=14 {
            let gf = GfTables::new(m).unwrap();
            assert_eq!(gf.order(), (1usize << m) - 1);
        }
    }

    #[test]
    fn unsupported_fields_error() {
        assert!(GfTables::new(2).is_err());
        assert!(GfTables::new(15).is_err());
        let e = GfTables::new(20).unwrap_err();
        assert!(e.to_string().contains("2^20"));
    }

    #[test]
    fn alpha_generates_whole_group() {
        let gf = GfTables::new(8).unwrap();
        let mut seen = vec![false; gf.order() + 1];
        for i in 0..gf.order() {
            let x = gf.alpha_pow(i) as usize;
            assert!(!seen[x], "α^{i} repeats");
            seen[x] = true;
        }
    }

    #[test]
    fn mul_matches_schoolbook_in_gf16() {
        // GF(16) with x^4 + x + 1: α^4 = α + 1 = 0b0011.
        let gf = GfTables::new(4).unwrap();
        assert_eq!(gf.mul(0b0010, 0b0010), 0b0100); // x * x = x^2
        assert_eq!(gf.alpha_pow(4), 0b0011);
        assert_eq!(gf.mul(0b1000, 0b0010), 0b0011); // x^3 * x = x^4 = x + 1
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        let gf = GfTables::new(6).unwrap();
        for x in 1..=gf.order() as u32 {
            assert_eq!(gf.mul(x, gf.inv(x)), 1, "x = {x}");
        }
    }

    #[test]
    fn division_round_trips() {
        let gf = GfTables::new(5).unwrap();
        for a in 0..=gf.order() as u32 {
            for b in 1..=gf.order() as u32 {
                assert_eq!(gf.mul(gf.div(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = GfTables::new(7).unwrap();
        let x = gf.alpha_pow(13);
        let mut acc = 1u32;
        for e in 0..10 {
            assert_eq!(gf.pow(x, e), acc);
            acc = gf.mul(acc, x);
        }
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
    }

    #[test]
    fn eval_poly_horner() {
        let gf = GfTables::new(4).unwrap();
        // p(x) = 1 + x + x^3 at x = α
        let a = gf.alpha_pow(1);
        let expected = 1 ^ a ^ gf.pow(a, 3);
        assert_eq!(gf.eval_poly(&[1, 1, 0, 1], a), expected);
    }

    #[test]
    fn minimal_polynomial_of_alpha_is_the_primitive_poly() {
        let gf = GfTables::new(4).unwrap();
        assert_eq!(gf.minimal_polynomial(1), 0b1_0011);
        let gf8 = GfTables::new(8).unwrap();
        assert_eq!(gf8.minimal_polynomial(1), 0b1_0001_1101);
    }

    #[test]
    fn minimal_polynomial_annihilates_its_root() {
        let gf = GfTables::new(6).unwrap();
        for i in 1..10 {
            let mp = gf.minimal_polynomial(i);
            // Evaluate the GF(2)-coefficient polynomial at α^i in GF(2^m).
            let coeffs: Vec<u32> = (0..64).map(|j| (mp >> j & 1) as u32).collect();
            assert_eq!(gf.eval_poly(&coeffs, gf.alpha_pow(i)), 0, "mp of α^{i}");
        }
    }

    #[test]
    fn gf2_poly_helpers() {
        // (x+1)(x+1) = x^2+1 over GF(2)
        assert_eq!(gf2_poly_mul(0b11, 0b11), 0b101);
        assert_eq!(gf2_poly_degree(0b101), Some(2));
        assert_eq!(gf2_poly_degree(0), None);
    }

    #[test]
    #[should_panic(expected = "log of zero")]
    fn log_of_zero_panics() {
        let gf = GfTables::new(4).unwrap();
        let _ = gf.log(0);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inv_of_zero_panics() {
        let gf = GfTables::new(4).unwrap();
        let _ = gf.inv(0);
    }
}
