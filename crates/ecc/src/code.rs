//! The [`EccCode`] trait and shared result/error types.

use crate::bits::Codeword;
use std::error::Error;
use std::fmt;

/// Outcome of a decode attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// Syndrome was zero: no error observed.
    Clean,
    /// The decoder corrected this many bit errors.
    Corrected(usize),
    /// The decoder detected an uncorrectable error; returned data is a
    /// best-effort extraction of the raw (uncorrected) data bits.
    Detected,
}

impl DecodeOutcome {
    /// Whether the decode ended with a correction.
    pub fn is_corrected(self) -> bool {
        matches!(self, DecodeOutcome::Corrected(_))
    }

    /// Whether the decoder flagged an uncorrectable error.
    pub fn is_detected_uncorrectable(self) -> bool {
        matches!(self, DecodeOutcome::Detected)
    }

    /// Whether the data can be trusted as far as the decoder knows
    /// (clean or corrected — miscorrections are invisible to the decoder).
    pub fn is_trusted(self) -> bool {
        !self.is_detected_uncorrectable()
    }
}

impl fmt::Display for DecodeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeOutcome::Clean => f.write_str("clean"),
            DecodeOutcome::Corrected(n) => write!(f, "corrected {n} bit(s)"),
            DecodeOutcome::Detected => f.write_str("uncorrectable error detected"),
        }
    }
}

/// A decoded block: the recovered data bytes plus the decode outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Recovered data, `data_bits / 8` bytes (LSB-first bit packing).
    pub data: Vec<u8>,
    /// What the decoder observed.
    pub outcome: DecodeOutcome,
}

/// A binary block error-correcting code.
///
/// Implementations are deterministic and pure; the trait is object-safe so
/// cache models can hold `Box<dyn EccCode>`.
///
/// # Examples
///
/// ```
/// use reap_ecc::{EccCode, HammingSec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code: Box<dyn EccCode> = Box::new(HammingSec::new(64)?);
/// assert_eq!(code.data_bits(), 64);
/// assert_eq!(code.correctable_errors(), 1);
/// # Ok(())
/// # }
/// ```
pub trait EccCode: fmt::Debug + Send + Sync {
    /// Number of payload bits `k`.
    fn data_bits(&self) -> usize;

    /// Number of check bits `r`.
    fn check_bits(&self) -> usize;

    /// Codeword length `n = k + r`.
    fn code_bits(&self) -> usize {
        self.data_bits() + self.check_bits()
    }

    /// Guaranteed number of correctable bit errors `t`.
    fn correctable_errors(&self) -> usize;

    /// Guaranteed number of detectable bit errors (≥ `t`).
    fn detectable_errors(&self) -> usize;

    /// Code rate `k / n`.
    fn rate(&self) -> f64 {
        self.data_bits() as f64 / self.code_bits() as f64
    }

    /// Human-readable name, e.g. `"Hsiao SEC-DED (72,64)"`.
    fn name(&self) -> String;

    /// Encodes `data` (exactly `data_bits().div_ceil(8)` bytes; bits beyond
    /// `data_bits()` must be zero) into a codeword.
    ///
    /// # Panics
    ///
    /// Implementations panic if `data` has the wrong length or non-zero
    /// padding bits.
    fn encode(&self, data: &[u8]) -> Codeword;

    /// Decodes a received word (exactly `code_bits().div_ceil(8)` bytes).
    ///
    /// # Panics
    ///
    /// Implementations panic if `received` has the wrong length.
    fn decode(&self, received: &[u8]) -> Decoded;
}

/// Validates an encode input buffer against the code geometry.
///
/// Shared helper for `EccCode` implementations.
///
/// # Panics
///
/// Panics when the buffer length mismatches `data_bits` or padding bits are
/// set.
pub(crate) fn check_data_buffer(data: &[u8], data_bits: usize) {
    assert_eq!(
        data.len(),
        data_bits.div_ceil(8),
        "data buffer must be exactly ceil(k/8) bytes"
    );
    let rem = data_bits % 8;
    if rem != 0 {
        let tail = data[data.len() - 1];
        assert_eq!(tail >> rem, 0, "padding bits beyond data_bits must be zero");
    }
}

/// Validates a decode input buffer against the code geometry.
///
/// # Panics
///
/// Panics when the buffer length mismatches `code_bits`.
pub(crate) fn check_code_buffer(received: &[u8], code_bits: usize) {
    assert_eq!(
        received.len(),
        code_bits.div_ceil(8),
        "received buffer must be exactly ceil(n/8) bytes"
    );
}

/// Error constructing a code with unsupported geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// The requested data width is zero or otherwise unsupported.
    UnsupportedDataWidth {
        /// Requested width in bits.
        data_bits: usize,
    },
    /// The requested correction capability is unsupported.
    UnsupportedCorrection {
        /// Requested `t`.
        t: usize,
    },
    /// The code would not fit the underlying field/codeword length.
    DoesNotFit {
        /// Requested data width in bits.
        data_bits: usize,
        /// Requested `t`.
        t: usize,
        /// Maximum payload the construction can carry.
        max_data_bits: usize,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodeError::UnsupportedDataWidth { data_bits } => {
                write!(f, "unsupported data width of {data_bits} bits")
            }
            CodeError::UnsupportedCorrection { t } => {
                write!(f, "unsupported correction capability t = {t}")
            }
            CodeError::DoesNotFit {
                data_bits,
                t,
                max_data_bits,
            } => write!(
                f,
                "a t = {t} code for {data_bits} data bits exceeds the field \
                 (max payload {max_data_bits} bits)"
            ),
        }
    }
}

impl Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(DecodeOutcome::Clean.is_trusted());
        assert!(DecodeOutcome::Corrected(1).is_corrected());
        assert!(DecodeOutcome::Corrected(2).is_trusted());
        assert!(DecodeOutcome::Detected.is_detected_uncorrectable());
        assert!(!DecodeOutcome::Detected.is_trusted());
    }

    #[test]
    fn outcome_display() {
        assert_eq!(DecodeOutcome::Clean.to_string(), "clean");
        assert_eq!(
            DecodeOutcome::Corrected(2).to_string(),
            "corrected 2 bit(s)"
        );
        assert_eq!(
            DecodeOutcome::Detected.to_string(),
            "uncorrectable error detected"
        );
    }

    #[test]
    fn code_error_display() {
        let e = CodeError::DoesNotFit {
            data_bits: 4096,
            t: 3,
            max_data_bits: 1003,
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("max payload 1003"));
    }

    #[test]
    #[should_panic(expected = "padding bits")]
    fn data_buffer_padding_checked() {
        check_data_buffer(&[0xFF], 4);
    }

    #[test]
    #[should_panic(expected = "exactly ceil")]
    fn data_buffer_length_checked() {
        check_data_buffer(&[0u8; 2], 8);
    }
}
