//! Single-error-correcting Hamming codes for arbitrary data widths.
//!
//! The classic positional construction: codeword positions are numbered
//! from 1; positions that are powers of two hold parity bits; parity bit
//! `2^j` covers every position whose index has bit `j` set. The syndrome of
//! a received word is then *the index of the flipped bit* (or zero when the
//! word is clean).
//!
//! A shortened code (any `k` that is not of the form `2^r − r − 1`) can
//! produce a syndrome pointing past the end of the codeword; that is
//! reported as a detected uncorrectable error.

use crate::bits::{get_bit, Codeword};
use crate::code::{
    check_code_buffer, check_data_buffer, CodeError, DecodeOutcome, Decoded, EccCode,
};

/// A single-error-correcting Hamming code `(k + r, k)`.
///
/// # Examples
///
/// ```
/// use reap_ecc::{EccCode, HammingSec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = HammingSec::new(64)?;
/// assert_eq!(code.check_bits(), 7); // the classic (71,64) geometry
/// let mut cw = code.encode(&[0x42; 8]);
/// cw.flip_bit(29);
/// let out = code.decode(cw.as_bytes());
/// assert_eq!(out.data, [0x42; 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HammingSec {
    data_bits: usize,
    check_bits: usize,
}

impl HammingSec {
    /// Constructs a SEC Hamming code for `data_bits` payload bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedDataWidth`] if `data_bits == 0`.
    pub fn new(data_bits: usize) -> Result<Self, CodeError> {
        if data_bits == 0 {
            return Err(CodeError::UnsupportedDataWidth { data_bits });
        }
        let mut r = 1usize;
        while (1usize << r) < data_bits + r + 1 {
            r += 1;
        }
        Ok(Self {
            data_bits,
            check_bits: r,
        })
    }

    /// Whether 1-based codeword position `pos` holds a parity bit.
    fn is_parity_position(pos: usize) -> bool {
        pos.is_power_of_two()
    }

    /// Iterates 1-based positions of data bits in order.
    fn data_positions(&self) -> impl Iterator<Item = usize> {
        let n = self.code_bits();
        (1..=n).filter(|p| !Self::is_parity_position(*p))
    }
}

impl EccCode for HammingSec {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        self.check_bits
    }

    fn correctable_errors(&self) -> usize {
        1
    }

    fn detectable_errors(&self) -> usize {
        1
    }

    fn name(&self) -> String {
        format!("Hamming SEC ({},{})", self.code_bits(), self.data_bits)
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        crate::telemetry::note_encode();
        check_data_buffer(data, self.data_bits);
        let n = self.code_bits();
        let mut cw = Codeword::zeroed(n);
        // Place data bits at non-power-of-two positions.
        for (i, pos) in self.data_positions().enumerate() {
            if get_bit(data, i) {
                cw.set_bit(pos - 1, true);
            }
        }
        // Compute each parity bit: XOR of covered positions.
        for j in 0..self.check_bits {
            let pbit = 1usize << j;
            let mut parity = false;
            for pos in 1..=n {
                if pos != pbit && pos & pbit != 0 && cw.bit(pos - 1) {
                    parity = !parity;
                }
            }
            cw.set_bit(pbit - 1, parity);
        }
        cw
    }

    fn decode(&self, received: &[u8]) -> Decoded {
        let n = self.code_bits();
        check_code_buffer(received, n);
        // Syndrome = XOR of the 1-based indices of set bits.
        let mut syndrome = 0usize;
        for pos in 1..=n {
            if get_bit(received, pos - 1) {
                syndrome ^= pos;
            }
        }
        let mut word = received.to_vec();
        let outcome = if syndrome == 0 {
            DecodeOutcome::Clean
        } else if syndrome <= n {
            crate::bits::flip_bit(&mut word, syndrome - 1);
            DecodeOutcome::Corrected(1)
        } else {
            // Shortened code: syndrome points past the codeword.
            DecodeOutcome::Detected
        };
        let mut data = vec![0u8; self.data_bits.div_ceil(8)];
        for (i, pos) in self.data_positions().enumerate() {
            if get_bit(&word, pos - 1) {
                crate::bits::set_bit(&mut data, i, true);
            }
        }
        crate::telemetry::note_decode(outcome);
        Decoded { data, outcome }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(code: &HammingSec, data: &[u8]) {
        let cw = code.encode(data);
        let out = code.decode(cw.as_bytes());
        assert_eq!(out.outcome, DecodeOutcome::Clean);
        assert_eq!(out.data, data);
    }

    #[test]
    fn geometry_matches_textbook_values() {
        for (k, r) in [
            (1, 2),
            (4, 3),
            (11, 4),
            (26, 5),
            (57, 6),
            (64, 7),
            (120, 7),
            (512, 10),
        ] {
            let c = HammingSec::new(k).unwrap();
            assert_eq!(c.check_bits(), r, "k = {k}");
            assert_eq!(c.code_bits(), k + r);
        }
    }

    #[test]
    fn zero_width_rejected() {
        assert!(matches!(
            HammingSec::new(0),
            Err(CodeError::UnsupportedDataWidth { data_bits: 0 })
        ));
    }

    #[test]
    fn clean_round_trip_various_widths() {
        for k in [1usize, 4, 8, 13, 64, 100, 512] {
            let code = HammingSec::new(k).unwrap();
            let mut data = vec![0u8; k.div_ceil(8)];
            for (i, b) in data.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(37).wrapping_add(11);
            }
            let rem = k % 8;
            if rem != 0 {
                let last = data.len() - 1;
                data[last] &= (1 << rem) - 1;
            }
            roundtrip(&code, &data);
        }
    }

    #[test]
    fn corrects_every_single_bit_error_exhaustively() {
        let code = HammingSec::new(64).unwrap();
        let data = [0xC3, 0x5A, 0x00, 0xFF, 0x81, 0x7E, 0x12, 0xEF];
        let cw = code.encode(&data);
        for i in 0..code.code_bits() {
            let mut corrupted = cw.clone();
            corrupted.flip_bit(i);
            let out = code.decode(corrupted.as_bytes());
            assert_eq!(out.outcome, DecodeOutcome::Corrected(1), "bit {i}");
            assert_eq!(out.data, data, "bit {i}");
        }
    }

    #[test]
    fn double_errors_are_miscorrected_by_sec() {
        // SEC has distance 3: two flips yield a nonzero syndrome that maps
        // to some third bit — the decoder "corrects" to a wrong word. This
        // is exactly why accumulation (§III of the paper) is fatal.
        let code = HammingSec::new(64).unwrap();
        let data = [0x55; 8];
        let cw = code.encode(&data);
        let mut corrupted = cw.clone();
        corrupted.flip_bit(3);
        corrupted.flip_bit(47);
        let out = code.decode(corrupted.as_bytes());
        // Either detected (shortened-region syndrome) or silently wrong.
        if out.outcome != DecodeOutcome::Detected {
            assert_ne!(
                out.data, data,
                "a double error must not decode cleanly to the truth"
            );
        }
    }

    #[test]
    fn rate_improves_with_block_size() {
        let small = HammingSec::new(8).unwrap();
        let large = HammingSec::new(512).unwrap();
        assert!(large.rate() > small.rate());
    }

    #[test]
    fn name_mentions_geometry() {
        assert_eq!(HammingSec::new(64).unwrap().name(), "Hamming SEC (71,64)");
    }

    #[test]
    fn works_as_trait_object() {
        let code: Box<dyn EccCode> = Box::new(HammingSec::new(16).unwrap());
        let cw = code.encode(&[0xAB, 0xCD]);
        assert_eq!(code.decode(cw.as_bytes()).data, vec![0xAB, 0xCD]);
    }

    #[test]
    #[should_panic(expected = "exactly ceil")]
    fn encode_rejects_wrong_buffer_length() {
        let code = HammingSec::new(64).unwrap();
        let _ = code.encode(&[0u8; 7]);
    }
}
