//! Binary BCH codes correcting `t ≥ 1` errors.
//!
//! The "aggressive ECC" option of the paper's introduction: a
//! `t`-error-correcting BCH code over GF(2^m) with designed distance
//! `2t + 1`. Construction picks the smallest field whose natural length
//! `n = 2^m − 1` fits the payload plus `deg g(x)` check bits, and shortens
//! the code to the requested data width. Decoding is the textbook chain:
//! syndrome evaluation → Berlekamp–Massey → Chien search.

use crate::bits::{get_bit, Codeword};
use crate::code::{
    check_code_buffer, check_data_buffer, CodeError, DecodeOutcome, Decoded, EccCode,
};
use crate::gf::{gf2_poly_degree, GfTables};

/// A shortened binary BCH code with correction capability `t`.
///
/// # Examples
///
/// ```
/// use reap_ecc::{Bch, EccCode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A DEC (double-error-correcting) code for a 64-bit word.
/// let code = Bch::new(64, 2)?;
/// let data = [1, 2, 3, 4, 5, 6, 7, 8];
/// let mut cw = code.encode(&data);
/// cw.flip_bit(0);
/// cw.flip_bit(63);
/// let out = code.decode(cw.as_bytes());
/// assert_eq!(out.data, data);
/// assert!(out.outcome.is_corrected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Bch {
    gf: GfTables,
    t: usize,
    data_bits: usize,
    check_bits: usize,
    /// Generator polynomial, bit `i` = coefficient of x^i; degree = check_bits.
    generator: u128,
}

impl Bch {
    /// Constructs a `t`-error-correcting BCH code for `data_bits` payload
    /// bits.
    ///
    /// # Errors
    ///
    /// * [`CodeError::UnsupportedDataWidth`] if `data_bits == 0`.
    /// * [`CodeError::UnsupportedCorrection`] if `t == 0`.
    /// * [`CodeError::DoesNotFit`] if no supported field (m ≤ 14, check
    ///   bits ≤ 120) can carry the payload at this `t`.
    pub fn new(data_bits: usize, t: usize) -> Result<Self, CodeError> {
        if data_bits == 0 {
            return Err(CodeError::UnsupportedDataWidth { data_bits });
        }
        if t == 0 {
            return Err(CodeError::UnsupportedCorrection { t });
        }
        let mut best_fit: Option<(GfTables, u128, usize)> = None;
        let mut max_payload = 0usize;
        for m in 3..=14u32 {
            let gf = GfTables::new(m).expect("supported range");
            let n = gf.order();
            if 2 * t >= n {
                continue;
            }
            let Some(gen) = generator_polynomial(&gf, t) else {
                continue;
            };
            let r = gf2_poly_degree(gen).expect("generator is non-zero") as usize;
            if r > 120 {
                break;
            }
            let k_full = n - r;
            max_payload = max_payload.max(k_full);
            if k_full >= data_bits {
                best_fit = Some((gf, gen, r));
                break;
            }
        }
        match best_fit {
            Some((gf, generator, check_bits)) => Ok(Self {
                gf,
                t,
                data_bits,
                check_bits,
                generator,
            }),
            None => Err(CodeError::DoesNotFit {
                data_bits,
                t,
                max_data_bits: max_payload,
            }),
        }
    }

    /// The underlying field degree `m`.
    pub fn field_degree(&self) -> u32 {
        self.gf.degree()
    }

    /// The natural (unshortened) code length `2^m − 1`.
    pub fn natural_length(&self) -> usize {
        self.gf.order()
    }

    /// Coefficient of x^`p` in the received word, where parity occupies
    /// coefficients `0..r` and data occupies `r..r+k` (external layout is
    /// `[data | check]`).
    fn coeff(&self, received: &[u8], p: usize) -> bool {
        let r = self.check_bits;
        if p < r {
            get_bit(received, self.data_bits + p)
        } else {
            get_bit(received, p - r)
        }
    }

    /// Maps an internal coefficient index to the external bit index.
    fn external_index(&self, p: usize) -> usize {
        let r = self.check_bits;
        if p < r {
            self.data_bits + p
        } else {
            p - r
        }
    }

    /// Syndromes S_1..S_2t of the received word.
    fn syndromes(&self, received: &[u8]) -> Vec<u32> {
        let mut s = vec![0u32; 2 * self.t];
        for p in 0..self.code_bits() {
            if self.coeff(received, p) {
                for (j, sj) in s.iter_mut().enumerate() {
                    *sj ^= self.gf.alpha_pow(p * (j + 1));
                }
            }
        }
        s
    }

    /// Berlekamp–Massey: returns the error-locator polynomial σ
    /// (coefficients low-to-high) or `None` if its degree exceeds `t`.
    fn berlekamp_massey(&self, s: &[u32]) -> Option<Vec<u32>> {
        let gf = &self.gf;
        let mut sigma = vec![1u32];
        let mut prev = vec![1u32];
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut b = 1u32;
        for n_i in 0..s.len() {
            let mut d = s[n_i];
            for i in 1..=l.min(sigma.len() - 1) {
                d ^= gf.mul(sigma[i], s[n_i - i]);
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= n_i {
                let saved = sigma.clone();
                let scale = gf.div(d, b);
                add_scaled_shifted(gf, &mut sigma, &prev, scale, shift);
                l = n_i + 1 - l;
                prev = saved;
                b = d;
                shift = 1;
            } else {
                let scale = gf.div(d, b);
                add_scaled_shifted(gf, &mut sigma, &prev, scale, shift);
                shift += 1;
            }
        }
        while sigma.last() == Some(&0) && sigma.len() > 1 {
            sigma.pop();
        }
        (sigma.len() - 1 <= self.t && l == sigma.len() - 1).then_some(sigma)
    }

    /// Chien search: internal coefficient positions where σ locates errors,
    /// or `None` if the root count does not match σ's degree or a root
    /// falls in the shortened (non-existent) region.
    fn chien_search(&self, sigma: &[u32]) -> Option<Vec<usize>> {
        let n = self.gf.order();
        let degree = sigma.len() - 1;
        let mut positions = Vec::with_capacity(degree);
        for p in 0..n {
            // Error at position p <=> σ(α^{-p}) = 0.
            let x = self.gf.alpha_pow(n - p % n);
            if self.gf.eval_poly(sigma, x) == 0 {
                if p >= self.code_bits() {
                    return None; // root in the shortened region: bogus
                }
                positions.push(p);
                if positions.len() > degree {
                    return None;
                }
            }
        }
        (positions.len() == degree).then_some(positions)
    }

    fn extract_data(&self, word: &[u8]) -> Vec<u8> {
        let mut data = vec![0u8; self.data_bits.div_ceil(8)];
        for i in 0..self.data_bits {
            if get_bit(word, i) {
                crate::bits::set_bit(&mut data, i, true);
            }
        }
        data
    }
}

/// `sigma += scale * x^shift * prev` over GF(2^m).
fn add_scaled_shifted(gf: &GfTables, sigma: &mut Vec<u32>, prev: &[u32], scale: u32, shift: usize) {
    let needed = prev.len() + shift;
    if sigma.len() < needed {
        sigma.resize(needed, 0);
    }
    for (i, &p) in prev.iter().enumerate() {
        sigma[i + shift] ^= gf.mul(scale, p);
    }
}

/// Generator polynomial `g(x) = lcm of minimal polynomials of α^1..α^2t`.
///
/// Returns `None` when the degree would overflow the u128 representation.
fn generator_polynomial(gf: &GfTables, t: usize) -> Option<u128> {
    let mut g: u128 = 1;
    let mut included: Vec<u64> = Vec::new();
    for i in 1..=2 * t {
        let mp = gf.minimal_polynomial(i);
        if included.contains(&mp) {
            continue;
        }
        let deg_g = gf2_poly_degree(g)?;
        let deg_mp = 63 - mp.leading_zeros();
        if deg_g + deg_mp > 120 {
            return None;
        }
        g = poly_mul_u128(g, mp);
        included.push(mp);
    }
    Some(g)
}

/// Multiplies a u128 GF(2) polynomial by a u64 GF(2) polynomial.
fn poly_mul_u128(a: u128, b: u64) -> u128 {
    let mut out = 0u128;
    let mut bb = b;
    let mut shift = 0;
    while bb != 0 {
        if bb & 1 == 1 {
            out ^= a << shift;
        }
        bb >>= 1;
        shift += 1;
    }
    out
}

impl EccCode for Bch {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        self.check_bits
    }

    fn correctable_errors(&self) -> usize {
        self.t
    }

    fn detectable_errors(&self) -> usize {
        self.t
    }

    fn name(&self) -> String {
        format!(
            "BCH t={} ({},{}) over GF(2^{})",
            self.t,
            self.code_bits(),
            self.data_bits,
            self.gf.degree()
        )
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        crate::telemetry::note_encode();
        check_data_buffer(data, self.data_bits);
        let r = self.check_bits;
        // CRC-style long division: remainder of d(x) * x^r by g(x).
        let g_low = self.generator & ((1u128 << r) - 1); // g without the x^r term
        let top = 1u128 << (r - 1);
        let mut rem = 0u128;
        for i in (0..self.data_bits).rev() {
            let feedback = get_bit(data, i) ^ (rem & top != 0);
            rem = (rem << 1) & ((1u128 << r) - 1);
            if feedback {
                rem ^= g_low;
            }
        }
        let mut cw = Codeword::zeroed(self.code_bits());
        for i in 0..self.data_bits {
            if get_bit(data, i) {
                cw.set_bit(i, true);
            }
        }
        for j in 0..r {
            if rem >> j & 1 == 1 {
                cw.set_bit(self.data_bits + j, true);
            }
        }
        cw
    }

    fn decode(&self, received: &[u8]) -> Decoded {
        let decoded = self.decode_inner(received);
        crate::telemetry::note_decode(decoded.outcome);
        decoded
    }
}

impl Bch {
    fn decode_inner(&self, received: &[u8]) -> Decoded {
        check_code_buffer(received, self.code_bits());
        let s = self.syndromes(received);
        if s.iter().all(|&x| x == 0) {
            return Decoded {
                data: self.extract_data(received),
                outcome: DecodeOutcome::Clean,
            };
        }
        let Some(sigma) = self.berlekamp_massey(&s) else {
            return Decoded {
                data: self.extract_data(received),
                outcome: DecodeOutcome::Detected,
            };
        };
        let Some(positions) = self.chien_search(&sigma) else {
            return Decoded {
                data: self.extract_data(received),
                outcome: DecodeOutcome::Detected,
            };
        };
        let mut word = received.to_vec();
        for p in &positions {
            crate::bits::flip_bit(&mut word, self.external_index(*p));
        }
        Decoded {
            data: self.extract_data(&word),
            outcome: DecodeOutcome::Corrected(positions.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_of_classic_codes() {
        // BCH(15,7,t=2): m=4, g = lcm(m1,m3) of degree 8.
        let c = Bch::new(7, 2).unwrap();
        assert_eq!(c.field_degree(), 4);
        assert_eq!(c.check_bits(), 8);
        // BCH(15,5,t=3): degree 10 generator.
        let c3 = Bch::new(5, 3).unwrap();
        assert_eq!(c3.field_degree(), 4);
        assert_eq!(c3.check_bits(), 10);
        // DEC for 64-bit words: m=7 (n=127), r = 14.
        let dec = Bch::new(64, 2).unwrap();
        assert_eq!(dec.field_degree(), 7);
        assert_eq!(dec.check_bits(), 14);
        // TEC for 512-bit lines: m=10 (n=1023), r = 30.
        let tec = Bch::new(512, 3).unwrap();
        assert_eq!(tec.field_degree(), 10);
        assert_eq!(tec.check_bits(), 30);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(matches!(
            Bch::new(0, 2),
            Err(CodeError::UnsupportedDataWidth { .. })
        ));
        assert!(matches!(
            Bch::new(64, 0),
            Err(CodeError::UnsupportedCorrection { .. })
        ));
    }

    #[test]
    fn oversized_payload_reports_fit_limit() {
        let err = Bch::new(100_000, 8).unwrap_err();
        assert!(matches!(err, CodeError::DoesNotFit { .. }));
    }

    #[test]
    fn clean_round_trip() {
        let code = Bch::new(64, 2).unwrap();
        let data = [0xFE, 0xDC, 0xBA, 0x98, 0x76, 0x54, 0x32, 0x10];
        let out = code.decode(code.encode(&data).as_bytes());
        assert_eq!(out.outcome, DecodeOutcome::Clean);
        assert_eq!(out.data, data);
    }

    #[test]
    fn corrects_all_single_errors_exhaustively() {
        let code = Bch::new(16, 2).unwrap();
        let data = [0xA7, 0x1B];
        let cw = code.encode(&data);
        for i in 0..code.code_bits() {
            let mut w = cw.clone();
            w.flip_bit(i);
            let out = code.decode(w.as_bytes());
            assert_eq!(out.outcome, DecodeOutcome::Corrected(1), "bit {i}");
            assert_eq!(out.data, data, "bit {i}");
        }
    }

    #[test]
    fn corrects_all_double_errors_exhaustively_small_code() {
        let code = Bch::new(7, 2).unwrap(); // BCH(15,7)
        let data = [0b0101_1010 & 0x7F];
        let cw = code.encode(&data);
        let n = code.code_bits();
        for i in 0..n {
            for j in (i + 1)..n {
                let mut w = cw.clone();
                w.flip_bit(i);
                w.flip_bit(j);
                let out = code.decode(w.as_bytes());
                assert_eq!(out.outcome, DecodeOutcome::Corrected(2), "bits {i},{j}");
                assert_eq!(out.data, data, "bits {i},{j}");
            }
        }
    }

    #[test]
    fn corrects_triple_errors_with_t3() {
        let code = Bch::new(512, 3).unwrap();
        let mut data = vec![0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(97).wrapping_add(5);
        }
        let cw = code.encode(&data);
        for (a, b, c) in [
            (0usize, 255usize, 511usize),
            (1, 2, 3),
            (100, 300, 530),
            (10, 270, 515),
        ] {
            let mut w = cw.clone();
            w.flip_bit(a);
            w.flip_bit(b);
            w.flip_bit(c);
            let out = code.decode(w.as_bytes());
            assert_eq!(out.outcome, DecodeOutcome::Corrected(3), "bits {a},{b},{c}");
            assert_eq!(out.data, data);
        }
    }

    #[test]
    fn too_many_errors_do_not_decode_to_truth() {
        let code = Bch::new(64, 2).unwrap();
        let data = [0x11; 8];
        let cw = code.encode(&data);
        let mut w = cw.clone();
        for i in [3, 17, 42] {
            w.flip_bit(i);
        }
        let out = code.decode(w.as_bytes());
        // Three errors with t = 2: either detected or miscorrected.
        if out.outcome != DecodeOutcome::Detected {
            assert_ne!(out.data, data);
        }
    }

    #[test]
    fn name_mentions_t_and_field() {
        let code = Bch::new(512, 3).unwrap();
        assert_eq!(code.name(), "BCH t=3 (542,512) over GF(2^10)");
    }
}
