//! Single-parity-bit code: detects any odd number of errors, corrects
//! nothing.
//!
//! The cheapest protection a tag or metadata array gets; in the REAP
//! study it serves as the degenerate baseline of the protection-strength
//! ablation (`t = 0`: every disturbance in a parity-protected line is at
//! best *detected*).

use crate::bits::{count_ones, get_bit, Codeword};
use crate::code::{
    check_code_buffer, check_data_buffer, CodeError, DecodeOutcome, Decoded, EccCode,
};

/// An even-parity code `(k + 1, k)`.
///
/// # Examples
///
/// ```
/// use reap_ecc::parity::Parity;
/// use reap_ecc::EccCode;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = Parity::new(64)?;
/// let mut cw = code.encode(&[0xAB; 8]);
/// cw.flip_bit(5);
/// assert!(code.decode(cw.as_bytes()).outcome.is_detected_uncorrectable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parity {
    data_bits: usize,
}

impl Parity {
    /// Creates an even-parity code over `data_bits` payload bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedDataWidth`] if `data_bits == 0`.
    pub fn new(data_bits: usize) -> Result<Self, CodeError> {
        if data_bits == 0 {
            return Err(CodeError::UnsupportedDataWidth { data_bits });
        }
        Ok(Self { data_bits })
    }
}

impl EccCode for Parity {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        1
    }

    fn correctable_errors(&self) -> usize {
        0
    }

    fn detectable_errors(&self) -> usize {
        1
    }

    fn name(&self) -> String {
        format!("even parity ({},{})", self.data_bits + 1, self.data_bits)
    }

    fn encode(&self, data: &[u8]) -> Codeword {
        crate::telemetry::note_encode();
        check_data_buffer(data, self.data_bits);
        let mut cw = Codeword::zeroed(self.data_bits + 1);
        for i in 0..self.data_bits {
            if get_bit(data, i) {
                cw.set_bit(i, true);
            }
        }
        if count_ones(data) % 2 == 1 {
            cw.set_bit(self.data_bits, true);
        }
        cw
    }

    fn decode(&self, received: &[u8]) -> Decoded {
        check_code_buffer(received, self.data_bits + 1);
        let parity_ok = count_ones(received).is_multiple_of(2);
        let mut data = vec![0u8; self.data_bits.div_ceil(8)];
        for i in 0..self.data_bits {
            if get_bit(received, i) {
                crate::bits::set_bit(&mut data, i, true);
            }
        }
        let outcome = if parity_ok {
            DecodeOutcome::Clean
        } else {
            DecodeOutcome::Detected
        };
        crate::telemetry::note_decode(outcome);
        Decoded { data, outcome }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_round_trip() {
        let code = Parity::new(16).unwrap();
        let data = [0x3C, 0x99];
        let out = code.decode(code.encode(&data).as_bytes());
        assert_eq!(out.outcome, DecodeOutcome::Clean);
        assert_eq!(out.data, data);
    }

    #[test]
    fn detects_every_single_flip_exhaustively() {
        let code = Parity::new(32).unwrap();
        let data = [0x12, 0x34, 0x56, 0x78];
        let cw = code.encode(&data);
        for i in 0..code.code_bits() {
            let mut w = cw.clone();
            w.flip_bit(i);
            assert_eq!(
                code.decode(w.as_bytes()).outcome,
                DecodeOutcome::Detected,
                "bit {i}"
            );
        }
    }

    #[test]
    fn misses_every_double_flip() {
        // Even weight errors are invisible to parity — the reason it is
        // the t = 0 floor of the ablation.
        let code = Parity::new(16).unwrap();
        let data = [0xFF, 0x00];
        let mut w = code.encode(&data);
        w.flip_bit(0);
        w.flip_bit(9);
        assert_eq!(code.decode(w.as_bytes()).outcome, DecodeOutcome::Clean);
    }

    #[test]
    fn geometry() {
        let code = Parity::new(64).unwrap();
        assert_eq!(code.code_bits(), 65);
        assert_eq!(code.correctable_errors(), 0);
        assert_eq!(code.name(), "even parity (65,64)");
        assert!(Parity::new(0).is_err());
    }

    #[test]
    fn parity_bit_value_matches_payload_weight() {
        let code = Parity::new(8).unwrap();
        assert!(!code.encode(&[0b0000_0011]).bit(8), "even weight: parity 0");
        assert!(code.encode(&[0b0000_0111]).bit(8), "odd weight: parity 1");
    }
}
