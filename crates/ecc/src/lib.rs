//! Error-correcting codes for memory protection.
//!
//! The REAP-cache study protects STT-MRAM cache lines with ECC and hinges on
//! *when* the decoder runs, not on a particular code. This crate provides
//! the codes a cache designer would actually consider, behind one
//! object-safe trait:
//!
//! * [`HammingSec`] — classic single-error-correcting Hamming code for any
//!   data width (e.g. (71,64), (522,512)).
//! * [`HsiaoSecDed`] — odd-weight-column SEC-DED code (the industry-standard
//!   (72,64) construction and its generalizations), correcting one and
//!   detecting two errors.
//! * [`Bch`] — binary BCH codes over GF(2^m) correcting `t ≥ 1` errors
//!   (DEC/TEC and beyond), with Berlekamp–Massey decoding and Chien search.
//! * [`Interleaved`] — splits a wide line into `w` interleaved sub-words
//!   each protected by an inner code, the standard trick for wide cache
//!   lines.
//!
//! Bit order: all APIs use LSB-first bit numbering within each byte, i.e.
//! bit `i` of a buffer is `buf[i / 8] >> (i % 8) & 1`.
//!
//! # Examples
//!
//! ```
//! use reap_ecc::{Codeword, EccCode, HsiaoSecDed};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = HsiaoSecDed::new(64)?;
//! let data = [0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22, 0x33];
//! let mut cw = code.encode(&data);
//! cw.flip_bit(13); // a read-disturbance flip
//! let decoded = code.decode(cw.as_bytes());
//! assert_eq!(decoded.data, data);
//! assert!(decoded.outcome.is_corrected());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bch;
pub mod bits;
pub mod code;
pub mod energy;
pub mod gf;
pub mod hamming;
pub mod hsiao;
pub mod interleave;
pub mod parity;
pub mod telemetry;

pub use bch::Bch;
pub use bits::Codeword;
pub use code::{CodeError, DecodeOutcome, Decoded, EccCode};
pub use energy::DecoderCost;
pub use hamming::HammingSec;
pub use hsiao::HsiaoSecDed;
pub use interleave::Interleaved;
pub use parity::Parity;
