//! The compared cache-protection architectures.

use std::fmt;
use std::str::FromStr;

/// A cache read-path protection architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtectionScheme {
    /// Conventional parallel-access cache (Fig. 2 of the paper): all `k`
    /// ways are read speculatively, one ECC decoder checks only the
    /// requested way — concealed reads accumulate unchecked disturbance.
    Conventional,
    /// REAP-cache (Fig. 4): the MUX and ECC decoders are swapped; `k`
    /// decoder instances check every way on every read, eliminating
    /// accumulation entirely.
    Reap,
    /// Serial (tag-first) access — §IV approach 1: data is read only after
    /// tag comparison, so no concealed reads exist, at the cost of a
    /// serialized (longer) access path.
    SerialTagFirst,
    /// Disruptive reading and restoring (the paper's related work
    /// refs. 14/15 of the paper): the conventional read path plus a restore write after
    /// every read, healing disturbance at a large energy and write-wear
    /// cost.
    DisruptiveRestore,
}

impl ProtectionScheme {
    /// All schemes, baseline first.
    pub const ALL: [ProtectionScheme; 4] = [
        ProtectionScheme::Conventional,
        ProtectionScheme::Reap,
        ProtectionScheme::SerialTagFirst,
        ProtectionScheme::DisruptiveRestore,
    ];

    /// Whether concealed reads occur (parallel data access before tag
    /// resolution).
    pub fn has_concealed_reads(self) -> bool {
        !matches!(self, ProtectionScheme::SerialTagFirst)
    }

    /// Whether every physical read is ECC-checked (no accumulation).
    pub fn checks_every_read(self) -> bool {
        matches!(self, ProtectionScheme::Reap)
    }

    /// Whether every physical read is followed by a restore write.
    pub fn restores_after_read(self) -> bool {
        matches!(self, ProtectionScheme::DisruptiveRestore)
    }

    /// Number of ECC decoder instances required for associativity `k`.
    pub fn decoder_instances(self, associativity: usize) -> usize {
        if self.checks_every_read() {
            associativity
        } else {
            1
        }
    }

    /// Short identifier used in reports and CSV output.
    pub fn id(self) -> &'static str {
        match self {
            ProtectionScheme::Conventional => "conventional",
            ProtectionScheme::Reap => "reap",
            ProtectionScheme::SerialTagFirst => "serial",
            ProtectionScheme::DisruptiveRestore => "restore",
        }
    }
}

impl fmt::Display for ProtectionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionScheme::Conventional => f.write_str("conventional parallel-access"),
            ProtectionScheme::Reap => f.write_str("REAP-cache"),
            ProtectionScheme::SerialTagFirst => f.write_str("serial tag-first"),
            ProtectionScheme::DisruptiveRestore => f.write_str("disruptive-read-and-restore"),
        }
    }
}

/// Error parsing a [`ProtectionScheme`] from its id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError {
    /// The unrecognized id.
    pub id: String,
}

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown protection scheme `{}`", self.id)
    }
}

impl std::error::Error for ParseSchemeError {}

impl FromStr for ProtectionScheme {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ProtectionScheme::ALL
            .into_iter()
            .find(|p| p.id().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseSchemeError { id: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_encode_the_design_space() {
        use ProtectionScheme::*;
        assert!(Conventional.has_concealed_reads());
        assert!(!Conventional.checks_every_read());
        assert!(
            Reap.has_concealed_reads(),
            "REAP keeps the parallel read path"
        );
        assert!(Reap.checks_every_read());
        assert!(!SerialTagFirst.has_concealed_reads());
        assert!(DisruptiveRestore.restores_after_read());
    }

    #[test]
    fn decoder_instances_match_section_v() {
        assert_eq!(ProtectionScheme::Conventional.decoder_instances(8), 1);
        assert_eq!(ProtectionScheme::Reap.decoder_instances(8), 8);
        assert_eq!(ProtectionScheme::SerialTagFirst.decoder_instances(8), 1);
    }

    #[test]
    fn ids_parse_round_trip() {
        for s in ProtectionScheme::ALL {
            assert_eq!(s.id().parse::<ProtectionScheme>().unwrap(), s);
        }
        assert!("bogus".parse::<ProtectionScheme>().is_err());
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(ProtectionScheme::Reap.to_string(), "REAP-cache");
        assert!(ProtectionScheme::DisruptiveRestore
            .to_string()
            .contains("restore"));
    }
}
