//! Parallel execution of experiment batches.
//!
//! Each simulation is single-threaded and deterministic; campaigns (a
//! Fig. 5 sweep is 21 independent runs) parallelize perfectly across
//! experiments. [`run_parallel`] fans a batch out over a bounded pool of
//! OS threads and returns results in input order.

use crate::capture_store::CaptureStore;
use crate::experiment::{Experiment, ExperimentError};
use crate::report::Report;
use crate::simulator::{EccStrength, SimulationError, Simulator};
use reap_reliability::KernelMode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// Runs `f` over `jobs` on up to `parallelism` threads, returning results
/// in input order.
///
/// This is the shared pool behind [`run_parallel`] and
/// [`replay_ecc_sweep_all`]. When telemetry is enabled
/// ([`reap_obs::set_enabled`]), the batch is wrapped in a `pool_name` span
/// whose event count is the job count, and each worker publishes its
/// utilization as `{pool_name}.worker.{w}.busy_s` / `.idle_s` /
/// `.utilization` gauges plus a `.jobs` counter. With telemetry disabled
/// (the default) the pool takes no timestamps at all.
///
/// Determinism is unaffected: each job's result depends only on its own
/// input, never on scheduling.
///
/// # Panics
///
/// Panics if `parallelism == 0` or a worker thread panics.
pub fn pool_map<T, R, F>(jobs: Vec<T>, parallelism: usize, pool_name: &str, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(parallelism > 0, "need at least one worker");
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let mut span = reap_obs::span(pool_name);
    span.add_events(total as u64);
    let telemetry = span.is_recording();
    // Jobs are claimed by index and moved out exactly once; the mutexes
    // are uncontended (each guards a distinct slot).
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let workers = parallelism.min(total);
    let (sender, receiver) = mpsc::channel();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let sender = sender.clone();
            let slots = &slots;
            let next = &next;
            let f = &f;
            let pool = pool_name;
            scope.spawn(move || {
                let started = telemetry.then(Instant::now);
                let job_span_name = telemetry.then(|| format!("{pool}.job"));
                let mut busy = std::time::Duration::ZERO;
                let mut jobs_done = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let job = slots[i].lock().expect("slot poisoned").take();
                    let job = job.expect("each slot is claimed once");
                    let t0 = telemetry.then(Instant::now);
                    // Per-job span: feeds the `span.{pool}.job.us`
                    // latency histogram behind `reap obs report`.
                    let _job_span = job_span_name.as_deref().map(reap_obs::span);
                    let result = f(job);
                    drop(_job_span);
                    if let Some(t0) = t0 {
                        busy += t0.elapsed();
                    }
                    jobs_done += 1;
                    sender
                        .send((i, result))
                        .expect("receiver outlives the scope");
                }
                if let Some(started) = started {
                    let wall = started.elapsed().as_secs_f64();
                    let busy = busy.as_secs_f64();
                    let registry = reap_obs::global();
                    let prefix = format!("{pool}.worker.{w}");
                    // `add`, not `set`: repeated pools with the same name
                    // in one process accumulate seconds across batches,
                    // and utilization is recomputed from the accumulated
                    // totals so it reflects the whole run, not the last
                    // batch. (Same fix the `.jobs` counters got.)
                    let busy_gauge = registry.gauge(&format!("{prefix}.busy_s"));
                    let idle_gauge = registry.gauge(&format!("{prefix}.idle_s"));
                    busy_gauge.add(busy);
                    idle_gauge.add((wall - busy).max(0.0));
                    let total_busy = busy_gauge.get();
                    let total_wall = total_busy + idle_gauge.get();
                    registry
                        .gauge(&format!("{prefix}.utilization"))
                        .set(if total_wall > 0.0 {
                            total_busy / total_wall
                        } else {
                            0.0
                        });
                    registry.counter(&format!("{prefix}.jobs")).add(jobs_done);
                }
            });
        }
    });
    drop(sender);

    let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
    for (i, result) in receiver {
        results[i] = Some(result);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every job ran to completion"))
        .collect()
}

/// Runs `experiments` on up to `parallelism` threads, returning results in
/// the same order as the input.
///
/// Determinism is unaffected: each experiment's result depends only on its
/// own configuration and seed, never on scheduling.
///
/// # Panics
///
/// Panics if `parallelism == 0` or a worker thread panics (a bug in the
/// simulation stack, not a data-dependent condition).
///
/// # Examples
///
/// ```
/// use reap_core::sweep::run_parallel;
/// use reap_core::{Experiment, ProtectionScheme};
/// use reap_trace::SpecWorkload;
///
/// let batch: Vec<Experiment> = [SpecWorkload::Hmmer, SpecWorkload::Mcf]
///     .into_iter()
///     .map(|w| Experiment::paper_hierarchy().workload(w).budgets(1_000, 20_000))
///     .collect();
/// let reports = run_parallel(batch, 2);
/// assert_eq!(reports.len(), 2);
/// for r in reports {
///     assert!(r.expect("valid config").mttf_improvement(ProtectionScheme::Reap) >= 1.0);
/// }
/// ```
pub fn run_parallel(
    experiments: Vec<Experiment>,
    parallelism: usize,
) -> Vec<Result<Report, ExperimentError>> {
    pool_map(experiments, parallelism, "run_parallel", |e| e.run())
}

/// One capture, every ECC strength: runs the trace pass of `experiment`
/// once and scores the captured exposure stream at each strength in
/// [`EccStrength::ALL`] through the batched multi-point kernel
/// ([`Simulator::replay_batch`]), returning reports in that order.
///
/// Bit-identical to running each point from scratch; the trace is driven
/// once and the exposure stream is walked once for all strengths.
///
/// # Errors
///
/// Returns [`ExperimentError`] when the configuration cannot be
/// instantiated.
///
/// # Examples
///
/// ```
/// use reap_core::sweep::replay_ecc_sweep;
/// use reap_core::{Experiment, ProtectionScheme};
/// use reap_trace::SpecWorkload;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let experiment = Experiment::paper_hierarchy()
///     .workload(SpecWorkload::Hmmer)
///     .accesses(20_000);
/// let reports = replay_ecc_sweep(&experiment)?;
/// assert_eq!(reports.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn replay_ecc_sweep(
    experiment: &Experiment,
) -> Result<Vec<(EccStrength, Report)>, ExperimentError> {
    replay_ecc_sweep_with(experiment, None)
}

/// [`replay_ecc_sweep`] with an optional [`CaptureStore`]: a store hit
/// skips the trace pass entirely, and the replay stays bit-identical
/// (the format round-trips captures exactly).
///
/// # Errors
///
/// Returns [`ExperimentError`] when the configuration cannot be
/// instantiated. Store defects are never errors: they fall back to
/// recapture.
pub fn replay_ecc_sweep_with(
    experiment: &Experiment,
    store: Option<&CaptureStore>,
) -> Result<Vec<(EccStrength, Report)>, ExperimentError> {
    replay_ecc_sweep_mode(experiment, store, KernelMode::Exact)
}

/// [`replay_ecc_sweep_with`] with an explicit replay [`KernelMode`].
/// `Exact` (what every other entry point uses) keeps the bit-identity
/// contract; `FastMath` permits the batched kernel's documented
/// small-argument `exp_m1` shortcut, keeping every scheme sum within
/// `5e-9` relative of the exact result.
///
/// # Errors
///
/// Returns [`ExperimentError`] when the configuration cannot be
/// instantiated. Store defects are never errors: they fall back to
/// recapture.
pub fn replay_ecc_sweep_mode(
    experiment: &Experiment,
    store: Option<&CaptureStore>,
    kernel: KernelMode,
) -> Result<Vec<(EccStrength, Report)>, ExperimentError> {
    let capture = experiment.capture_with(store)?;
    let points = EccStrength::ALL
        .into_iter()
        .map(|ecc| {
            let mut config = experiment.config().clone();
            config.ecc = ecc;
            Simulator::new(config)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let reports = match Simulator::replay_batch_mode(&points, &capture, kernel) {
        // A store-backed capture streams from disk; if the entry rots
        // between load-time validation and the replay pass, recapture
        // from the trace instead of failing the sweep.
        Err(SimulationError::CaptureStream(defect)) => {
            eprintln!("warning: streamed capture failed mid-sweep ({defect}); recapturing");
            let fresh = experiment.capture_with(None)?;
            Simulator::replay_batch_mode(&points, &fresh, kernel)?
        }
        other => other?,
    };
    Ok(EccStrength::ALL.into_iter().zip(reports).collect())
}

/// One workload's ECC sweep outcome: a report per strength, or the
/// configuration error that stopped the sweep.
pub type EccSweepResult = Result<Vec<(EccStrength, Report)>, ExperimentError>;

/// The full ECC sweep: all 21 workload profiles, each captured once and
/// replayed at every strength in [`EccStrength::ALL`], fanned out over
/// `parallelism` workers (pool name `ecc_sweep` in the telemetry).
///
/// # Examples
///
/// ```no_run
/// use reap_core::sweep::replay_ecc_sweep_all;
///
/// let reports = replay_ecc_sweep_all(1_000_000, 2019, 8);
/// assert_eq!(reports.len(), 21);
/// for (_, per_workload) in reports {
///     assert_eq!(per_workload.expect("valid config").len(), 3);
/// }
/// ```
pub fn replay_ecc_sweep_all(
    accesses: u64,
    seed: u64,
    parallelism: usize,
) -> Vec<(reap_trace::SpecWorkload, EccSweepResult)> {
    let workloads = reap_trace::SpecWorkload::ALL;
    let batch: Vec<Experiment> = workloads
        .into_iter()
        .map(|w| {
            Experiment::paper_hierarchy()
                .workload(w)
                .accesses(accesses)
                .seed(seed)
        })
        .collect();
    workloads
        .into_iter()
        .zip(pool_map(batch, parallelism, "ecc_sweep", |e| {
            replay_ecc_sweep(&e)
        }))
        .collect()
}

/// Convenience: the Fig. 5/6 sweep over all 21 workload profiles.
///
/// # Examples
///
/// ```no_run
/// use reap_core::sweep::sweep_workloads;
///
/// let reports = sweep_workloads(1_000_000, 2019, 8);
/// assert_eq!(reports.len(), 21);
/// ```
pub fn sweep_workloads(
    accesses: u64,
    seed: u64,
    parallelism: usize,
) -> Vec<(reap_trace::SpecWorkload, Result<Report, ExperimentError>)> {
    let workloads = reap_trace::SpecWorkload::ALL;
    let batch = workloads
        .into_iter()
        .map(|w| {
            Experiment::paper_hierarchy()
                .workload(w)
                .accesses(accesses)
                .seed(seed)
        })
        .collect();
    workloads
        .into_iter()
        .zip(run_parallel(batch, parallelism))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ProtectionScheme;
    use reap_trace::SpecWorkload;

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let make = |w: SpecWorkload| {
            Experiment::paper_hierarchy()
                .workload(w)
                .budgets(1_000, 15_000)
                .seed(4)
        };
        let serial: Vec<f64> = [SpecWorkload::Gcc, SpecWorkload::Lbm, SpecWorkload::Namd]
            .into_iter()
            .map(|w| {
                make(w)
                    .run()
                    .unwrap()
                    .expected_failures(ProtectionScheme::Conventional)
            })
            .collect();
        let parallel = run_parallel(
            [SpecWorkload::Gcc, SpecWorkload::Lbm, SpecWorkload::Namd]
                .into_iter()
                .map(make)
                .collect(),
            3,
        );
        for (s, p) in serial.iter().zip(parallel) {
            let p = p.unwrap().expected_failures(ProtectionScheme::Conventional);
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "scheduling must not affect results"
            );
        }
    }

    #[test]
    fn results_keep_input_order() {
        let batch: Vec<Experiment> = [SpecWorkload::Mcf, SpecWorkload::Namd]
            .into_iter()
            .map(|w| {
                Experiment::paper_hierarchy()
                    .workload(w)
                    .budgets(1_000, 20_000)
                    .seed(1)
            })
            .collect();
        let out = run_parallel(batch, 2);
        let gain = |r: &Result<Report, ExperimentError>| {
            r.as_ref().unwrap().mttf_improvement(ProtectionScheme::Reap)
        };
        // namd (second) accumulates far more than mcf (first).
        assert!(gain(&out[1]) > gain(&out[0]));
    }

    #[test]
    fn errors_are_propagated_per_job() {
        let ok = Experiment::paper_hierarchy().budgets(100, 5_000);
        let bad = Experiment::paper_hierarchy().budgets(0, 0);
        let out = run_parallel(vec![ok, bad], 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn ecc_sweep_matches_direct_runs_bit_for_bit() {
        let experiment = Experiment::paper_hierarchy()
            .workload(SpecWorkload::Namd)
            .budgets(1_000, 15_000)
            .seed(7);
        let swept = replay_ecc_sweep(&experiment).unwrap();
        assert_eq!(swept.len(), EccStrength::ALL.len());
        for (ecc, report) in swept {
            let direct = experiment.clone().ecc(ecc).run().unwrap();
            for scheme in ProtectionScheme::ALL {
                assert_eq!(
                    report.expected_failures(scheme).to_bits(),
                    direct.expected_failures(scheme).to_bits(),
                    "replayed {ecc} must match a from-scratch run"
                );
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_parallel(Vec::new(), 4).is_empty());
    }

    #[test]
    fn pool_map_moves_non_clone_jobs_and_keeps_order() {
        struct Job(usize); // deliberately not Clone
        let jobs: Vec<Job> = (0..32).map(Job).collect();
        let out = pool_map(jobs, 4, "test_pool", |j| j.0 * 2);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_parallelism_rejected() {
        let _ = run_parallel(Vec::new(), 0);
    }
}
