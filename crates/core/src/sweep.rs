//! Parallel execution of experiment batches.
//!
//! Each simulation is single-threaded and deterministic; campaigns (a
//! Fig. 5 sweep is 21 independent runs) parallelize perfectly across
//! experiments. [`run_parallel`] fans a batch out over a bounded pool of
//! OS threads and returns results in input order.

use crate::experiment::{Experiment, ExperimentError};
use crate::report::Report;
use crate::simulator::EccStrength;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `experiments` on up to `parallelism` threads, returning results in
/// the same order as the input.
///
/// Determinism is unaffected: each experiment's result depends only on its
/// own configuration and seed, never on scheduling.
///
/// # Panics
///
/// Panics if `parallelism == 0` or a worker thread panics (a bug in the
/// simulation stack, not a data-dependent condition).
///
/// # Examples
///
/// ```
/// use reap_core::sweep::run_parallel;
/// use reap_core::{Experiment, ProtectionScheme};
/// use reap_trace::SpecWorkload;
///
/// let batch: Vec<Experiment> = [SpecWorkload::Hmmer, SpecWorkload::Mcf]
///     .into_iter()
///     .map(|w| Experiment::paper_hierarchy().workload(w).budgets(1_000, 20_000))
///     .collect();
/// let reports = run_parallel(batch, 2);
/// assert_eq!(reports.len(), 2);
/// for r in reports {
///     assert!(r.expect("valid config").mttf_improvement(ProtectionScheme::Reap) >= 1.0);
/// }
/// ```
pub fn run_parallel(
    experiments: Vec<Experiment>,
    parallelism: usize,
) -> Vec<Result<Report, ExperimentError>> {
    assert!(parallelism > 0, "need at least one worker");
    let total = experiments.len();
    if total == 0 {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let workers = parallelism.min(total);
    let (sender, receiver) = mpsc::channel();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let experiments = &experiments;
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let result = experiments[i].clone().run();
                sender
                    .send((i, result))
                    .expect("receiver outlives the scope");
            });
        }
    });
    drop(sender);

    let mut results: Vec<Option<Result<Report, ExperimentError>>> =
        (0..total).map(|_| None).collect();
    for (i, result) in receiver {
        results[i] = Some(result);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every job ran to completion"))
        .collect()
}

/// One capture, every ECC strength: runs the trace pass of `experiment`
/// once and replays the captured exposure stream at each strength in
/// [`EccStrength::ALL`], returning reports in that order.
///
/// Bit-identical to running each point from scratch, at roughly
/// one-third of the trace-driving cost for the three strengths (and the
/// savings grow linearly with the number of points).
///
/// # Errors
///
/// Returns [`ExperimentError`] when the configuration cannot be
/// instantiated.
///
/// # Examples
///
/// ```
/// use reap_core::sweep::replay_ecc_sweep;
/// use reap_core::{Experiment, ProtectionScheme};
/// use reap_trace::SpecWorkload;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let experiment = Experiment::paper_hierarchy()
///     .workload(SpecWorkload::Hmmer)
///     .accesses(20_000);
/// let reports = replay_ecc_sweep(&experiment)?;
/// assert_eq!(reports.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn replay_ecc_sweep(
    experiment: &Experiment,
) -> Result<Vec<(EccStrength, Report)>, ExperimentError> {
    let capture = experiment.capture()?;
    EccStrength::ALL
        .into_iter()
        .map(|ecc| {
            let report = experiment.clone().ecc(ecc).replay(&capture)?;
            Ok((ecc, report))
        })
        .collect()
}

/// Convenience: the Fig. 5/6 sweep over all 21 workload profiles.
///
/// # Examples
///
/// ```no_run
/// use reap_core::sweep::sweep_workloads;
///
/// let reports = sweep_workloads(1_000_000, 2019, 8);
/// assert_eq!(reports.len(), 21);
/// ```
pub fn sweep_workloads(
    accesses: u64,
    seed: u64,
    parallelism: usize,
) -> Vec<(reap_trace::SpecWorkload, Result<Report, ExperimentError>)> {
    let workloads = reap_trace::SpecWorkload::ALL;
    let batch = workloads
        .into_iter()
        .map(|w| {
            Experiment::paper_hierarchy()
                .workload(w)
                .accesses(accesses)
                .seed(seed)
        })
        .collect();
    workloads
        .into_iter()
        .zip(run_parallel(batch, parallelism))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ProtectionScheme;
    use reap_trace::SpecWorkload;

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let make = |w: SpecWorkload| {
            Experiment::paper_hierarchy()
                .workload(w)
                .budgets(1_000, 15_000)
                .seed(4)
        };
        let serial: Vec<f64> = [SpecWorkload::Gcc, SpecWorkload::Lbm, SpecWorkload::Namd]
            .into_iter()
            .map(|w| {
                make(w)
                    .run()
                    .unwrap()
                    .expected_failures(ProtectionScheme::Conventional)
            })
            .collect();
        let parallel = run_parallel(
            [SpecWorkload::Gcc, SpecWorkload::Lbm, SpecWorkload::Namd]
                .into_iter()
                .map(make)
                .collect(),
            3,
        );
        for (s, p) in serial.iter().zip(parallel) {
            let p = p.unwrap().expected_failures(ProtectionScheme::Conventional);
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "scheduling must not affect results"
            );
        }
    }

    #[test]
    fn results_keep_input_order() {
        let batch: Vec<Experiment> = [SpecWorkload::Mcf, SpecWorkload::Namd]
            .into_iter()
            .map(|w| {
                Experiment::paper_hierarchy()
                    .workload(w)
                    .budgets(1_000, 20_000)
                    .seed(1)
            })
            .collect();
        let out = run_parallel(batch, 2);
        let gain = |r: &Result<Report, ExperimentError>| {
            r.as_ref().unwrap().mttf_improvement(ProtectionScheme::Reap)
        };
        // namd (second) accumulates far more than mcf (first).
        assert!(gain(&out[1]) > gain(&out[0]));
    }

    #[test]
    fn errors_are_propagated_per_job() {
        let ok = Experiment::paper_hierarchy().budgets(100, 5_000);
        let bad = Experiment::paper_hierarchy().budgets(0, 0);
        let out = run_parallel(vec![ok, bad], 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn ecc_sweep_matches_direct_runs_bit_for_bit() {
        let experiment = Experiment::paper_hierarchy()
            .workload(SpecWorkload::Namd)
            .budgets(1_000, 15_000)
            .seed(7);
        let swept = replay_ecc_sweep(&experiment).unwrap();
        assert_eq!(swept.len(), EccStrength::ALL.len());
        for (ecc, report) in swept {
            let direct = experiment.clone().ecc(ecc).run().unwrap();
            for scheme in ProtectionScheme::ALL {
                assert_eq!(
                    report.expected_failures(scheme).to_bits(),
                    direct.expected_failures(scheme).to_bits(),
                    "replayed {ecc} must match a from-scratch run"
                );
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_parallel(Vec::new(), 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_parallelism_rejected() {
        let _ = run_parallel(Vec::new(), 0);
    }
}
