//! Parallel execution of experiment batches.
//!
//! Each simulation is single-threaded and deterministic; campaigns (a
//! Fig. 5 sweep is 21 independent runs) parallelize perfectly across
//! experiments. [`run_parallel`] fans a batch out over a bounded pool of
//! OS threads and returns results in input order.

use crate::experiment::{Experiment, ExperimentError};
use crate::report::Report;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `experiments` on up to `parallelism` threads, returning results in
/// the same order as the input.
///
/// Determinism is unaffected: each experiment's result depends only on its
/// own configuration and seed, never on scheduling.
///
/// # Panics
///
/// Panics if `parallelism == 0` or a worker thread panics (a bug in the
/// simulation stack, not a data-dependent condition).
///
/// # Examples
///
/// ```
/// use reap_core::sweep::run_parallel;
/// use reap_core::{Experiment, ProtectionScheme};
/// use reap_trace::SpecWorkload;
///
/// let batch: Vec<Experiment> = [SpecWorkload::Hmmer, SpecWorkload::Mcf]
///     .into_iter()
///     .map(|w| Experiment::paper_hierarchy().workload(w).budgets(1_000, 20_000))
///     .collect();
/// let reports = run_parallel(batch, 2);
/// assert_eq!(reports.len(), 2);
/// for r in reports {
///     assert!(r.expect("valid config").mttf_improvement(ProtectionScheme::Reap) >= 1.0);
/// }
/// ```
pub fn run_parallel(
    experiments: Vec<Experiment>,
    parallelism: usize,
) -> Vec<Result<Report, ExperimentError>> {
    assert!(parallelism > 0, "need at least one worker");
    let total = experiments.len();
    if total == 0 {
        return Vec::new();
    }
    let jobs: Vec<Mutex<Option<Experiment>>> =
        experiments.into_iter().map(|e| Mutex::new(Some(e))).collect();
    let results: Vec<Mutex<Option<Result<Report, ExperimentError>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = parallelism.min(total);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let experiment = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let result = experiment.run();
                *results[i].lock().expect("result mutex poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex poisoned")
                .expect("every job ran to completion")
        })
        .collect()
}

/// Convenience: the Fig. 5/6 sweep over all 21 workload profiles.
///
/// # Examples
///
/// ```no_run
/// use reap_core::sweep::sweep_workloads;
///
/// let reports = sweep_workloads(1_000_000, 2019, 8);
/// assert_eq!(reports.len(), 21);
/// ```
pub fn sweep_workloads(
    accesses: u64,
    seed: u64,
    parallelism: usize,
) -> Vec<(reap_trace::SpecWorkload, Result<Report, ExperimentError>)> {
    let workloads = reap_trace::SpecWorkload::ALL;
    let batch = workloads
        .into_iter()
        .map(|w| Experiment::paper_hierarchy().workload(w).accesses(accesses).seed(seed))
        .collect();
    workloads.into_iter().zip(run_parallel(batch, parallelism)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ProtectionScheme;
    use reap_trace::SpecWorkload;

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let make = |w: SpecWorkload| {
            Experiment::paper_hierarchy().workload(w).budgets(1_000, 15_000).seed(4)
        };
        let serial: Vec<f64> = [SpecWorkload::Gcc, SpecWorkload::Lbm, SpecWorkload::Namd]
            .into_iter()
            .map(|w| {
                make(w).run().unwrap().expected_failures(ProtectionScheme::Conventional)
            })
            .collect();
        let parallel = run_parallel(
            [SpecWorkload::Gcc, SpecWorkload::Lbm, SpecWorkload::Namd]
                .into_iter()
                .map(make)
                .collect(),
            3,
        );
        for (s, p) in serial.iter().zip(parallel) {
            let p = p.unwrap().expected_failures(ProtectionScheme::Conventional);
            assert_eq!(s.to_bits(), p.to_bits(), "scheduling must not affect results");
        }
    }

    #[test]
    fn results_keep_input_order() {
        let batch: Vec<Experiment> = [SpecWorkload::Mcf, SpecWorkload::Namd]
            .into_iter()
            .map(|w| Experiment::paper_hierarchy().workload(w).budgets(1_000, 20_000).seed(1))
            .collect();
        let out = run_parallel(batch, 2);
        let gain = |r: &Result<Report, ExperimentError>| {
            r.as_ref().unwrap().mttf_improvement(ProtectionScheme::Reap)
        };
        // namd (second) accumulates far more than mcf (first).
        assert!(gain(&out[1]) > gain(&out[0]));
    }

    #[test]
    fn errors_are_propagated_per_job() {
        let ok = Experiment::paper_hierarchy().budgets(100, 5_000);
        let bad = Experiment::paper_hierarchy().budgets(0, 0);
        let out = run_parallel(vec![ok, bad], 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_parallel(Vec::new(), 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_parallelism_rejected() {
        let _ = run_parallel(Vec::new(), 0);
    }
}
