//! Fault-tolerant sweep campaigns: supervision + checkpoint/resume.
//!
//! [`run_sweep_campaign`] is the resilient successor of
//! [`crate::sweep::sweep_workloads`] / [`crate::sweep::replay_ecc_sweep_all`]:
//! the same 21-workload batches, but each job runs under the supervised
//! pool ([`crate::supervise`]) so a panic or hang in one configuration is
//! retried, then reported — never fatal to the batch — and completed jobs
//! stream into a [`crate::checkpoint`] file so a killed campaign resumes
//! where it stopped. A resumed campaign's rows are **bit-identical** to
//! an uninterrupted run's: each job depends only on its own
//! configuration and seed, and checkpointed floats round-trip exactly.
//!
//! The [`reap_fault::FaultPlan`] armed through
//! [`SupervisorConfig::fault_plan`] drives all of this machinery in
//! tests and the CI smoke job: injected panics exercise retry and
//! isolation, injected delays exercise deadlines, and
//! `interrupt_after` simulates a mid-run `SIGKILL` at a deterministic
//! point (the checkpoint stays valid because every result line is
//! flushed before the next job is counted).

use crate::capture_store::CaptureStore;
use crate::checkpoint::{self, CheckpointMeta, CheckpointWriter, SweepRow};
use crate::experiment::{Experiment, ExperimentError};
use crate::supervise::{pool_map_supervised, JobError, SupervisorConfig};
use reap_reliability::KernelMode;
use reap_trace::SpecWorkload;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::ops::ControlFlow;
use std::path::PathBuf;

pub use crate::checkpoint::CheckpointError;

/// Which sweep the campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// One run per workload at the configured ECC (Fig. 5/6 table).
    Standard,
    /// One capture per workload, replayed at every [`EccStrength`].
    EccSweep,
}

impl SweepMode {
    /// The tag stored in checkpoint meta records.
    pub fn tag(self) -> &'static str {
        match self {
            SweepMode::Standard => "standard",
            SweepMode::EccSweep => "ecc-sweep",
        }
    }
}

/// Full configuration of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Measured accesses per workload.
    pub accesses: u64,
    /// Trace seed.
    pub seed: u64,
    /// Sweep shape.
    pub mode: SweepMode,
    /// Pool width.
    pub parallelism: usize,
    /// Supervision policy (retries, backoff, deadline, fault plan).
    pub supervisor: SupervisorConfig,
    /// Checkpoint file; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Skip jobs already present in the checkpoint instead of truncating
    /// it.
    pub resume: bool,
    /// Persistent exposure-capture cache; `None` recaptures every run.
    pub capture_store: Option<CaptureStore>,
    /// Run ECC-sweep replays with the batched kernel's fast-math mode
    /// (documented `5e-9`-relative `exp_m1` shortcut) instead of the
    /// bit-exact default. Folded into the checkpoint fingerprint so an
    /// exact checkpoint never resumes into a fast-math run or vice
    /// versa.
    pub fast_math: bool,
}

impl CampaignConfig {
    /// A plain campaign with no checkpoint and default supervision.
    pub fn new(accesses: u64, seed: u64, mode: SweepMode, parallelism: usize) -> Self {
        Self {
            accesses,
            seed,
            mode,
            parallelism,
            supervisor: SupervisorConfig::default(),
            checkpoint: None,
            resume: false,
            capture_store: None,
            fast_math: false,
        }
    }
}

/// Why one workload produced no rows.
#[derive(Debug)]
pub enum JobFailure {
    /// The supervised pool gave up (panics, timeouts, cancellation).
    Supervision(JobError),
    /// The experiment itself rejected its configuration.
    Experiment(ExperimentError),
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailure::Supervision(e) => write!(f, "{e}"),
            JobFailure::Experiment(e) => write!(f, "{e}"),
        }
    }
}

impl Error for JobFailure {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JobFailure::Supervision(e) => Some(e),
            JobFailure::Experiment(e) => Some(e),
        }
    }
}

/// One workload's final state in the campaign report.
#[derive(Debug)]
pub struct WorkloadOutcome {
    /// The workload.
    pub workload: SpecWorkload,
    /// Its rows, or why they are missing.
    pub result: Result<Vec<SweepRow>, JobFailure>,
    /// Attempts spent this run (0 when served from the checkpoint).
    pub attempts: u32,
    /// Whether the rows were loaded from the checkpoint.
    pub from_checkpoint: bool,
}

/// The campaign's aggregate result.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// One outcome per workload, in canonical workload order.
    pub outcomes: Vec<WorkloadOutcome>,
    /// Jobs skipped because the checkpoint already had them.
    pub resumed: usize,
    /// Jobs that needed more than one attempt but succeeded.
    pub recovered: usize,
    /// Jobs that failed permanently (isolated, reported, not fatal).
    pub failed: usize,
    /// Human-readable checkpoint repair note (truncated tail dropped).
    pub checkpoint_warning: Option<String>,
}

/// Campaign-level failure: nothing useful was produced.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// The checkpoint could not be created, read or trusted.
    Checkpoint(CheckpointError),
    /// The armed fault plan's `interrupt_after` fired — the simulated
    /// `SIGKILL`. Completed jobs are safe in the checkpoint.
    Interrupted {
        /// Jobs completed during this run before the interrupt.
        completed: usize,
        /// Jobs the run still had pending (including in-flight).
        remaining: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
            CampaignError::Interrupted {
                completed,
                remaining,
            } => write!(
                f,
                "campaign interrupted after {completed} jobs ({remaining} pending); \
                 resume with --resume"
            ),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Checkpoint(e) => Some(e),
            CampaignError::Interrupted { .. } => None,
        }
    }
}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

/// Computes one workload's rows — the campaign's job body.
fn run_job(
    workload: SpecWorkload,
    accesses: u64,
    seed: u64,
    mode: SweepMode,
    store: Option<&CaptureStore>,
    kernel: KernelMode,
) -> Result<Vec<SweepRow>, ExperimentError> {
    let experiment = Experiment::paper_hierarchy()
        .workload(workload)
        .accesses(accesses)
        .seed(seed);
    match mode {
        SweepMode::Standard => {
            let report = experiment.run_with(store)?;
            Ok(vec![SweepRow::from_report(None, &report)])
        }
        SweepMode::EccSweep => {
            // One capture (possibly served from the store), then the
            // batched multi-point kernel scores all strengths in a single
            // pass over the exposure stream.
            Ok(
                crate::sweep::replay_ecc_sweep_mode(&experiment, store, kernel)?
                    .into_iter()
                    .map(|(ecc, report)| SweepRow::from_report(Some(ecc), &report))
                    .collect(),
            )
        }
    }
}

/// Runs the full 21-workload campaign under supervision, streaming
/// completed jobs into the checkpoint (when configured) and skipping
/// jobs the checkpoint already holds (when resuming).
///
/// Individual job failures are *not* errors: they come back as
/// [`WorkloadOutcome`]s with `result: Err(..)` so the caller reports them
/// alongside the surviving rows. The `Err` cases are campaign-fatal
/// only: an unusable checkpoint, or the armed fault plan's simulated
/// kill.
///
/// # Errors
///
/// Returns [`CampaignError::Checkpoint`] when the checkpoint file cannot
/// be created, parsed, or belongs to a different configuration, and
/// [`CampaignError::Interrupted`] when fault injection stops the run.
pub fn run_sweep_campaign(config: &CampaignConfig) -> Result<CampaignOutcome, CampaignError> {
    // Campaign-level phase span: the pool span nests under it, so run
    // reports show checkpoint/supervision overhead as campaign minus
    // pool time.
    let _campaign_span = reap_obs::span("campaign");
    let workloads = SpecWorkload::ALL;
    let keys: Vec<String> = workloads.iter().map(|w| w.name().to_owned()).collect();
    let mode_tag = if config.fast_math {
        format!("{}+fast-math", config.mode.tag())
    } else {
        config.mode.tag().to_owned()
    };
    let meta = CheckpointMeta::new(&mode_tag, config.accesses, config.seed, &keys);

    // Load and repair the checkpoint when resuming.
    let mut completed: HashMap<String, Vec<SweepRow>> = HashMap::new();
    let mut checkpoint_warning = None;
    let mut writer = None;
    if let Some(path) = &config.checkpoint {
        if config.resume && path.exists() {
            let loaded = checkpoint::load(path)?;
            if loaded.meta.fingerprint != meta.fingerprint {
                return Err(CheckpointError::FingerprintMismatch {
                    expected: meta.fingerprint,
                    found: loaded.meta.fingerprint,
                }
                .into());
            }
            if let Some(offset) = loaded.truncated_tail {
                // Drop the half-written line so appended records start on
                // a fresh line.
                reap_fault::truncate_file(path, offset as u64).map_err(|source| {
                    CheckpointError::Io {
                        path: path.clone(),
                        source,
                    }
                })?;
                checkpoint_warning = Some(format!(
                    "checkpoint {} had a truncated trailing line at byte {offset} \
                     (crash-interrupted write); dropped it",
                    path.display()
                ));
            }
            completed = loaded.completed.into_iter().collect();
            writer = Some(CheckpointWriter::append_to(path)?);
        } else {
            writer = Some(CheckpointWriter::create(path, &meta)?);
        }
    }

    let pending: Vec<SpecWorkload> = workloads
        .into_iter()
        .filter(|w| !completed.contains_key(w.name()))
        .collect();
    let resumed = completed.len();
    let total_pending = pending.len();

    // Fan the pending jobs out under supervision. Results stream back on
    // this thread: checkpoint them and honour the simulated kill.
    let interrupt_after = config.supervisor.fault_plan.and_then(|p| p.interrupt_after);
    let (accesses, seed, mode) = (config.accesses, config.seed, config.mode);
    let kernel = if config.fast_math {
        KernelMode::FastMath
    } else {
        KernelMode::Exact
    };
    // Each workload addresses its own store entry (the fingerprint covers
    // the workload), so concurrent workers never contend on one file.
    let store = config.capture_store.clone();
    let pending_for_pool = pending.clone();
    let mut done_this_run = 0usize;
    let mut interrupted = false;
    // Pool names match the unsupervised sweep paths so existing telemetry
    // expectations (worker gauges, phase spans) carry over.
    let pool_name = match config.mode {
        SweepMode::Standard => "run_parallel",
        SweepMode::EccSweep => "ecc_sweep",
    };
    let outcomes = pool_map_supervised(
        pending_for_pool,
        config.parallelism.max(1),
        pool_name,
        &config.supervisor,
        move |w| run_job(w, accesses, seed, mode, store.as_ref(), kernel),
        |i, outcome| {
            if let Ok(Ok(rows)) = &outcome.result {
                if let Some(writer) = writer.as_mut() {
                    // A checkpoint write failure must not kill the
                    // campaign mid-flight; the rows are still in memory
                    // and will be reported. Surface it on stderr.
                    if let Err(e) = writer.record(pending[i].name(), rows) {
                        eprintln!("warning: {e}");
                    }
                }
                done_this_run += 1;
                if interrupt_after.is_some_and(|n| done_this_run as u64 >= n) {
                    interrupted = true;
                    return ControlFlow::Break(());
                }
            }
            ControlFlow::Continue(())
        },
    );

    let completed_now = outcomes
        .iter()
        .filter(|o| matches!(&o.result, Ok(Ok(_))))
        .count();
    if interrupt_after.is_some_and(|n| completed_now as u64 >= n) {
        return Err(CampaignError::Interrupted {
            completed: completed_now,
            remaining: total_pending - completed_now,
        });
    }

    // Stitch checkpointed and freshly computed results back into
    // canonical workload order.
    let mut fresh = outcomes.into_iter();
    let mut report = CampaignOutcome {
        outcomes: Vec::with_capacity(workloads.len()),
        resumed,
        recovered: 0,
        failed: 0,
        checkpoint_warning,
    };
    for w in workloads {
        let outcome = if let Some(rows) = completed.remove(w.name()) {
            WorkloadOutcome {
                workload: w,
                result: Ok(rows),
                attempts: 0,
                from_checkpoint: true,
            }
        } else {
            let o = fresh.next().expect("one pool outcome per pending job");
            let result = match o.result {
                Ok(Ok(rows)) => Ok(rows),
                Ok(Err(e)) => Err(JobFailure::Experiment(e)),
                Err(e) => Err(JobFailure::Supervision(e)),
            };
            WorkloadOutcome {
                workload: w,
                result,
                attempts: o.attempts,
                from_checkpoint: false,
            }
        };
        if outcome.result.is_ok() && outcome.attempts > 1 {
            report.recovered += 1;
        }
        if outcome.result.is_err() {
            report.failed += 1;
        }
        report.outcomes.push(outcome);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_fault::FaultPlan;
    use std::path::Path;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reap-campaign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn quick(mode: SweepMode) -> CampaignConfig {
        CampaignConfig::new(3_000, 11, mode, 4)
    }

    fn rows_bits(outcome: &CampaignOutcome) -> Vec<(SpecWorkload, Vec<u64>)> {
        outcome
            .outcomes
            .iter()
            .map(|o| {
                (
                    o.workload,
                    o.result
                        .as_ref()
                        .expect("job succeeded")
                        .iter()
                        .flat_map(|r| {
                            [
                                r.mttf_gain.to_bits(),
                                r.energy_overhead.to_bits(),
                                r.l2_hit_rate.to_bits(),
                                r.efail_conv.to_bits(),
                                r.max_n,
                            ]
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn clean_campaign_covers_every_workload() {
        let outcome = run_sweep_campaign(&quick(SweepMode::Standard)).unwrap();
        assert_eq!(outcome.outcomes.len(), SpecWorkload::ALL.len());
        assert_eq!(outcome.failed, 0);
        assert_eq!(outcome.resumed, 0);
        for o in &outcome.outcomes {
            assert_eq!(o.result.as_ref().unwrap().len(), 1);
        }
    }

    #[test]
    fn interrupt_then_resume_is_bit_identical_to_clean_run() {
        let path = tmp("resume.jsonl");
        let clean = run_sweep_campaign(&quick(SweepMode::EccSweep)).unwrap();

        // Phase 1: simulated kill after 4 completed jobs.
        let mut cfg = quick(SweepMode::EccSweep);
        cfg.checkpoint = Some(path.clone());
        cfg.supervisor.fault_plan = Some(FaultPlan {
            interrupt_after: Some(4),
            ..FaultPlan::default()
        });
        let err = run_sweep_campaign(&cfg).unwrap_err();
        let CampaignError::Interrupted { completed, .. } = err else {
            panic!("expected interrupt: {err}");
        };
        assert!(completed >= 4);

        // Phase 2: resume without injection.
        let mut cfg = quick(SweepMode::EccSweep);
        cfg.checkpoint = Some(path.clone());
        cfg.resume = true;
        let resumed = run_sweep_campaign(&cfg).unwrap();
        assert!(resumed.resumed >= 4, "resumed {} jobs", resumed.resumed);
        assert_eq!(resumed.failed, 0);
        assert_eq!(rows_bits(&clean), rows_bits(&resumed));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn resume_with_foreign_checkpoint_is_refused() {
        let path = tmp("foreign.jsonl");
        let mut cfg = quick(SweepMode::Standard);
        cfg.checkpoint = Some(path.clone());
        run_sweep_campaign(&cfg).unwrap();

        // Same file, different seed: must be rejected, not mixed in.
        let mut cfg = quick(SweepMode::Standard);
        cfg.seed = 999;
        cfg.checkpoint = Some(path.clone());
        cfg.resume = true;
        let err = run_sweep_campaign(&cfg).unwrap_err();
        assert!(
            matches!(
                err,
                CampaignError::Checkpoint(CheckpointError::FingerprintMismatch { .. })
            ),
            "{err}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn resume_repairs_a_crash_truncated_checkpoint() {
        let path = tmp("repair.jsonl");
        let mut cfg = quick(SweepMode::Standard);
        cfg.checkpoint = Some(path.clone());
        run_sweep_campaign(&cfg).unwrap();
        // Cut the last line in half: the classic kill-mid-write state.
        let len = std::fs::metadata(&path).unwrap().len();
        reap_fault::truncate_file(Path::new(&path), len - 7).unwrap();

        let mut cfg = quick(SweepMode::Standard);
        cfg.checkpoint = Some(path.clone());
        cfg.resume = true;
        let outcome = run_sweep_campaign(&cfg).unwrap();
        assert!(outcome.checkpoint_warning.is_some());
        assert_eq!(outcome.failed, 0);
        // The repaired file must now be fully loadable and complete.
        let reloaded = checkpoint::load(Path::new(&path)).unwrap();
        assert_eq!(reloaded.completed.len(), SpecWorkload::ALL.len());
        assert!(reloaded.truncated_tail.is_none());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_panics_recover_and_match_clean_rows() {
        let clean = run_sweep_campaign(&quick(SweepMode::Standard)).unwrap();
        let mut cfg = quick(SweepMode::Standard);
        cfg.supervisor.max_retries = 8;
        cfg.supervisor.fault_plan = Some(FaultPlan {
            seed: 13,
            panic_rate: 0.3,
            ..FaultPlan::default()
        });
        let faulty = run_sweep_campaign(&cfg).unwrap();
        assert_eq!(faulty.failed, 0, "retries absorb a 30% panic rate");
        assert!(faulty.recovered > 0, "some job must have retried");
        assert_eq!(rows_bits(&clean), rows_bits(&faulty));
    }

    #[test]
    fn exhausted_retries_isolate_the_failure() {
        let mut cfg = quick(SweepMode::Standard);
        cfg.supervisor.max_retries = 0;
        cfg.supervisor.fault_plan = Some(FaultPlan {
            seed: 1,
            panic_rate: 0.2,
            ..FaultPlan::default()
        });
        let outcome = run_sweep_campaign(&cfg).unwrap();
        assert!(outcome.failed > 0, "some job must fail at 20% / no retries");
        let ok = outcome.outcomes.iter().filter(|o| o.result.is_ok()).count();
        assert!(ok > 0, "and most must survive");
        for o in &outcome.outcomes {
            if let Err(e) = &o.result {
                assert!(
                    e.to_string().contains("injected panic"),
                    "failure is attributed: {e}"
                );
            }
        }
    }
}
