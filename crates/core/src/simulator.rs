//! End-to-end simulation: trace → hierarchy → reliability + energy.

use crate::capture::{CaptureObserver, ExposureCapture, ExposureStream, HierarchySnapshot};
use crate::energy::EnergyModel;
use crate::observer::ReliabilityObserver;
use crate::readpath::ReadPathModel;
use crate::report::Report;
use reap_cache::{sample_ones, sample_ones_multi_batch, Hierarchy, HierarchyConfig, Replacement};
use reap_ecc::{Bch, CodeError, DecoderCost, EccCode, HammingSec};
use reap_mtj::{read_disturbance_probability, MtjParams};
use reap_nvarray::{estimate, ArraySpec, MemTech, SpecError, TechnologyNode};
use reap_reliability::{
    AccumulationModel, ExposureKind, KernelMode, MultiReplayAggregator, ReplayAggregator,
    ScalarMultiReplayAggregator,
};
use reap_trace::MemoryAccess;
use std::fmt;

/// Line-level ECC strength protecting the STT-MRAM L2.
///
/// The paper's analysis treats the whole line as one `t`-error-correcting
/// block (§III-B); the concrete codes here provide exactly that at
/// realistic check-bit costs for a 512-bit line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccStrength {
    /// Single-error correction (Hamming, 10 check bits) — the paper's
    /// baseline assumption.
    Sec,
    /// Double-error correction (BCH t=2, 20 check bits).
    Dec,
    /// Triple-error correction (BCH t=3, 30 check bits).
    Tec,
}

impl EccStrength {
    /// All strengths, weakest first.
    pub const ALL: [EccStrength; 3] = [EccStrength::Sec, EccStrength::Dec, EccStrength::Tec];

    /// The correction capability `t`.
    pub fn t(self) -> usize {
        match self {
            EccStrength::Sec => 1,
            EccStrength::Dec => 2,
            EccStrength::Tec => 3,
        }
    }

    /// Builds the concrete code for `data_bits` payload bits.
    ///
    /// # Errors
    ///
    /// Propagates [`CodeError`] when the geometry cannot be constructed.
    pub fn build_code(self, data_bits: usize) -> Result<Box<dyn EccCode>, CodeError> {
        Ok(match self {
            EccStrength::Sec => Box::new(HammingSec::new(data_bits)?),
            EccStrength::Dec => Box::new(Bch::new(data_bits, 2)?),
            EccStrength::Tec => Box::new(Bch::new(data_bits, 3)?),
        })
    }
}

impl fmt::Display for EccStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccStrength::Sec => f.write_str("SEC"),
            EccStrength::Dec => f.write_str("DEC"),
            EccStrength::Tec => f.write_str("TEC"),
        }
    }
}

/// Full configuration of one simulation.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Cache geometries (Table I by default).
    pub hierarchy: HierarchyConfig,
    /// Replacement policy for all levels.
    pub replacement: Replacement,
    /// STT-MRAM cell parameters (determine `P_rd` via Eq. (1)).
    pub mtj: MtjParams,
    /// L2 line ECC strength.
    pub ecc: EccStrength,
    /// Process node in nanometres.
    pub tech_nm: u32,
    /// Accesses issued per second by the core (for MTTF time base).
    pub access_rate_hz: f64,
    /// Accesses simulated before measurement starts (cache warm-up).
    pub warmup_accesses: u64,
    /// Accesses measured.
    pub measure_accesses: u64,
    /// L2 scrub period in measured accesses: every `scrub_period`
    /// accesses the whole L2 is scrubbed (checked and exposure-reset).
    /// `0` disables scrubbing — the paper's baseline. Behavioural: a
    /// scrub changes which exposure events occur, so captures are pinned
    /// to it.
    pub scrub_period: u64,
}

impl Default for SimulationConfig {
    /// The paper's setup: Table I hierarchy, LRU, default MTJ card
    /// (`P_rd ≈ 1.5e-8`), SEC, 22 nm, 1 G accesses/s, no scrubbing.
    fn default() -> Self {
        Self {
            hierarchy: HierarchyConfig::paper(),
            replacement: Replacement::Lru,
            mtj: MtjParams::default(),
            ecc: EccStrength::Sec,
            tech_nm: 22,
            access_rate_hz: 1e9,
            warmup_accesses: 100_000,
            measure_accesses: 1_000_000,
            scrub_period: 0,
        }
    }
}

/// Error constructing or running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimulationError {
    /// The ECC code could not be constructed for the line width.
    Code(CodeError),
    /// The array model rejected the geometry or node.
    Array(SpecError),
    /// A parameter was out of range.
    BadParameter(&'static str),
    /// A replay was attempted against a capture whose behavioural
    /// configuration (hierarchy, replacement, budgets) does not match.
    CaptureMismatch(&'static str),
    /// A streamed capture failed while being pulled — typically the
    /// backing store entry vanished or was corrupted after load-time
    /// validation. Callers should fall back to a fresh capture.
    CaptureStream(crate::capture::StreamDefect),
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::Code(e) => write!(f, "ecc construction failed: {e}"),
            SimulationError::Array(e) => write!(f, "array model rejected the setup: {e}"),
            SimulationError::BadParameter(what) => write!(f, "invalid parameter: {what}"),
            SimulationError::CaptureMismatch(what) => {
                write!(f, "capture incompatible with this configuration: {what}")
            }
            SimulationError::CaptureStream(defect) => write!(f, "{defect}"),
        }
    }
}

impl std::error::Error for SimulationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimulationError::Code(e) => Some(e),
            SimulationError::Array(e) => Some(e),
            SimulationError::CaptureStream(e) => Some(e),
            SimulationError::BadParameter(_) | SimulationError::CaptureMismatch(_) => None,
        }
    }
}

impl From<CodeError> for SimulationError {
    fn from(e: CodeError) -> Self {
        SimulationError::Code(e)
    }
}

impl From<SpecError> for SimulationError {
    fn from(e: SpecError) -> Self {
        SimulationError::Array(e)
    }
}

/// Runs a configured simulation over a trace.
///
/// # Examples
///
/// ```
/// use reap_core::{ProtectionScheme, SimulationConfig, Simulator};
/// use reap_trace::SpecWorkload;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SimulationConfig {
///     warmup_accesses: 5_000,
///     measure_accesses: 50_000,
///     ..SimulationConfig::default()
/// };
/// let report = Simulator::new(config)?.run(SpecWorkload::DealII.stream(1))?;
/// assert!(report.mttf_improvement(ProtectionScheme::Reap) >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: SimulationConfig,
    p_rd: f64,
    check_bits: usize,
    energy_model: EnergyModel,
    readpath_model: ReadPathModel,
}

impl Simulator {
    /// Builds the derived models for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] if the ECC code or array model cannot
    /// be constructed, or a rate/count parameter is zero.
    pub fn new(config: SimulationConfig) -> Result<Self, SimulationError> {
        if config.measure_accesses == 0 {
            return Err(SimulationError::BadParameter(
                "measure_accesses must be positive",
            ));
        }
        if !(config.access_rate_hz.is_finite() && config.access_rate_hz > 0.0) {
            return Err(SimulationError::BadParameter(
                "access_rate_hz must be positive",
            ));
        }
        let line_bits = config.hierarchy.l2.line_bits();
        let code = config.ecc.build_code(line_bits)?;
        // End-to-end self-check of the constructed codec: a clean codeword
        // must decode to itself. Costs one encode + one decode per
        // simulator construction, and makes every simulation's telemetry
        // carry real `ecc.encode`/`ecc.decode` counts.
        let zeros = vec![0u8; line_bits.div_ceil(8)];
        let decoded = code.decode(code.encode(&zeros).as_bytes());
        if !matches!(decoded.outcome, reap_ecc::DecodeOutcome::Clean) || decoded.data != zeros {
            return Err(SimulationError::BadParameter("ecc codec failed self-check"));
        }
        let check_bits = code.check_bits();
        let node = TechnologyNode::nm(config.tech_nm)?;
        let spec = ArraySpec::new(
            config.hierarchy.l2.size_bytes(),
            config.hierarchy.l2.block_bytes(),
            config.hierarchy.l2.associativity(),
        )?
        .with_check_bits(check_bits);
        let array = estimate(&spec, MemTech::SttMram, node);
        let decoder = DecoderCost::estimate(code.as_ref(), config.tech_nm);
        let p_rd = read_disturbance_probability(&config.mtj);
        Ok(Self {
            config,
            p_rd,
            check_bits,
            energy_model: EnergyModel::new(array, decoder),
            readpath_model: ReadPathModel::new(array, decoder),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The derived per-read, per-cell disturbance probability (Eq. (1)).
    pub fn p_rd(&self) -> f64 {
        self.p_rd
    }

    /// Drives `trace` through the hierarchy and produces the report.
    ///
    /// The trace must supply at least `warmup + measure` accesses;
    /// infinite generator streams always do.
    ///
    /// Implemented as [`capture`](Self::capture) followed by
    /// [`replay`](Self::replay) — bit-identical to the historical
    /// single-pass evaluation (kept as
    /// [`run_single_pass`](Self::run_single_pass) and cross-checked by
    /// property tests), while making the expensive trace pass reusable
    /// across analysis points.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::BadParameter`] if the trace ends before
    /// the configured access budget.
    pub fn run<I>(&self, trace: I) -> Result<Report, SimulationError>
    where
        I: IntoIterator<Item = MemoryAccess>,
    {
        let capture = self.capture(trace)?;
        self.replay(&capture)
    }

    /// Phase 1: drives `trace` through the hierarchy once, recording the
    /// analysis-independent exposure stream.
    ///
    /// The resulting [`ExposureCapture`] can be replayed at any ECC
    /// strength, MTJ operating point, technology node or access rate —
    /// only the *behavioural* configuration (hierarchy geometry,
    /// replacement policy, access budgets) is pinned by the capture.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::BadParameter`] if the trace ends before
    /// the configured access budget.
    pub fn capture<I>(&self, trace: I) -> Result<ExposureCapture, SimulationError>
    where
        I: IntoIterator<Item = MemoryAccess>,
    {
        let mut span = reap_obs::span("capture");
        let total_accesses = self.config.warmup_accesses + self.config.measure_accesses;
        let progress = reap_obs::progress_enabled()
            .then(|| reap_obs::Progress::new("capture", Some(total_accesses)));
        let mut hierarchy = Hierarchy::new(self.config.hierarchy.clone(), self.config.replacement);
        // Check bits widen the sampled content weights, but the capture
        // ignores weights entirely (replay resamples them at the analysis
        // point's width), so the capture is ECC-independent even though
        // the driving cache carries this simulator's check bits.
        hierarchy.l2_mut().set_check_bits(self.check_bits);
        let line_bits = self.config.hierarchy.l2.line_bits();
        let ones_seed = hierarchy.l2().ones_seed();
        let mut observer = CaptureObserver::new();

        let mut iter = trace.into_iter();
        for _ in 0..self.config.warmup_accesses {
            let Some(a) = iter.next() else {
                return Err(SimulationError::BadParameter(
                    "trace shorter than warm-up budget",
                ));
            };
            hierarchy.access(a, &mut ());
            if let Some(p) = &progress {
                p.tick(1);
            }
        }
        hierarchy.l2_mut().reset_stats();
        let mut since_scrub = 0u64;
        for _ in 0..self.config.measure_accesses {
            let Some(a) = iter.next() else {
                return Err(SimulationError::BadParameter(
                    "trace shorter than access budget",
                ));
            };
            hierarchy.access(a, &mut observer);
            // Periodic scrubbing (behavioural, see `SimulationConfig`):
            // checks and exposure-resets every valid L2 line. No terminal
            // scrub — period 0 stays bit-identical to the historical
            // unscrubbed capture.
            if self.config.scrub_period > 0 {
                since_scrub += 1;
                if since_scrub >= self.config.scrub_period {
                    hierarchy.l2_mut().scrub(&mut observer);
                    since_scrub = 0;
                }
            }
            if let Some(p) = &progress {
                p.tick(1);
            }
        }
        if let Some(p) = &progress {
            p.finish();
        }

        let records = observer.into_records();
        let snapshot = HierarchySnapshot::of(&hierarchy);
        span.add_events(total_accesses);
        if span.is_recording() {
            let registry = reap_obs::global();
            registry
                .counter("sim.capture.exposure_events")
                .add(records.len() as u64);
            snapshot.emit_metrics(registry);
        }
        Ok(ExposureCapture::from_parts(
            records,
            snapshot,
            line_bits,
            ones_seed,
            self.config.hierarchy.clone(),
            self.config.replacement,
            self.config.warmup_accesses,
            self.config.measure_accesses,
            self.config.scrub_period,
        ))
    }

    /// Phase 2: evaluates a captured exposure stream at this simulator's
    /// analysis point (ECC strength, MTJ parameters, technology node,
    /// access rate) and produces the report.
    ///
    /// Each recorded event's line weight is resampled from its content
    /// version key at *this* configuration's stored width, and the events
    /// are scored in capture order — making the result bit-identical to a
    /// direct [`run_single_pass`](Self::run_single_pass) of the same
    /// trace at this configuration. Cost is O(events), independent of the
    /// trace length.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::CaptureMismatch`] if the capture was
    /// taken under a different behavioural configuration.
    pub fn replay(&self, capture: &ExposureCapture) -> Result<Report, SimulationError> {
        self.check_capture(capture)?;

        // No snapshot emit here: the capture already published its cache
        // counters once; re-emitting per replayed point would count the
        // trace pass once per sweep point.
        let mut span = reap_obs::span("replay");
        span.add_events(capture.event_count());
        let stored_bits = capture.line_bits() + self.check_bits;
        let model = AccumulationModel::new(self.p_rd, self.config.ecc.t());
        let mut aggregator = ReplayAggregator::new(model, stored_bits as u32);
        let seed = capture.ones_seed();
        // Pull through the stream interface: an in-memory capture walks
        // its slice, a store-backed one decodes frame-by-frame in O(1)
        // memory.
        let mut events = capture.iter().map_err(SimulationError::CaptureStream)?;
        while let Some(record) = events
            .next_record()
            .map_err(SimulationError::CaptureStream)?
        {
            let ones = sample_ones(
                seed,
                record.key.tag,
                record.key.set,
                record.key.version,
                stored_bits,
            );
            aggregator.record(record.kind, ones, record.unchecked_reads);
        }

        let duration_seconds = self.config.measure_accesses as f64 / self.config.access_rate_hz;
        Ok(Report::assemble(
            capture.snapshot(),
            &aggregator,
            self.energy_model,
            self.readpath_model,
            duration_seconds,
            self.p_rd,
        ))
    }

    /// Verifies that `capture` was taken under this simulator's
    /// *behavioural* configuration (hierarchy, replacement, budgets) —
    /// the analysis point (ECC, MTJ, node, rate) is free to differ.
    fn check_capture(&self, capture: &ExposureCapture) -> Result<(), SimulationError> {
        if *capture.hierarchy() != self.config.hierarchy {
            return Err(SimulationError::CaptureMismatch(
                "hierarchy geometry differs",
            ));
        }
        if capture.replacement() != self.config.replacement {
            return Err(SimulationError::CaptureMismatch(
                "replacement policy differs",
            ));
        }
        if capture.warmup_accesses() != self.config.warmup_accesses
            || capture.measure_accesses() != self.config.measure_accesses
        {
            return Err(SimulationError::CaptureMismatch("access budgets differ"));
        }
        if capture.scrub_period() != self.config.scrub_period {
            return Err(SimulationError::CaptureMismatch("scrub period differs"));
        }
        Ok(())
    }

    /// Batched phase 2: evaluates one captured exposure stream at *every*
    /// analysis point in `points` in a **single pass** over the events,
    /// returning one report per point in input order.
    ///
    /// Equivalent to calling [`replay`](Self::replay) on each point —
    /// bit-identical, property-tested — but the stream is walked once:
    /// per record, the line weight is resampled once per *distinct*
    /// stored width among the points (ECC strengths share a width when
    /// their check-bit counts match) and scored against all points by a
    /// [`MultiReplayAggregator`], whose stacked lookup tables and
    /// small-`N` memo keep the per-point cost to a few table reads.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::CaptureMismatch`] if any point's
    /// behavioural configuration differs from the capture's.
    pub fn replay_batch(
        points: &[Simulator],
        capture: &ExposureCapture,
    ) -> Result<Vec<Report>, SimulationError> {
        Self::replay_batch_mode(points, capture, KernelMode::Exact)
    }

    /// [`replay_batch`](Self::replay_batch) with an explicit
    /// [`KernelMode`]. `KernelMode::Exact` keeps the bit-identity
    /// contract; `KernelMode::FastMath` permits the kernel's documented
    /// small-argument `exp_m1` shortcut (every scheme sum within `5e-9`
    /// relative of exact).
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::CaptureMismatch`] if any point's
    /// behavioural configuration differs from the capture's.
    pub fn replay_batch_mode(
        points: &[Simulator],
        capture: &ExposureCapture,
        mode: KernelMode,
    ) -> Result<Vec<Report>, SimulationError> {
        for sim in points {
            sim.check_capture(capture)?;
        }
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let mut span = reap_obs::span("replay_batch");
        span.add_events(capture.event_count());
        if span.is_recording() {
            reap_obs::global()
                .counter("sim.replay_batch.points")
                .add(points.len() as u64);
        }

        let mut multi =
            MultiReplayAggregator::with_mode(Self::batch_kernel_points(points, capture), mode);
        Self::feed_batch(points, capture, |records, ones| {
            multi.record_block(records, ones);
        })?;
        Ok(Self::assemble_batch(points, capture, multi.finish()))
    }

    /// [`replay_batch`](Self::replay_batch) driven by the pre-vectorization
    /// per-record kernel ([`ScalarMultiReplayAggregator`]) over the exact
    /// same width scatter and record stream.
    ///
    /// The scalar kernel is the reference the vectorized one is
    /// property-tested against; this entry point exists so benchmarks can
    /// price the two on identical inputs and assert bit-identity end to
    /// end. Results are bit-identical to [`replay_batch`](Self::replay_batch).
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::CaptureMismatch`] if any point's
    /// behavioural configuration differs from the capture's.
    pub fn replay_batch_scalar(
        points: &[Simulator],
        capture: &ExposureCapture,
    ) -> Result<Vec<Report>, SimulationError> {
        for sim in points {
            sim.check_capture(capture)?;
        }
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let mut span = reap_obs::span("replay_batch_scalar");
        span.add_events(capture.event_count());

        let mut multi =
            ScalarMultiReplayAggregator::new(Self::batch_kernel_points(points, capture));
        let npts = points.len();
        Self::feed_batch(points, capture, |records, ones| {
            for (r, &(kind, reads)) in records.iter().enumerate() {
                multi.record(kind, &ones[r * npts..(r + 1) * npts], reads);
            }
        })?;
        Ok(Self::assemble_batch(points, capture, multi.finish()))
    }

    /// Per-point `(model, stored width)` pairs both batch kernels are
    /// built from.
    fn batch_kernel_points(
        points: &[Simulator],
        capture: &ExposureCapture,
    ) -> Vec<(AccumulationModel, u32)> {
        points
            .iter()
            .map(|sim| {
                (
                    AccumulationModel::new(sim.p_rd, sim.config.ecc.t()),
                    (capture.line_bits() + sim.check_bits) as u32,
                )
            })
            .collect()
    }

    /// Streams the capture once in blocks of [`Self::FEED_BLOCK`]
    /// records, resampling each record's weight once per *distinct*
    /// stored width and scattering to the per-point slots the kernels
    /// expect. Each block is handed to `record` as
    /// `(records, ones)` — `records[r]` is `(kind, unchecked_reads)`
    /// and `ones[r * points.len() ..]` its per-point weights, in
    /// capture order.
    ///
    /// Blocking serves both halves of the pipeline: one record's hash
    /// walk is a serial feedback chain, so `sample_ones_multi_batch`
    /// steps four records' chains in lockstep to hide the latency, and
    /// the vectorized kernel register-blocks its running sums across
    /// each block. The block buffers are reused across the stream — no
    /// per-record allocation.
    fn feed_batch<F>(
        points: &[Simulator],
        capture: &ExposureCapture,
        mut record: F,
    ) -> Result<(), SimulationError>
    where
        F: FnMut(&[(ExposureKind, u64)], &[u32]),
    {
        let stored_bits: Vec<usize> = points
            .iter()
            .map(|sim| capture.line_bits() + sim.check_bits)
            .collect();
        let mut widths = stored_bits.clone();
        widths.sort_unstable();
        widths.dedup();
        let width_index: Vec<usize> = stored_bits
            .iter()
            .map(|w| widths.binary_search(w).expect("width present"))
            .collect();

        let seed = capture.ones_seed();
        let nw = widths.len();
        let npts = points.len();
        let mut keys: Vec<(u64, u64, u64)> = Vec::with_capacity(Self::FEED_BLOCK);
        let mut kinds: Vec<(ExposureKind, u64)> = Vec::with_capacity(Self::FEED_BLOCK);
        let mut ones_by_width = vec![0u32; Self::FEED_BLOCK * nw];
        let mut ones_by_point = vec![0u32; Self::FEED_BLOCK * npts];
        let mut events = capture.iter().map_err(SimulationError::CaptureStream)?;
        loop {
            keys.clear();
            kinds.clear();
            while keys.len() < Self::FEED_BLOCK {
                match events
                    .next_record()
                    .map_err(SimulationError::CaptureStream)?
                {
                    Some(event) => {
                        keys.push((event.key.tag, event.key.set, event.key.version));
                        kinds.push((event.kind, event.unchecked_reads));
                    }
                    None => break,
                }
            }
            if keys.is_empty() {
                return Ok(());
            }
            // One shared-prefix hash walk covers every distinct width,
            // four records' walks interleaved — bit-identical to a
            // per-width `sample_ones` (property-tested in reap-cache)
            // at a fraction of the per-record hashing latency.
            sample_ones_multi_batch(seed, &keys, &widths, &mut ones_by_width[..keys.len() * nw]);
            for row in 0..keys.len() {
                for (i, &w) in width_index.iter().enumerate() {
                    ones_by_point[row * npts + i] = ones_by_width[row * nw + w];
                }
            }
            record(&kinds, &ones_by_point[..keys.len() * npts]);
        }
    }

    /// Records fed per sampler block by [`feed_batch`](Self::feed_batch).
    const FEED_BLOCK: usize = 64;

    /// Zips finished aggregators back onto their points as [`Report`]s.
    fn assemble_batch(
        points: &[Simulator],
        capture: &ExposureCapture,
        aggregators: Vec<ReplayAggregator>,
    ) -> Vec<Report> {
        points
            .iter()
            .zip(aggregators)
            .map(|(sim, aggregator)| {
                let duration_seconds =
                    sim.config.measure_accesses as f64 / sim.config.access_rate_hz;
                Report::assemble(
                    capture.snapshot(),
                    &aggregator,
                    sim.energy_model,
                    sim.readpath_model,
                    duration_seconds,
                    sim.p_rd,
                )
            })
            .collect()
    }

    /// The historical one-pass evaluation: drives the trace with a live
    /// [`ReliabilityObserver`] scoring events as they happen.
    ///
    /// Kept as the reference implementation the capture/replay split is
    /// property-tested against; [`run`](Self::run) produces bit-identical
    /// reports at a fraction of the cost for multi-point sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::BadParameter`] if the trace ends before
    /// the configured access budget.
    pub fn run_single_pass<I>(&self, trace: I) -> Result<Report, SimulationError>
    where
        I: IntoIterator<Item = MemoryAccess>,
    {
        let mut span = reap_obs::span("single_pass");
        let mut hierarchy = Hierarchy::new(self.config.hierarchy.clone(), self.config.replacement);
        hierarchy.l2_mut().set_check_bits(self.check_bits);
        let stored_bits = hierarchy.l2().stored_line_bits() as u32;
        let model = AccumulationModel::new(self.p_rd, self.config.ecc.t());
        let mut observer = ReliabilityObserver::new(model, stored_bits);

        let mut iter = trace.into_iter();
        for _ in 0..self.config.warmup_accesses {
            let Some(a) = iter.next() else {
                return Err(SimulationError::BadParameter(
                    "trace shorter than warm-up budget",
                ));
            };
            hierarchy.access(a, &mut ());
        }
        hierarchy.l2_mut().reset_stats();
        let mut since_scrub = 0u64;
        for _ in 0..self.config.measure_accesses {
            let Some(a) = iter.next() else {
                return Err(SimulationError::BadParameter(
                    "trace shorter than access budget",
                ));
            };
            hierarchy.access(a, &mut observer);
            // Mirror `capture`'s scrub cadence exactly: this is the
            // reference the two-phase split is property-tested against.
            if self.config.scrub_period > 0 {
                since_scrub += 1;
                if since_scrub >= self.config.scrub_period {
                    hierarchy.l2_mut().scrub(&mut observer);
                    since_scrub = 0;
                }
            }
        }

        let duration_seconds = self.config.measure_accesses as f64 / self.config.access_rate_hz;
        let snapshot = HierarchySnapshot::of(&hierarchy);
        span.add_events(self.config.warmup_accesses + self.config.measure_accesses);
        if span.is_recording() {
            snapshot.emit_metrics(reap_obs::global());
        }
        Ok(Report::assemble(
            &snapshot,
            &observer.into_aggregator(),
            self.energy_model,
            self.readpath_model,
            duration_seconds,
            self.p_rd,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ProtectionScheme;
    use reap_trace::SpecWorkload;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            warmup_accesses: 2_000,
            measure_accesses: 30_000,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn ecc_strengths_build_codes() {
        for s in EccStrength::ALL {
            let code = s.build_code(512).unwrap();
            assert_eq!(code.correctable_errors(), s.t());
            assert_eq!(code.data_bits(), 512);
        }
        assert_eq!(EccStrength::Sec.build_code(512).unwrap().check_bits(), 10);
        assert_eq!(EccStrength::Tec.build_code(512).unwrap().check_bits(), 30);
    }

    #[test]
    fn simulator_reports_improvement_above_one() {
        let sim = Simulator::new(quick_config()).unwrap();
        let report = sim.run(SpecWorkload::Namd.stream(3)).unwrap();
        let imp = report.mttf_improvement(ProtectionScheme::Reap);
        assert!(imp > 1.0, "improvement = {imp}");
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = Simulator::new(quick_config()).unwrap();
        let a = sim.run(SpecWorkload::Gcc.stream(9)).unwrap();
        let b = sim.run(SpecWorkload::Gcc.stream(9)).unwrap();
        assert_eq!(
            a.expected_failures(ProtectionScheme::Conventional),
            b.expected_failures(ProtectionScheme::Conventional)
        );
        assert_eq!(a.l2_stats().concealed_reads, b.l2_stats().concealed_reads);
    }

    #[test]
    fn short_trace_is_an_error() {
        let sim = Simulator::new(quick_config()).unwrap();
        let trace: Vec<MemoryAccess> = (0..100).map(|i| MemoryAccess::load(i * 64)).collect();
        let err = sim.run(trace).unwrap_err();
        assert!(matches!(err, SimulationError::BadParameter(_)));
    }

    #[test]
    fn zero_measure_budget_rejected() {
        let config = SimulationConfig {
            measure_accesses: 0,
            ..SimulationConfig::default()
        };
        assert!(matches!(
            Simulator::new(config),
            Err(SimulationError::BadParameter(_))
        ));
    }

    #[test]
    fn p_rd_comes_from_eq_one() {
        let sim = Simulator::new(quick_config()).unwrap();
        assert!(
            (sim.p_rd() / 1.523e-8 - 1.0).abs() < 0.01,
            "p = {}",
            sim.p_rd()
        );
    }

    fn failure_bits(r: &Report) -> [u64; 4] {
        [
            r.expected_failures(ProtectionScheme::Conventional)
                .to_bits(),
            r.expected_failures(ProtectionScheme::Reap).to_bits(),
            r.expected_failures(ProtectionScheme::SerialTagFirst)
                .to_bits(),
            r.writeback_exposure().to_bits(),
        ]
    }

    #[test]
    fn run_matches_single_pass_bit_for_bit() {
        let sim = Simulator::new(quick_config()).unwrap();
        let two_phase = sim.run(SpecWorkload::Gcc.stream(5)).unwrap();
        let single = sim.run_single_pass(SpecWorkload::Gcc.stream(5)).unwrap();
        assert_eq!(failure_bits(&two_phase), failure_bits(&single));
        assert_eq!(two_phase.l2_stats(), single.l2_stats());
        assert_eq!(
            two_phase.histogram().total_count(),
            single.histogram().total_count()
        );
    }

    #[test]
    fn one_capture_replays_across_ecc_strengths() {
        let capture = Simulator::new(quick_config())
            .unwrap()
            .capture(SpecWorkload::Namd.stream(3))
            .unwrap();
        for ecc in EccStrength::ALL {
            let config = SimulationConfig {
                ecc,
                ..quick_config()
            };
            let sim = Simulator::new(config).unwrap();
            let replayed = sim.replay(&capture).unwrap();
            let direct = sim.run_single_pass(SpecWorkload::Namd.stream(3)).unwrap();
            assert_eq!(
                failure_bits(&replayed),
                failure_bits(&direct),
                "replay at {ecc} must match a direct run"
            );
        }
    }

    #[test]
    fn replay_rejects_behavioural_mismatch() {
        let capture = Simulator::new(quick_config())
            .unwrap()
            .capture(SpecWorkload::Namd.stream(3))
            .unwrap();
        let other = SimulationConfig {
            replacement: Replacement::Fifo,
            ..quick_config()
        };
        let err = Simulator::new(other).unwrap().replay(&capture).unwrap_err();
        assert!(matches!(err, SimulationError::CaptureMismatch(_)));
        let other = SimulationConfig {
            measure_accesses: 10_000,
            ..quick_config()
        };
        let err = Simulator::new(other).unwrap().replay(&capture).unwrap_err();
        assert!(matches!(err, SimulationError::CaptureMismatch(_)));
    }

    #[test]
    fn scrubbed_run_matches_single_pass_and_pins_the_capture() {
        let config = SimulationConfig {
            scrub_period: 5_000,
            ..quick_config()
        };
        let sim = Simulator::new(config.clone()).unwrap();
        let two_phase = sim.run(SpecWorkload::Gcc.stream(5)).unwrap();
        let single = sim.run_single_pass(SpecWorkload::Gcc.stream(5)).unwrap();
        assert_eq!(failure_bits(&two_phase), failure_bits(&single));
        assert!(
            two_phase.l2_stats().scrub_checks > 0,
            "periodic scrubbing must actually scrub"
        );

        // The scrub period is behavioural: an unscrubbed simulator must
        // refuse a scrubbed capture, and vice versa.
        let capture = sim.capture(SpecWorkload::Gcc.stream(5)).unwrap();
        assert_eq!(capture.scrub_period(), 5_000);
        let unscrubbed = Simulator::new(quick_config()).unwrap();
        let err = unscrubbed.replay(&capture).unwrap_err();
        assert!(matches!(err, SimulationError::CaptureMismatch(_)));
    }

    #[test]
    fn replay_batch_matches_per_point_replay_bit_for_bit() {
        let capture = Simulator::new(quick_config())
            .unwrap()
            .capture(SpecWorkload::Namd.stream(3))
            .unwrap();
        // Heterogeneous points: every ECC width crossed with two MTJ
        // operating points, so the batch mixes distinct stored widths
        // *and* distinct P_rd values at the same width.
        let mut points = Vec::new();
        for ecc in EccStrength::ALL {
            for i_read in [70e-6, 55e-6] {
                let config = SimulationConfig {
                    ecc,
                    mtj: MtjParams::default().with_read_current(i_read).unwrap(),
                    ..quick_config()
                };
                points.push(Simulator::new(config).unwrap());
            }
        }
        let batched = Simulator::replay_batch(&points, &capture).unwrap();
        assert_eq!(batched.len(), points.len());
        for (sim, got) in points.iter().zip(&batched) {
            let want = sim.replay(&capture).unwrap();
            assert_eq!(
                failure_bits(got),
                failure_bits(&want),
                "batched point (ecc {}, P_rd {}) diverged from its own replay",
                sim.config.ecc,
                sim.p_rd()
            );
            assert_eq!(got.histogram(), want.histogram());
        }
    }

    #[test]
    fn replay_batch_scalar_matches_vectorized_bit_for_bit() {
        let capture = Simulator::new(quick_config())
            .unwrap()
            .capture(SpecWorkload::Namd.stream(3))
            .unwrap();
        let mut points = Vec::new();
        for ecc in EccStrength::ALL {
            for i_read in [70e-6, 55e-6] {
                let config = SimulationConfig {
                    ecc,
                    mtj: MtjParams::default().with_read_current(i_read).unwrap(),
                    ..quick_config()
                };
                points.push(Simulator::new(config).unwrap());
            }
        }
        let vectorized = Simulator::replay_batch(&points, &capture).unwrap();
        let scalar = Simulator::replay_batch_scalar(&points, &capture).unwrap();
        assert_eq!(vectorized.len(), scalar.len());
        for ((sim, got), want) in points.iter().zip(&vectorized).zip(&scalar) {
            assert_eq!(
                failure_bits(got),
                failure_bits(want),
                "vectorized point (ecc {}, P_rd {}) diverged from the scalar kernel",
                sim.config.ecc,
                sim.p_rd()
            );
            assert_eq!(got.histogram(), want.histogram());
        }
    }

    #[test]
    fn replay_batch_of_nothing_is_empty() {
        let capture = Simulator::new(quick_config())
            .unwrap()
            .capture(SpecWorkload::Gcc.stream(1))
            .unwrap();
        assert!(Simulator::replay_batch(&[], &capture).unwrap().is_empty());
    }

    #[test]
    fn replay_batch_rejects_any_mismatched_point() {
        let capture = Simulator::new(quick_config())
            .unwrap()
            .capture(SpecWorkload::Gcc.stream(1))
            .unwrap();
        let good = Simulator::new(quick_config()).unwrap();
        let bad = Simulator::new(SimulationConfig {
            replacement: Replacement::Fifo,
            ..quick_config()
        })
        .unwrap();
        let err = Simulator::replay_batch(&[good, bad], &capture).unwrap_err();
        assert!(matches!(err, SimulationError::CaptureMismatch(_)));
    }

    #[test]
    fn error_display_chains() {
        let e = SimulationError::from(CodeError::UnsupportedCorrection { t: 0 });
        assert!(e.to_string().contains("ecc construction failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
