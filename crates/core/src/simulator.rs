//! End-to-end simulation: trace → hierarchy → reliability + energy.

use crate::energy::EnergyModel;
use crate::observer::ReliabilityObserver;
use crate::readpath::ReadPathModel;
use crate::report::Report;
use reap_cache::{Hierarchy, HierarchyConfig, Replacement};
use reap_ecc::{Bch, CodeError, DecoderCost, EccCode, HammingSec};
use reap_mtj::{read_disturbance_probability, MtjParams};
use reap_nvarray::{estimate, ArraySpec, MemTech, SpecError, TechnologyNode};
use reap_reliability::AccumulationModel;
use reap_trace::MemoryAccess;
use std::fmt;

/// Line-level ECC strength protecting the STT-MRAM L2.
///
/// The paper's analysis treats the whole line as one `t`-error-correcting
/// block (§III-B); the concrete codes here provide exactly that at
/// realistic check-bit costs for a 512-bit line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccStrength {
    /// Single-error correction (Hamming, 10 check bits) — the paper's
    /// baseline assumption.
    Sec,
    /// Double-error correction (BCH t=2, 20 check bits).
    Dec,
    /// Triple-error correction (BCH t=3, 30 check bits).
    Tec,
}

impl EccStrength {
    /// All strengths, weakest first.
    pub const ALL: [EccStrength; 3] = [EccStrength::Sec, EccStrength::Dec, EccStrength::Tec];

    /// The correction capability `t`.
    pub fn t(self) -> usize {
        match self {
            EccStrength::Sec => 1,
            EccStrength::Dec => 2,
            EccStrength::Tec => 3,
        }
    }

    /// Builds the concrete code for `data_bits` payload bits.
    ///
    /// # Errors
    ///
    /// Propagates [`CodeError`] when the geometry cannot be constructed.
    pub fn build_code(self, data_bits: usize) -> Result<Box<dyn EccCode>, CodeError> {
        Ok(match self {
            EccStrength::Sec => Box::new(HammingSec::new(data_bits)?),
            EccStrength::Dec => Box::new(Bch::new(data_bits, 2)?),
            EccStrength::Tec => Box::new(Bch::new(data_bits, 3)?),
        })
    }
}

impl fmt::Display for EccStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccStrength::Sec => f.write_str("SEC"),
            EccStrength::Dec => f.write_str("DEC"),
            EccStrength::Tec => f.write_str("TEC"),
        }
    }
}

/// Full configuration of one simulation.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Cache geometries (Table I by default).
    pub hierarchy: HierarchyConfig,
    /// Replacement policy for all levels.
    pub replacement: Replacement,
    /// STT-MRAM cell parameters (determine `P_rd` via Eq. (1)).
    pub mtj: MtjParams,
    /// L2 line ECC strength.
    pub ecc: EccStrength,
    /// Process node in nanometres.
    pub tech_nm: u32,
    /// Accesses issued per second by the core (for MTTF time base).
    pub access_rate_hz: f64,
    /// Accesses simulated before measurement starts (cache warm-up).
    pub warmup_accesses: u64,
    /// Accesses measured.
    pub measure_accesses: u64,
}

impl Default for SimulationConfig {
    /// The paper's setup: Table I hierarchy, LRU, default MTJ card
    /// (`P_rd ≈ 1.5e-8`), SEC, 22 nm, 1 G accesses/s.
    fn default() -> Self {
        Self {
            hierarchy: HierarchyConfig::paper(),
            replacement: Replacement::Lru,
            mtj: MtjParams::default(),
            ecc: EccStrength::Sec,
            tech_nm: 22,
            access_rate_hz: 1e9,
            warmup_accesses: 100_000,
            measure_accesses: 1_000_000,
        }
    }
}

/// Error constructing or running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimulationError {
    /// The ECC code could not be constructed for the line width.
    Code(CodeError),
    /// The array model rejected the geometry or node.
    Array(SpecError),
    /// A parameter was out of range.
    BadParameter(&'static str),
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::Code(e) => write!(f, "ecc construction failed: {e}"),
            SimulationError::Array(e) => write!(f, "array model rejected the setup: {e}"),
            SimulationError::BadParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for SimulationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimulationError::Code(e) => Some(e),
            SimulationError::Array(e) => Some(e),
            SimulationError::BadParameter(_) => None,
        }
    }
}

impl From<CodeError> for SimulationError {
    fn from(e: CodeError) -> Self {
        SimulationError::Code(e)
    }
}

impl From<SpecError> for SimulationError {
    fn from(e: SpecError) -> Self {
        SimulationError::Array(e)
    }
}

/// Runs a configured simulation over a trace.
///
/// # Examples
///
/// ```
/// use reap_core::{ProtectionScheme, SimulationConfig, Simulator};
/// use reap_trace::SpecWorkload;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SimulationConfig {
///     warmup_accesses: 5_000,
///     measure_accesses: 50_000,
///     ..SimulationConfig::default()
/// };
/// let report = Simulator::new(config)?.run(SpecWorkload::DealII.stream(1))?;
/// assert!(report.mttf_improvement(ProtectionScheme::Reap) >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: SimulationConfig,
    p_rd: f64,
    check_bits: usize,
    energy_model: EnergyModel,
    readpath_model: ReadPathModel,
}

impl Simulator {
    /// Builds the derived models for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] if the ECC code or array model cannot
    /// be constructed, or a rate/count parameter is zero.
    pub fn new(config: SimulationConfig) -> Result<Self, SimulationError> {
        if config.measure_accesses == 0 {
            return Err(SimulationError::BadParameter(
                "measure_accesses must be positive",
            ));
        }
        if !(config.access_rate_hz.is_finite() && config.access_rate_hz > 0.0) {
            return Err(SimulationError::BadParameter(
                "access_rate_hz must be positive",
            ));
        }
        let line_bits = config.hierarchy.l2.line_bits();
        let code = config.ecc.build_code(line_bits)?;
        let check_bits = code.check_bits();
        let node = TechnologyNode::nm(config.tech_nm)?;
        let spec = ArraySpec::new(
            config.hierarchy.l2.size_bytes(),
            config.hierarchy.l2.block_bytes(),
            config.hierarchy.l2.associativity(),
        )?
        .with_check_bits(check_bits);
        let array = estimate(&spec, MemTech::SttMram, node);
        let decoder = DecoderCost::estimate(code.as_ref(), config.tech_nm);
        let p_rd = read_disturbance_probability(&config.mtj);
        Ok(Self {
            config,
            p_rd,
            check_bits,
            energy_model: EnergyModel::new(array, decoder),
            readpath_model: ReadPathModel::new(array, decoder),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The derived per-read, per-cell disturbance probability (Eq. (1)).
    pub fn p_rd(&self) -> f64 {
        self.p_rd
    }

    /// Drives `trace` through the hierarchy and produces the report.
    ///
    /// The trace must supply at least `warmup + measure` accesses;
    /// infinite generator streams always do.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::BadParameter`] if the trace ends before
    /// the configured access budget.
    pub fn run<I>(&self, trace: I) -> Result<Report, SimulationError>
    where
        I: IntoIterator<Item = MemoryAccess>,
    {
        let mut hierarchy = Hierarchy::new(self.config.hierarchy.clone(), self.config.replacement);
        hierarchy.l2_mut().set_check_bits(self.check_bits);
        let stored_bits = hierarchy.l2().stored_line_bits() as u32;
        let model = AccumulationModel::new(self.p_rd, self.config.ecc.t());
        let mut observer = ReliabilityObserver::new(model, stored_bits);

        let mut iter = trace.into_iter();
        for _ in 0..self.config.warmup_accesses {
            let Some(a) = iter.next() else {
                return Err(SimulationError::BadParameter(
                    "trace shorter than warm-up budget",
                ));
            };
            hierarchy.access(a, &mut ());
        }
        hierarchy.l2_mut().reset_stats();
        for _ in 0..self.config.measure_accesses {
            let Some(a) = iter.next() else {
                return Err(SimulationError::BadParameter(
                    "trace shorter than access budget",
                ));
            };
            hierarchy.access(a, &mut observer);
        }

        let duration_seconds = self.config.measure_accesses as f64 / self.config.access_rate_hz;
        Ok(Report::assemble(
            &hierarchy,
            observer,
            self.energy_model,
            self.readpath_model,
            duration_seconds,
            self.p_rd,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ProtectionScheme;
    use reap_trace::SpecWorkload;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            warmup_accesses: 2_000,
            measure_accesses: 30_000,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn ecc_strengths_build_codes() {
        for s in EccStrength::ALL {
            let code = s.build_code(512).unwrap();
            assert_eq!(code.correctable_errors(), s.t());
            assert_eq!(code.data_bits(), 512);
        }
        assert_eq!(EccStrength::Sec.build_code(512).unwrap().check_bits(), 10);
        assert_eq!(EccStrength::Tec.build_code(512).unwrap().check_bits(), 30);
    }

    #[test]
    fn simulator_reports_improvement_above_one() {
        let sim = Simulator::new(quick_config()).unwrap();
        let report = sim.run(SpecWorkload::Namd.stream(3)).unwrap();
        let imp = report.mttf_improvement(ProtectionScheme::Reap);
        assert!(imp > 1.0, "improvement = {imp}");
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = Simulator::new(quick_config()).unwrap();
        let a = sim.run(SpecWorkload::Gcc.stream(9)).unwrap();
        let b = sim.run(SpecWorkload::Gcc.stream(9)).unwrap();
        assert_eq!(
            a.expected_failures(ProtectionScheme::Conventional),
            b.expected_failures(ProtectionScheme::Conventional)
        );
        assert_eq!(a.l2_stats().concealed_reads, b.l2_stats().concealed_reads);
    }

    #[test]
    fn short_trace_is_an_error() {
        let sim = Simulator::new(quick_config()).unwrap();
        let trace: Vec<MemoryAccess> = (0..100).map(|i| MemoryAccess::load(i * 64)).collect();
        let err = sim.run(trace).unwrap_err();
        assert!(matches!(err, SimulationError::BadParameter(_)));
    }

    #[test]
    fn zero_measure_budget_rejected() {
        let config = SimulationConfig {
            measure_accesses: 0,
            ..SimulationConfig::default()
        };
        assert!(matches!(
            Simulator::new(config),
            Err(SimulationError::BadParameter(_))
        ));
    }

    #[test]
    fn p_rd_comes_from_eq_one() {
        let sim = Simulator::new(quick_config()).unwrap();
        assert!(
            (sim.p_rd() / 1.523e-8 - 1.0).abs() < 0.01,
            "p = {}",
            sim.p_rd()
        );
    }

    #[test]
    fn error_display_chains() {
        let e = SimulationError::from(CodeError::UnsupportedCorrection { t: 0 });
        assert!(e.to_string().contains("ecc construction failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
