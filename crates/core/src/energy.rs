//! Dynamic-energy accounting per protection scheme (§V-B, Fig. 6).
//!
//! One simulation pass produces one set of cache counters
//! ([`reap_cache::CacheStats`]) — valid for every scheme, because the
//! schemes differ only in *when ECC runs*, not in cache behaviour. This
//! module converts the counters into per-scheme dynamic energy using the
//! array estimate and the decoder cost:
//!
//! | per event | conventional | REAP | serial | restore |
//! |---|---|---|---|---|
//! | read access | tag + all-way line reads | same | tag + 1 line read (hits) | same as conventional |
//! | ECC decodes | 1 per demand hit | 1 per physical line read | 1 per demand hit | 1 per demand hit |
//! | extra writes | — | — | — | restore write per line read |
//!
//! Writes, fills and write-backs are identical across schemes.

use crate::scheme::ProtectionScheme;
use reap_cache::CacheStats;
use reap_ecc::DecoderCost;
use reap_nvarray::ArrayEstimate;
use std::fmt;

/// Energy totals for one scheme over one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Tag-array access energy (J).
    pub tag: f64,
    /// Data-array read energy (J).
    pub data_read: f64,
    /// Data-array write energy — stores, fills, write-backs, restores (J).
    pub data_write: f64,
    /// ECC encode + decode energy (J).
    pub ecc: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy (J).
    pub fn total(&self) -> f64 {
        self.tag + self.data_read + self.data_write + self.ecc
    }

    /// Fraction contributed by the ECC logic.
    ///
    /// A zero-activity breakdown (no accesses recorded, total energy 0 J)
    /// has no ECC share by definition: the result is `0.0`, never NaN, so
    /// rankings over degenerate points stay well ordered.
    pub fn ecc_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        self.ecc / total
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} J (tag {:.2e}, rd {:.2e}, wr {:.2e}, ecc {:.2e})",
            self.total(),
            self.tag,
            self.data_read,
            self.data_write,
            self.ecc
        )
    }
}

/// Converts cache counters into per-scheme dynamic energy.
///
/// # Examples
///
/// ```
/// use reap_cache::CacheStats;
/// use reap_core::{EnergyModel, ProtectionScheme};
/// use reap_ecc::{DecoderCost, EccCode, HsiaoSecDed, Interleaved};
/// use reap_nvarray::{estimate, ArraySpec, MemTech, TechnologyNode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ArraySpec::new(1 << 20, 64, 8)?.with_check_bits(64);
/// let array = estimate(&spec, MemTech::SttMram, TechnologyNode::nm(22)?);
/// let code = Interleaved::new(HsiaoSecDed::new(64)?, 8)?;
/// let model = EnergyModel::new(array, DecoderCost::estimate(&code, 22));
/// let stats = CacheStats { reads: 1_000, read_hits: 900, line_reads: 7_500,
///     demand_checks: 900, ..CacheStats::default() };
/// let conv = model.breakdown(&stats, ProtectionScheme::Conventional).total();
/// let reap = model.breakdown(&stats, ProtectionScheme::Reap).total();
/// let overhead = reap / conv - 1.0;
/// assert!(overhead > 0.0 && overhead < 0.2, "small per-read decoder overhead");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    array: ArrayEstimate,
    decoder: DecoderCost,
}

impl EnergyModel {
    /// Creates the model from an array estimate and a decoder cost.
    pub fn new(array: ArrayEstimate, decoder: DecoderCost) -> Self {
        Self { array, decoder }
    }

    /// The decoder cost in force.
    pub fn decoder(&self) -> &DecoderCost {
        &self.decoder
    }

    /// Dynamic energy of one simulation's L2 activity under `scheme`.
    pub fn breakdown(&self, stats: &CacheStats, scheme: ProtectionScheme) -> EnergyBreakdown {
        let a = &self.array;
        let e_dec = self.decoder.energy_per_decode;
        // Every demand access (read or write) resolves tags.
        let tag = stats.accesses() as f64 * a.tag_access_energy;

        // Data reads: in parallel modes, every valid way of the set was
        // physically read; `line_reads` counts exactly those events. The
        // serial scheme reads one way, on hits only. Write-backs of dirty
        // victims read the departing line in all schemes.
        let parallel_reads = stats.line_reads as f64 + stats.dirty_evictions as f64;
        let serial_reads = stats.read_hits as f64 + stats.dirty_evictions as f64;
        let data_read = match scheme {
            ProtectionScheme::SerialTagFirst => serial_reads * a.line_read_energy,
            _ => parallel_reads * a.line_read_energy,
        };

        // Writes: stores into L2 + fills; restore adds a write per read.
        let base_writes = stats.writes as f64 + stats.fills as f64;
        let restore_writes = if scheme.restores_after_read() {
            stats.line_reads as f64
        } else {
            0.0
        };
        let data_write = (base_writes + restore_writes) * a.line_write_energy;

        // ECC: encodes on every write/fill (all schemes), decodes per the
        // scheme's checking discipline. Encoder energy ≈ decoder energy
        // (same syndrome tree, no corrector) — we charge the full decoder
        // cost, which is conservative.
        let decodes = if scheme.checks_every_read() {
            stats.line_reads as f64
        } else {
            stats.demand_checks as f64
        };
        let encodes = base_writes + restore_writes;
        let ecc = (decodes + encodes) * e_dec;

        EnergyBreakdown {
            tag,
            data_read,
            data_write,
            ecc,
        }
    }

    /// Relative dynamic-energy overhead of `scheme` versus the
    /// conventional baseline (the Fig. 6 metric: `E_scheme / E_conv − 1`).
    ///
    /// When the conventional baseline spent no energy at all (zero-activity
    /// counters, e.g. `CacheStats::default()`), every scheme also spends
    /// nothing — the schemes only reprice events that never happened — so
    /// the overhead is defined as `0.0`, never NaN.
    pub fn overhead_vs_conventional(&self, stats: &CacheStats, scheme: ProtectionScheme) -> f64 {
        let conv = self
            .breakdown(stats, ProtectionScheme::Conventional)
            .total();
        if conv == 0.0 {
            return 0.0;
        }
        let this = self.breakdown(stats, scheme).total();
        this / conv - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_ecc::{EccCode as _, HammingSec};
    use reap_nvarray::{estimate, ArraySpec, MemTech, TechnologyNode};

    fn model() -> EnergyModel {
        // The simulator's default protection: line-level SEC (10 check bits).
        let code = HammingSec::new(512).unwrap();
        let spec = ArraySpec::new(1 << 20, 64, 8)
            .unwrap()
            .with_check_bits(code.check_bits());
        let array = estimate(&spec, MemTech::SttMram, TechnologyNode::nm(22).unwrap());
        EnergyModel::new(array, DecoderCost::estimate(&code, 22))
    }

    fn stats() -> CacheStats {
        CacheStats {
            reads: 100_000,
            writes: 20_000,
            read_hits: 90_000,
            write_hits: 18_000,
            fills: 12_000,
            evictions: 11_000,
            dirty_evictions: 4_000,
            concealed_reads: 600_000,
            line_reads: 690_000,
            demand_checks: 90_000,
            scrub_checks: 0,
            writeback_installs: 0,
        }
    }

    #[test]
    fn reap_overhead_is_small_and_positive() {
        let m = model();
        let o = m.overhead_vs_conventional(&stats(), ProtectionScheme::Reap);
        assert!(o > 0.001 && o < 0.10, "overhead = {o}");
    }

    #[test]
    fn ecc_is_under_one_percent_of_conventional_energy() {
        // §V-B premise: the decoder is <1 % of cache energy.
        let m = model();
        let b = m.breakdown(&stats(), ProtectionScheme::Conventional);
        assert!(
            b.ecc_fraction() < 0.01,
            "ecc fraction = {}",
            b.ecc_fraction()
        );
    }

    #[test]
    fn serial_reads_less_data_energy() {
        let m = model();
        let conv = m.breakdown(&stats(), ProtectionScheme::Conventional);
        let serial = m.breakdown(&stats(), ProtectionScheme::SerialTagFirst);
        assert!(serial.data_read < conv.data_read / 4.0);
    }

    #[test]
    fn restore_energy_is_much_larger() {
        let m = model();
        let o = m.overhead_vs_conventional(&stats(), ProtectionScheme::DisruptiveRestore);
        assert!(o > 1.0, "a restore per read multiplies write energy: {o}");
    }

    #[test]
    fn conventional_overhead_vs_itself_is_zero() {
        let m = model();
        let o = m.overhead_vs_conventional(&stats(), ProtectionScheme::Conventional);
        assert!(o.abs() < 1e-12);
    }

    #[test]
    fn write_energy_identical_between_conventional_and_reap() {
        let m = model();
        let conv = m.breakdown(&stats(), ProtectionScheme::Conventional);
        let reap = m.breakdown(&stats(), ProtectionScheme::Reap);
        assert_eq!(conv.data_write, reap.data_write);
        assert_eq!(conv.tag, reap.tag);
        assert!(reap.ecc > conv.ecc);
    }

    #[test]
    fn zero_activity_ecc_fraction_is_zero_not_nan() {
        // Regression: `ecc / total()` was NaN on an all-zero breakdown.
        let m = model();
        for scheme in [
            ProtectionScheme::Conventional,
            ProtectionScheme::Reap,
            ProtectionScheme::SerialTagFirst,
            ProtectionScheme::DisruptiveRestore,
        ] {
            let b = m.breakdown(&CacheStats::default(), scheme);
            assert_eq!(b.total(), 0.0);
            assert_eq!(b.ecc_fraction(), 0.0, "{scheme:?} must not be NaN");
        }
        assert_eq!(EnergyBreakdown::default().ecc_fraction(), 0.0);
    }

    #[test]
    fn zero_activity_overhead_is_zero_not_nan() {
        // Regression: `this / conv - 1.0` was NaN when conv == 0.
        let m = model();
        for scheme in [
            ProtectionScheme::Conventional,
            ProtectionScheme::Reap,
            ProtectionScheme::SerialTagFirst,
            ProtectionScheme::DisruptiveRestore,
        ] {
            let o = m.overhead_vs_conventional(&CacheStats::default(), scheme);
            assert_eq!(o, 0.0, "{scheme:?} must not be NaN");
        }
    }

    #[test]
    fn breakdown_display_mentions_components() {
        let m = model();
        let text = m.breakdown(&stats(), ProtectionScheme::Reap).to_string();
        assert!(text.contains("ecc"));
        assert!(text.contains("tag"));
    }
}
