//! High-level experiment builder — the one-call entry point.

use crate::capture::ExposureCapture;
use crate::capture_store::CaptureStore;
use crate::report::Report;
use crate::simulator::{EccStrength, SimulationConfig, SimulationError, Simulator};
use reap_cache::{HierarchyConfig, Replacement};
use reap_mtj::MtjParams;
use reap_trace::SpecWorkload;
use std::fmt;

/// Builder that configures and runs one simulation of one workload.
///
/// # Examples
///
/// ```
/// use reap_core::{Experiment, ProtectionScheme};
/// use reap_trace::SpecWorkload;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let report = Experiment::paper_hierarchy()
///     .workload(SpecWorkload::Calculix)
///     .accesses(60_000)
///     .seed(3)
///     .run()?;
/// println!("{:.1}x", report.mttf_improvement(ProtectionScheme::Reap));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    config: SimulationConfig,
    workload: SpecWorkload,
    seed: u64,
}

impl Experiment {
    /// Starts from the paper's Table I setup: 32 KB 4-way L1I/L1D, 1 MB
    /// 8-way STT-MRAM L2, LRU, SEC, 22 nm, default MTJ card.
    pub fn paper_hierarchy() -> Self {
        Self {
            config: SimulationConfig::default(),
            workload: SpecWorkload::Perlbench,
            seed: 1,
        }
    }

    /// Selects the workload profile.
    pub fn workload(mut self, workload: SpecWorkload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the measured access budget; warm-up defaults to 10 % of it.
    pub fn accesses(mut self, measure: u64) -> Self {
        self.config.measure_accesses = measure;
        self.config.warmup_accesses = measure / 10;
        self
    }

    /// Overrides warm-up and measurement budgets independently.
    pub fn budgets(mut self, warmup: u64, measure: u64) -> Self {
        self.config.warmup_accesses = warmup;
        self.config.measure_accesses = measure;
        self
    }

    /// Sets the trace seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the cache hierarchy.
    pub fn hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.config.hierarchy = hierarchy;
        self
    }

    /// Replaces the replacement policy.
    pub fn replacement(mut self, replacement: Replacement) -> Self {
        self.config.replacement = replacement;
        self
    }

    /// Replaces the MTJ parameter card.
    pub fn mtj(mut self, mtj: MtjParams) -> Self {
        self.config.mtj = mtj;
        self
    }

    /// Selects the L2 ECC strength.
    pub fn ecc(mut self, ecc: EccStrength) -> Self {
        self.config.ecc = ecc;
        self
    }

    /// Sets the L2 scrub period in measured accesses (0 = no scrubbing).
    /// Behavioural: captures are pinned to it.
    pub fn scrub(mut self, period: u64) -> Self {
        self.config.scrub_period = period;
        self
    }

    /// The configured workload.
    pub fn configured_workload(&self) -> SpecWorkload {
        self.workload
    }

    /// Immutable view of the underlying simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] when the configuration cannot be
    /// instantiated (bad geometry, unsupported node, zero budget).
    pub fn run(self) -> Result<Report, ExperimentError> {
        let stream = self.workload.stream(self.seed);
        let report = Simulator::new(self.config)?.run(stream)?;
        Ok(report)
    }

    /// Runs the experiment, sourcing the exposure capture from `store`
    /// when one is given — bit-identical to [`run`](Self::run) whether
    /// the capture came from disk or a fresh trace pass.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] when the configuration cannot be
    /// instantiated (bad geometry, unsupported node, zero budget). Store
    /// defects are never errors: they fall back to recapture.
    pub fn run_with(self, store: Option<&CaptureStore>) -> Result<Report, ExperimentError> {
        let Some(store) = store else {
            return self.run();
        };
        let sim = Simulator::new(self.config)?;
        let capture = store.load_or_capture(&sim, self.workload, self.seed)?;
        match sim.replay(&capture) {
            // A store-backed capture is validated at load time, but the
            // entry can still vanish or rot between validation and the
            // streamed replay — treat that like any other store defect
            // and recapture rather than fail the run.
            Err(SimulationError::CaptureStream(defect)) => {
                eprintln!("warning: streamed capture failed mid-replay ({defect}); recapturing");
                let fresh = sim.capture(self.workload.stream(self.seed))?;
                Ok(sim.replay(&fresh)?)
            }
            other => Ok(other?),
        }
    }

    /// Phase 1: drives the configured workload through the hierarchy once
    /// and records the analysis-independent exposure stream.
    ///
    /// The capture can then be [`replay`](Self::replay)ed by any
    /// experiment sharing this one's workload, seed and behavioural
    /// configuration — typically variants differing only in ECC strength
    /// or MTJ parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] when the configuration cannot be
    /// instantiated (bad geometry, unsupported node, zero budget).
    pub fn capture(&self) -> Result<ExposureCapture, ExperimentError> {
        self.capture_with(None)
    }

    /// Phase 1 with an optional [`CaptureStore`]: serve the capture from
    /// disk when `store` has a matching entry, otherwise drive the trace
    /// (persisting the result under a read-write policy).
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] when the configuration cannot be
    /// instantiated (bad geometry, unsupported node, zero budget). Store
    /// defects are never errors: they fall back to recapture.
    pub fn capture_with(
        &self,
        store: Option<&CaptureStore>,
    ) -> Result<ExposureCapture, ExperimentError> {
        let sim = Simulator::new(self.config.clone())?;
        let capture = match store {
            Some(store) => store.load_or_capture(&sim, self.workload, self.seed)?,
            None => sim.capture(self.workload.stream(self.seed))?,
        };
        Ok(capture)
    }

    /// Phase 2: evaluates a captured exposure stream at this experiment's
    /// analysis point without re-driving the trace.
    ///
    /// Bit-identical to [`run`](Self::run) of the same experiment, at
    /// O(events) cost instead of O(trace).
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] when the configuration cannot be
    /// instantiated or the capture's behavioural configuration differs.
    pub fn replay(self, capture: &ExposureCapture) -> Result<Report, ExperimentError> {
        let report = Simulator::new(self.config)?.replay(capture)?;
        Ok(report)
    }
}

/// Error raised by [`Experiment::run`].
#[derive(Debug)]
pub struct ExperimentError {
    inner: SimulationError,
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "experiment failed: {}", self.inner)
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.inner)
    }
}

impl From<SimulationError> for ExperimentError {
    fn from(inner: SimulationError) -> Self {
        Self { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ProtectionScheme;

    #[test]
    fn builder_round_trips_settings() {
        let e = Experiment::paper_hierarchy()
            .workload(SpecWorkload::Lbm)
            .accesses(10_000)
            .seed(99)
            .ecc(EccStrength::Dec);
        assert_eq!(e.configured_workload(), SpecWorkload::Lbm);
        assert_eq!(e.config().measure_accesses, 10_000);
        assert_eq!(e.config().warmup_accesses, 1_000);
        assert_eq!(e.config().ecc, EccStrength::Dec);
    }

    #[test]
    fn quick_run_produces_sane_report() {
        let report = Experiment::paper_hierarchy()
            .workload(SpecWorkload::Hmmer)
            .budgets(1_000, 20_000)
            .seed(5)
            .run()
            .unwrap();
        assert!(report.l2_stats().accesses() > 0);
        assert!(report.mttf_improvement(ProtectionScheme::Reap) >= 1.0);
    }

    #[test]
    fn zero_budget_is_an_error() {
        let err = Experiment::paper_hierarchy()
            .budgets(0, 0)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("experiment failed"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn capture_then_replay_matches_run() {
        let experiment = Experiment::paper_hierarchy()
            .workload(SpecWorkload::Hmmer)
            .budgets(1_000, 20_000)
            .seed(5);
        let capture = experiment.capture().unwrap();
        let replayed = experiment.clone().replay(&capture).unwrap();
        let direct = experiment.run().unwrap();
        assert_eq!(
            replayed
                .expected_failures(ProtectionScheme::Conventional)
                .to_bits(),
            direct
                .expected_failures(ProtectionScheme::Conventional)
                .to_bits()
        );
        assert_eq!(replayed.l2_stats(), direct.l2_stats());
    }

    #[test]
    fn stronger_ecc_reduces_failures() {
        let run = |ecc| {
            Experiment::paper_hierarchy()
                .workload(SpecWorkload::Namd)
                .budgets(2_000, 30_000)
                .seed(7)
                .ecc(ecc)
                .run()
                .unwrap()
                .expected_failures(ProtectionScheme::Conventional)
        };
        let sec = run(EccStrength::Sec);
        let dec = run(EccStrength::Dec);
        assert!(
            dec < sec / 100.0,
            "DEC {dec} should be orders below SEC {sec}"
        );
    }
}
