//! Structural access-time model of the cache read path (§V-B).
//!
//! The conventional parallel-access pipeline is
//!
//! ```text
//! max(tag compare, data read)  →  way MUX  →  ECC decode  →  out
//! ```
//!
//! REAP swaps the MUX and the (replicated) decoders:
//!
//! ```text
//! max(tag compare, data read → ECC decode)  →  way MUX  →  out
//! ```
//!
//! so the decode latency overlaps the tag path. Whenever
//! `tag ≥ data + ecc − ecc` (i.e. always, because REAP's total is
//! `max(tag, data + ecc) + mux ≤ max(tag, data) + mux + ecc`), the REAP
//! access time is less than or equal to the conventional one — the claim
//! this module computes from NVSim-like numbers rather than asserting.

use crate::scheme::ProtectionScheme;
use reap_ecc::DecoderCost;
use reap_nvarray::ArrayEstimate;

/// Read-path latency calculator for one cache array.
///
/// # Examples
///
/// ```
/// use reap_core::{ProtectionScheme, ReadPathModel};
/// use reap_ecc::{DecoderCost, EccCode, HsiaoSecDed, Interleaved};
/// use reap_nvarray::{estimate, ArraySpec, MemTech, TechnologyNode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ArraySpec::new(1 << 20, 64, 8)?.with_check_bits(64);
/// let array = estimate(&spec, MemTech::SttMram, TechnologyNode::nm(22)?);
/// let code = Interleaved::new(HsiaoSecDed::new(64)?, 8)?;
/// let model = ReadPathModel::new(array, DecoderCost::estimate(&code, 22));
/// let conv = model.read_access_time(ProtectionScheme::Conventional);
/// let reap = model.read_access_time(ProtectionScheme::Reap);
/// assert!(reap <= conv, "REAP never lengthens the read path");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadPathModel {
    array: ArrayEstimate,
    decoder: DecoderCost,
}

impl ReadPathModel {
    /// Creates the model from an array estimate and a decoder cost.
    pub fn new(array: ArrayEstimate, decoder: DecoderCost) -> Self {
        Self { array, decoder }
    }

    /// The underlying array estimate.
    pub fn array(&self) -> &ArrayEstimate {
        &self.array
    }

    /// Total read access time (s) under `scheme`.
    pub fn read_access_time(&self, scheme: ProtectionScheme) -> f64 {
        let a = &self.array;
        let ecc = self.decoder.latency;
        match scheme {
            ProtectionScheme::Conventional | ProtectionScheme::DisruptiveRestore => {
                // Note: the restore write of DisruptiveRestore happens off
                // the critical path (after data is out), but it occupies
                // the bank (see `bank_busy_time`).
                a.tag_latency.max(a.data_read_latency) + a.mux_latency + ecc
            }
            ProtectionScheme::Reap => a.tag_latency.max(a.data_read_latency + ecc) + a.mux_latency,
            ProtectionScheme::SerialTagFirst => {
                // Tag resolution strictly before the (single-way) data read.
                a.tag_latency + a.data_read_latency + a.mux_latency + ecc
            }
        }
    }

    /// Time (s) the bank stays busy per read — equals the access time
    /// except for disruptive-restore, which appends a restore write.
    pub fn bank_busy_time(&self, scheme: ProtectionScheme) -> f64 {
        let base = self.read_access_time(scheme);
        if scheme.restores_after_read() {
            base + self.array.data_write_latency
        } else {
            base
        }
    }

    /// REAP's access-time change relative to the conventional design
    /// (≤ 0 by construction; §V-B argues "less than or equal").
    pub fn reap_access_time_delta(&self) -> f64 {
        self.read_access_time(ProtectionScheme::Reap)
            - self.read_access_time(ProtectionScheme::Conventional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_ecc::{HsiaoSecDed, Interleaved};
    use reap_nvarray::{estimate, ArraySpec, MemTech, TechnologyNode};

    fn model() -> ReadPathModel {
        let spec = ArraySpec::new(1 << 20, 64, 8).unwrap().with_check_bits(64);
        let array = estimate(&spec, MemTech::SttMram, TechnologyNode::nm(22).unwrap());
        let code = Interleaved::new(HsiaoSecDed::new(64).unwrap(), 8).unwrap();
        ReadPathModel::new(array, DecoderCost::estimate(&code, 22))
    }

    #[test]
    fn reap_never_slower_than_conventional() {
        let m = model();
        assert!(
            m.reap_access_time_delta() <= 1e-15,
            "delta = {}",
            m.reap_access_time_delta()
        );
    }

    #[test]
    fn serial_is_strictly_slower_than_parallel() {
        let m = model();
        let serial = m.read_access_time(ProtectionScheme::SerialTagFirst);
        let parallel = m.read_access_time(ProtectionScheme::Conventional);
        assert!(serial > parallel, "serial {serial} vs parallel {parallel}");
    }

    #[test]
    fn restore_occupies_the_bank_longer() {
        let m = model();
        let conv = m.bank_busy_time(ProtectionScheme::Conventional);
        let restore = m.bank_busy_time(ProtectionScheme::DisruptiveRestore);
        assert!(restore > conv + 5e-9, "restore adds the 10 ns write pulse");
        assert_eq!(
            m.read_access_time(ProtectionScheme::DisruptiveRestore),
            m.read_access_time(ProtectionScheme::Conventional),
            "restore does not lengthen the data-out path"
        );
    }

    #[test]
    fn reap_identity_holds_algebraically() {
        // max(t, d + e) + m <= max(t, d) + m + e for e >= 0.
        let m = model();
        let a = m.array();
        let conv = a.tag_latency.max(a.data_read_latency) + a.mux_latency;
        let reap = m.read_access_time(ProtectionScheme::Reap);
        assert!(reap <= conv + m.decoder.latency + 1e-18);
    }

    #[test]
    fn access_times_are_nanoseconds_scale() {
        let m = model();
        for s in ProtectionScheme::ALL {
            let t = m.read_access_time(s);
            assert!(t > 0.1e-9 && t < 50e-9, "{s}: {t}");
        }
    }
}
