//! HOPE-style design-space exploration over the capture/replay machinery.
//!
//! `reap explore` sweeps a declarative grid of cache geometries
//! (`ways`), scrub periods (`scrub`), ECC strengths (`ecc`) and read
//! currents (`read-current`) and reports the Pareto front over the three
//! axes a designer trades: MTTF (maximize), dynamic energy (minimize)
//! and silicon area (minimize).
//!
//! The grid factors into **behavioural** dimensions (`ways`, `scrub` —
//! they change which exposure events occur, so each combination needs
//! its own trace pass) and **analysis** dimensions (`ecc`,
//! `read-current` — they only change how events are scored). The
//! explorer exploits that split: one capture per (geometry, scrub,
//! workload), served from the [`CaptureStore`] when one is configured,
//! then [`Simulator::replay_batch_mode`] scores *every* analysis point
//! against that capture in a single pass over the events. A grid of
//! `W×S` behavioural combos and `E×R` analysis points costs `W×S` trace
//! passes (zero when the store is warm), never `W×S×E×R`.
//!
//! After the base grid, one **refinement pass** subdivides the
//! continuous dimensions (`read-current`, `scrub`) around each front
//! member: the midpoint toward each grid neighbour becomes a new
//! candidate point. The candidate list is budgeted by
//! [`ExploreConfig::max_points`] (truncation is counted and logged) and
//! derived deterministically from the base rows, so a resumed run
//! refines exactly the same points.
//!
//! Completed jobs stream into the PR 3 `reap-checkpoint/1` journal (via
//! the row-agnostic [`checkpoint::load_with`] /
//! [`CheckpointWriter::record_json_rows`] entry points); every float
//! travels as its IEEE-754 bit pattern, making a killed-and-resumed
//! exploration **bit-identical** to an uninterrupted one — and, because
//! each job depends only on its own inputs, identical at any
//! parallelism.
//!
//! # Grid grammar
//!
//! ```text
//! grid    := clause (' ' clause)*
//! clause  := dim '=' item (',' item)*
//! dim     := 'ways' | 'ecc' | 'read-current' | 'scrub'
//! item    := scalar | start ':' stop ':' step        (inclusive range)
//! scalar  := number with optional k/m suffix (integer dims)
//!            | sec|secded | dec|bch2 | tec|bch3      (ecc dim)
//! ```
//!
//! `read-current` values are multipliers on the default MTJ card's read
//! current (70 µA), constrained to `(0, Ic0/I_read)` so every scaled
//! card stays physical. Omitted dimensions default to the paper point:
//! `ways=8 ecc=sec read-current=1.0 scrub=0`. Values are sorted and
//! deduplicated; listing order never matters.

use crate::capture_store::CaptureStore;
use crate::checkpoint::{self, CheckpointError, CheckpointMeta, CheckpointWriter};
use crate::experiment::{Experiment, ExperimentError};
use crate::scheme::ProtectionScheme;
use crate::simulator::{EccStrength, SimulationConfig, SimulationError, Simulator};
use crate::sweep::pool_map;
use reap_cache::{ConfigError, HierarchyConfig};
use reap_mtj::{MtjParams, ParamsError};
use reap_nvarray::{estimate, ArraySpec, MemTech, TechnologyNode};
use reap_obs::json;
use reap_reliability::{pareto_front_indices, KernelMode, Mttf, ParetoPoint};
use reap_trace::SpecWorkload;
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;

/// The parsed exploration grid: behavioural dimensions (`ways`,
/// `scrub`) × analysis dimensions (`ecc`, `read_current`), each sorted
/// and deduplicated.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreGrid {
    /// L2 associativities to explore (behavioural).
    pub ways: Vec<usize>,
    /// Scrub periods in measured accesses, `0` = off (behavioural).
    pub scrub: Vec<u64>,
    /// ECC strengths to score (analysis).
    pub ecc: Vec<EccStrength>,
    /// Read-current multipliers on the default card (analysis).
    pub read_current: Vec<f64>,
}

impl Default for ExploreGrid {
    /// The paper's single design point.
    fn default() -> Self {
        Self {
            ways: vec![8],
            scrub: vec![0],
            ecc: vec![EccStrength::Sec],
            read_current: vec![1.0],
        }
    }
}

impl ExploreGrid {
    /// Behavioural combinations in canonical `(ways, scrub)` order.
    pub fn behavioural_combos(&self) -> Vec<(usize, u64)> {
        let mut combos = Vec::with_capacity(self.ways.len() * self.scrub.len());
        for &w in &self.ways {
            for &s in &self.scrub {
                combos.push((w, s));
            }
        }
        combos
    }

    /// Analysis points in canonical `(ecc, read_current)` order.
    pub fn analysis_points(&self) -> Vec<(EccStrength, f64)> {
        let mut points = Vec::with_capacity(self.ecc.len() * self.read_current.len());
        for &e in &self.ecc {
            for &r in &self.read_current {
                points.push((e, r));
            }
        }
        points
    }

    /// Total base-grid points.
    pub fn point_count(&self) -> usize {
        self.behavioural_combos().len() * self.analysis_points().len()
    }

    /// The canonical textual form (sorted values, full dimension names)
    /// — what the checkpoint fingerprint hashes, so two spellings of the
    /// same grid share checkpoints.
    pub fn canonical(&self) -> String {
        let join_u = |v: &[usize]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let join_s = |v: &[u64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let ecc = self
            .ecc
            .iter()
            .map(|e| ecc_tag(*e))
            .collect::<Vec<_>>()
            .join(",");
        let rc = self
            .read_current
            .iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "ways={} ecc={ecc} read-current={rc} scrub={}",
            join_u(&self.ways),
            join_s(&self.scrub)
        )
    }
}

fn ecc_tag(ecc: EccStrength) -> &'static str {
    match ecc {
        EccStrength::Sec => "sec",
        EccStrength::Dec => "dec",
        EccStrength::Tec => "tec",
    }
}

/// Largest admissible read-current multiplier: the default card rejects
/// `I_read >= Ic0`, so multipliers live in `(0, Ic0/I_read)`.
fn max_read_scale() -> f64 {
    let card = MtjParams::default();
    card.critical_current() / card.read_current()
}

/// Parses an integer grid scalar with optional `k`/`m` suffix and `_`
/// separators: `10k` → 10 000, `1m` → 1 000 000.
fn parse_count(dim: &str, token: &str) -> Result<u64, ExploreError> {
    let clean = token.replace('_', "");
    let lower = clean.to_ascii_lowercase();
    let (digits, multiplier) = match lower.strip_suffix('k') {
        Some(d) => (d, 1_000u64),
        None => match lower.strip_suffix('m') {
            Some(d) => (d, 1_000_000),
            None => (lower.as_str(), 1),
        },
    };
    let base: u64 = digits.parse().map_err(|_| {
        ExploreError::Grid(format!(
            "dimension `{dim}`: `{token}` is not a count (digits with optional k/m suffix)"
        ))
    })?;
    base.checked_mul(multiplier)
        .ok_or_else(|| ExploreError::Grid(format!("dimension `{dim}`: `{token}` overflows")))
}

/// Expands one integer item (`scalar` or `a:b:s` inclusive range).
fn expand_counts(dim: &str, item: &str, out: &mut Vec<u64>) -> Result<(), ExploreError> {
    let parts: Vec<&str> = item.split(':').collect();
    match parts.as_slice() {
        [one] => out.push(parse_count(dim, one)?),
        [a, b, s] => {
            let (a, b, s) = (
                parse_count(dim, a)?,
                parse_count(dim, b)?,
                parse_count(dim, s)?,
            );
            if s == 0 || a > b {
                return Err(ExploreError::Grid(format!(
                    "dimension `{dim}`: range `{item}` needs start <= stop and step > 0"
                )));
            }
            let mut v = a;
            loop {
                out.push(v);
                v = match v.checked_add(s) {
                    Some(next) if next <= b => next,
                    _ => break,
                };
            }
        }
        _ => {
            return Err(ExploreError::Grid(format!(
                "dimension `{dim}`: `{item}` is neither a scalar nor start:stop:step"
            )))
        }
    }
    Ok(())
}

/// Expands one float item (`scalar` or `a:b:s` inclusive range, the
/// stop included within a small tolerance: `0.7:1.0:0.1` yields four
/// values).
fn expand_floats(dim: &str, item: &str, out: &mut Vec<f64>) -> Result<(), ExploreError> {
    let number = |token: &str| -> Result<f64, ExploreError> {
        token.parse().map_err(|_| {
            ExploreError::Grid(format!("dimension `{dim}`: `{token}` is not a number"))
        })
    };
    let parts: Vec<&str> = item.split(':').collect();
    match parts.as_slice() {
        [one] => out.push(number(one)?),
        [a, b, s] => {
            let (a, b, s) = (number(a)?, number(b)?, number(s)?);
            if !(a.is_finite() && b.is_finite() && s > 0.0 && s.is_finite() && a <= b) {
                return Err(ExploreError::Grid(format!(
                    "dimension `{dim}`: range `{item}` needs finite start <= stop and step > 0"
                )));
            }
            // Index-based expansion: `start + i*step` accumulates no
            // drift, and the relative tolerance keeps `0.7:1.0:0.1`
            // from dropping its endpoint to float rounding.
            let n = ((b - a) / s + 1e-6).floor() as usize + 1;
            for i in 0..n {
                out.push(a + i as f64 * s);
            }
        }
        _ => {
            return Err(ExploreError::Grid(format!(
                "dimension `{dim}`: `{item}` is neither a scalar nor start:stop:step"
            )))
        }
    }
    Ok(())
}

/// Parses the `--grid` string into an [`ExploreGrid`].
///
/// See the module docs for the grammar. Unlisted dimensions default to
/// the paper point; values are sorted and deduplicated.
///
/// # Errors
///
/// Returns [`ExploreError::Grid`] naming the offending clause: unknown
/// or duplicate dimensions, malformed items, unknown ECC tokens,
/// non-positive associativities, or read-current multipliers outside
/// the physical `(0, Ic0/I_read)` window.
pub fn parse_grid(grid: &str) -> Result<ExploreGrid, ExploreError> {
    let mut out = ExploreGrid::default();
    let mut seen: Vec<&str> = Vec::new();
    for clause in grid.split_whitespace() {
        let Some((dim, values)) = clause.split_once('=') else {
            return Err(ExploreError::Grid(format!(
                "clause `{clause}` is not of the form dim=values"
            )));
        };
        if seen.contains(&dim) {
            return Err(ExploreError::Grid(format!(
                "dimension `{dim}` given more than once"
            )));
        }
        if values.is_empty() {
            return Err(ExploreError::Grid(format!("dimension `{dim}` is empty")));
        }
        match dim {
            "ways" => {
                let mut v = Vec::new();
                for item in values.split(',') {
                    expand_counts(dim, item, &mut v)?;
                }
                if v.contains(&0) {
                    return Err(ExploreError::Grid(
                        "dimension `ways`: associativity must be positive".to_owned(),
                    ));
                }
                out.ways = v.iter().map(|&w| w as usize).collect();
                out.ways.sort_unstable();
                out.ways.dedup();
            }
            "scrub" => {
                let mut v = Vec::new();
                for item in values.split(',') {
                    expand_counts(dim, item, &mut v)?;
                }
                v.sort_unstable();
                v.dedup();
                out.scrub = v;
            }
            "ecc" => {
                let mut v = Vec::new();
                for item in values.split(',') {
                    v.push(match item.to_ascii_lowercase().as_str() {
                        "sec" | "secded" => EccStrength::Sec,
                        "dec" | "bch2" => EccStrength::Dec,
                        "tec" | "bch3" => EccStrength::Tec,
                        other => {
                            return Err(ExploreError::Grid(format!(
                                "dimension `ecc`: unknown strength `{other}` \
                                 (sec/secded, dec/bch2, tec/bch3)"
                            )))
                        }
                    });
                }
                v.sort_unstable_by_key(|e| e.t());
                v.dedup();
                out.ecc = v;
            }
            "read-current" => {
                let mut v = Vec::new();
                for item in values.split(',') {
                    expand_floats(dim, item, &mut v)?;
                }
                let limit = max_read_scale();
                for &scale in &v {
                    if !(scale > 0.0 && scale < limit) {
                        return Err(ExploreError::Grid(format!(
                            "dimension `read-current`: multiplier {scale} is outside \
                             (0, {limit:.4}) — values scale the default card's 70 µA \
                             read current and must stay below Ic0"
                        )));
                    }
                }
                v.sort_unstable_by(|a, b| a.total_cmp(b));
                v.dedup_by(|a, b| a.to_bits() == b.to_bits());
                out.read_current = v;
            }
            other => {
                return Err(ExploreError::Grid(format!(
                    "unknown dimension `{other}` (ways, ecc, read-current, scrub)"
                )))
            }
        }
        seen.push(dim);
    }
    Ok(out)
}

/// Full configuration of one exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The design-space grid.
    pub grid: ExploreGrid,
    /// Workloads folded into each point's score.
    pub workloads: Vec<SpecWorkload>,
    /// Measured accesses per workload (warm-up is a tenth of it).
    pub accesses: u64,
    /// Trace seed.
    pub seed: u64,
    /// Pool width.
    pub parallelism: usize,
    /// Hard budget on scored points (base grid + refinement). The base
    /// grid must fit; refinement candidates beyond the budget are
    /// dropped (deterministically, and counted).
    pub max_points: usize,
    /// Run the refinement pass around the base front.
    pub refine: bool,
    /// Checkpoint journal; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Skip jobs already present in the checkpoint.
    pub resume: bool,
    /// Persistent exposure-capture cache; `None` recaptures every
    /// behavioural combo.
    pub capture_store: Option<CaptureStore>,
}

/// The default workload fold: three profiles with distinct L2 behaviour
/// (read-hit-heavy, miss-heavy, streaming).
pub const DEFAULT_WORKLOADS: [SpecWorkload; 3] = [
    SpecWorkload::Hmmer,
    SpecWorkload::Mcf,
    SpecWorkload::Libquantum,
];

impl ExploreConfig {
    /// A plain exploration of `grid` with the default workload fold, a
    /// 4096-point budget, refinement on and no checkpoint.
    pub fn new(grid: ExploreGrid, accesses: u64, seed: u64, parallelism: usize) -> Self {
        Self {
            grid,
            workloads: DEFAULT_WORKLOADS.to_vec(),
            accesses,
            seed,
            parallelism,
            max_points: 4096,
            refine: true,
            checkpoint: None,
            resume: false,
            capture_store: None,
        }
    }
}

/// One scored design point, folded across the configured workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreRow {
    /// L2 associativity.
    pub ways: usize,
    /// Scrub period (0 = off).
    pub scrub: u64,
    /// ECC strength.
    pub ecc: EccStrength,
    /// Read-current multiplier on the default card.
    pub read_scale: f64,
    /// Combined MTTF in seconds: Σ duration / Σ expected REAP failures
    /// across workloads (`+inf` when no failures are expected at all).
    pub mttf_s: f64,
    /// Total REAP dynamic energy across workloads (J).
    pub energy_j: f64,
    /// L2 silicon area at this geometry and check-bit count (mm²).
    pub area_mm2: f64,
    /// Whether the point came from the refinement pass.
    pub refined: bool,
}

impl ExploreRow {
    /// The three Pareto axes of this row.
    pub fn pareto_point(&self) -> ParetoPoint {
        ParetoPoint::new(
            Mttf::from_seconds(self.mttf_s),
            self.energy_j,
            self.area_mm2,
        )
    }
}

/// Serializes one row for the checkpoint journal — every float as its
/// IEEE-754 bit pattern in hex, integers as decimal strings (the
/// workspace JSON parser's numbers are f64), mirroring
/// [`checkpoint::row_to_json`].
pub fn explore_row_to_json(r: &ExploreRow) -> String {
    format!(
        "{{\"ways\":\"{}\",\"scrub\":\"{}\",\"ecc\":\"{}\",\"read_scale\":\"{:016x}\",\"mttf_s\":\"{:016x}\",\"energy_j\":\"{:016x}\",\"area_mm2\":\"{:016x}\",\"refined\":\"{}\"}}",
        r.ways,
        r.scrub,
        ecc_tag(r.ecc),
        r.read_scale.to_bits(),
        r.mttf_s.to_bits(),
        r.energy_j.to_bits(),
        r.area_mm2.to_bits(),
        u8::from(r.refined),
    )
}

/// Parses a row object produced by [`explore_row_to_json`].
///
/// # Errors
///
/// Returns a human-readable message naming the missing or malformed
/// field.
pub fn explore_row_from_json(row: &json::Value) -> Result<ExploreRow, String> {
    let text = |key: &str| {
        row.get(key)
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("row missing \"{key}\""))
    };
    let bits = |key: &str| {
        text(key).and_then(|s| {
            u64::from_str_radix(s, 16)
                .map(f64::from_bits)
                .map_err(|_| format!("row field \"{key}\" is not hex bits"))
        })
    };
    let int = |key: &str| {
        text(key).and_then(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("row field \"{key}\" is not an integer"))
        })
    };
    let ecc = match text("ecc")? {
        "sec" => EccStrength::Sec,
        "dec" => EccStrength::Dec,
        "tec" => EccStrength::Tec,
        other => return Err(format!("unknown ecc tag \"{other}\"")),
    };
    Ok(ExploreRow {
        ways: int("ways")? as usize,
        scrub: int("scrub")?,
        ecc,
        read_scale: bits("read_scale")?,
        mttf_s: bits("mttf_s")?,
        energy_j: bits("energy_j")?,
        area_mm2: bits("area_mm2")?,
        refined: int("refined")? != 0,
    })
}

/// The exploration's aggregate result.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Every scored row in canonical `(ways, scrub, ecc, read_scale)`
    /// order — base and refined interleaved by value.
    pub rows: Vec<ExploreRow>,
    /// Indices into `rows` of the Pareto front (strictly increasing).
    pub front: Vec<usize>,
    /// Points scored from the base grid.
    pub base_points: usize,
    /// Points added by the refinement pass.
    pub refined_points: usize,
    /// Refinement candidates dropped by the `max_points` budget.
    pub truncated: usize,
    /// Jobs served from the checkpoint instead of being recomputed.
    pub resumed: usize,
    /// Human-readable checkpoint repair note (truncated tail dropped).
    pub checkpoint_warning: Option<String>,
}

/// Exploration-level failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExploreError {
    /// The grid string or point budget was rejected.
    Grid(String),
    /// A grid associativity does not form a valid L2 geometry.
    Geometry(ConfigError),
    /// A scaled read current was rejected by the MTJ card.
    Mtj(ParamsError),
    /// A simulator could not be built or a replay failed.
    Simulation(SimulationError),
    /// A capture pass failed.
    Experiment(ExperimentError),
    /// The checkpoint could not be created, read or trusted.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Grid(message) => write!(f, "invalid grid: {message}"),
            ExploreError::Geometry(e) => write!(f, "invalid geometry: {e}"),
            ExploreError::Mtj(e) => write!(f, "invalid mtj point: {e}"),
            ExploreError::Simulation(e) => write!(f, "{e}"),
            ExploreError::Experiment(e) => write!(f, "{e}"),
            ExploreError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Grid(_) => None,
            ExploreError::Geometry(e) => Some(e),
            ExploreError::Mtj(e) => Some(e),
            ExploreError::Simulation(e) => Some(e),
            ExploreError::Experiment(e) => Some(e),
            ExploreError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ExploreError {
    fn from(e: ConfigError) -> Self {
        ExploreError::Geometry(e)
    }
}

impl From<ParamsError> for ExploreError {
    fn from(e: ParamsError) -> Self {
        ExploreError::Mtj(e)
    }
}

impl From<SimulationError> for ExploreError {
    fn from(e: SimulationError) -> Self {
        ExploreError::Simulation(e)
    }
}

impl From<ExperimentError> for ExploreError {
    fn from(e: ExperimentError) -> Self {
        ExploreError::Experiment(e)
    }
}

impl From<CheckpointError> for ExploreError {
    fn from(e: CheckpointError) -> Self {
        ExploreError::Checkpoint(e)
    }
}

/// One behavioural job: a `(ways, scrub)` combo scored at a set of
/// analysis points.
#[derive(Debug, Clone)]
struct ComboJob {
    ways: usize,
    scrub: u64,
    points: Vec<(EccStrength, f64)>,
    refined: bool,
}

impl ComboJob {
    fn key(&self) -> String {
        if self.refined {
            format!("r/w{}/s{}", self.ways, self.scrub)
        } else {
            format!("w{}/s{}", self.ways, self.scrub)
        }
    }
}

/// L2 area at `hierarchy`'s geometry with `ecc`'s check bits, in mm².
fn area_mm2_for(
    hierarchy: &HierarchyConfig,
    ecc: EccStrength,
    tech_nm: u32,
) -> Result<f64, ExploreError> {
    let check_bits = ecc
        .build_code(hierarchy.l2.line_bits())
        .map_err(SimulationError::from)?
        .check_bits();
    let spec = ArraySpec::new(
        hierarchy.l2.size_bytes(),
        hierarchy.l2.block_bytes(),
        hierarchy.l2.associativity(),
    )
    .map_err(SimulationError::from)?
    .with_check_bits(check_bits);
    let node = TechnologyNode::nm(tech_nm).map_err(SimulationError::from)?;
    Ok(estimate(&spec, MemTech::SttMram, node).area_mm2())
}

/// Scores one behavioural combo at every analysis point: one capture
/// per workload (store-served when possible), one batched replay per
/// capture, workload sums folded into per-point rows.
fn run_combo(
    job: &ComboJob,
    accesses: u64,
    seed: u64,
    workloads: &[SpecWorkload],
    store: Option<&CaptureStore>,
) -> Result<Vec<ExploreRow>, ExploreError> {
    let hierarchy = HierarchyConfig::paper_with_l2_ways(job.ways)?;
    let template = SimulationConfig::default();
    let base_read = MtjParams::default().read_current();
    let mut sims = Vec::with_capacity(job.points.len());
    for &(ecc, scale) in &job.points {
        let config = SimulationConfig {
            hierarchy: hierarchy.clone(),
            ecc,
            mtj: MtjParams::default().with_read_current(scale * base_read)?,
            warmup_accesses: accesses / 10,
            measure_accesses: accesses,
            scrub_period: job.scrub,
            ..template.clone()
        };
        sims.push(Simulator::new(config)?);
    }

    let mut fail = vec![0.0f64; job.points.len()];
    let mut energy = vec![0.0f64; job.points.len()];
    let mut duration = 0.0f64;
    for &workload in workloads {
        let experiment = Experiment::paper_hierarchy()
            .hierarchy(hierarchy.clone())
            .scrub(job.scrub)
            .accesses(accesses)
            .seed(seed)
            .workload(workload);
        let capture = experiment.capture_with(store)?;
        let reports = match Simulator::replay_batch_mode(&sims, &capture, KernelMode::Exact) {
            // Same defect handling as Experiment::run_with: a
            // store-backed entry can rot between validation and the
            // streamed replay — recapture rather than fail the job.
            Err(SimulationError::CaptureStream(defect)) => {
                eprintln!("warning: streamed capture failed mid-replay ({defect}); recapturing");
                let sim = Simulator::new(experiment.config().clone())?;
                let fresh = sim.capture(workload.stream(seed))?;
                Simulator::replay_batch_mode(&sims, &fresh, KernelMode::Exact)?
            }
            other => other?,
        };
        duration += reports[0].duration_seconds();
        for (i, report) in reports.iter().enumerate() {
            fail[i] += report.expected_failures(ProtectionScheme::Reap);
            energy[i] += report.energy(ProtectionScheme::Reap).total();
        }
    }

    job.points
        .iter()
        .enumerate()
        .map(|(i, &(ecc, scale))| {
            Ok(ExploreRow {
                ways: job.ways,
                scrub: job.scrub,
                ecc,
                read_scale: scale,
                // Σ duration / Σ failures: +inf when nothing is expected
                // to fail — the total-ordered Pareto comparison handles
                // it (see reap_reliability::Mttf::total_cmp).
                mttf_s: duration / fail[i],
                energy_j: energy[i],
                area_mm2: area_mm2_for(&hierarchy, ecc, template.tech_nm)?,
                refined: job.refined,
            })
        })
        .collect()
}

/// Indices of the Pareto front of `rows` (MTTF ↑, energy ↓, area ↓).
pub fn front_of(rows: &[ExploreRow]) -> Vec<usize> {
    let points: Vec<ParetoPoint> = rows.iter().map(ExploreRow::pareto_point).collect();
    pareto_front_indices(&points)
}

/// Derives the refinement candidates around `front` members: for each,
/// the midpoint toward each grid neighbour in the `read-current` and
/// `scrub` dimensions. Deterministic: sorted canonically, deduplicated,
/// and (by construction — midpoints of *adjacent* sorted grid values)
/// never colliding with base-grid points.
fn refinement_candidates(
    rows: &[ExploreRow],
    front: &[usize],
    grid: &ExploreGrid,
) -> Vec<(usize, u64, EccStrength, f64)> {
    let mut candidates = Vec::new();
    for &i in front {
        let row = &rows[i];
        if let Some(at) = grid
            .read_current
            .iter()
            .position(|r| r.to_bits() == row.read_scale.to_bits())
        {
            let mut push_mid = |a: f64, b: f64| {
                let mid = (a + b) / 2.0;
                if mid > a && mid < b {
                    candidates.push((row.ways, row.scrub, row.ecc, mid));
                }
            };
            if at > 0 {
                push_mid(grid.read_current[at - 1], grid.read_current[at]);
            }
            if at + 1 < grid.read_current.len() {
                push_mid(grid.read_current[at], grid.read_current[at + 1]);
            }
        }
        if let Some(at) = grid.scrub.iter().position(|&s| s == row.scrub) {
            let mut push_mid = |a: u64, b: u64| {
                let mid = a + (b - a) / 2;
                if mid > a && mid < b {
                    candidates.push((row.ways, mid, row.ecc, row.read_scale));
                }
            };
            if at > 0 {
                push_mid(grid.scrub[at - 1], grid.scrub[at]);
            }
            if at + 1 < grid.scrub.len() {
                push_mid(grid.scrub[at], grid.scrub[at + 1]);
            }
        }
    }
    candidates.sort_unstable_by(|a, b| {
        (a.0, a.1, a.2.t())
            .cmp(&(b.0, b.1, b.2.t()))
            .then(a.3.total_cmp(&b.3))
    });
    candidates
        .dedup_by(|a, b| a.0 == b.0 && a.1 == b.1 && a.2 == b.2 && a.3.to_bits() == b.3.to_bits());
    candidates
}

/// Runs the full exploration: base grid, refinement pass, final front.
///
/// Deterministic by construction: each job depends only on its own
/// inputs (results are identical at any `parallelism`), rows checkpoint
/// bit-exactly, and the refinement set is a pure function of the base
/// rows — so a killed-and-resumed exploration reproduces an
/// uninterrupted one bit for bit.
///
/// # Errors
///
/// Returns [`ExploreError`] when the grid exceeds the point budget, a
/// design point cannot be instantiated, a capture or replay fails, or
/// the checkpoint file cannot be created, parsed, or belongs to a
/// different exploration.
pub fn explore(config: &ExploreConfig) -> Result<ExploreOutcome, ExploreError> {
    let _span = reap_obs::span("explore");
    let grid = &config.grid;
    let points = grid.analysis_points();
    let combos = grid.behavioural_combos();
    let base_points = combos.len() * points.len();
    if base_points > config.max_points {
        return Err(ExploreError::Grid(format!(
            "grid has {base_points} points, over the --max-points budget of {}",
            config.max_points
        )));
    }
    if config.workloads.is_empty() {
        return Err(ExploreError::Grid("no workloads to fold".to_owned()));
    }

    // Checkpoint identity: the fingerprint covers the canonical grid,
    // the workload fold and every base job key, so a checkpoint never
    // resumes into a different exploration.
    let workload_names: Vec<&str> = config.workloads.iter().map(|w| w.name()).collect();
    let mode_tag = format!(
        "explore {} [{}]",
        grid.canonical(),
        workload_names.join(",")
    );
    let base_jobs: Vec<ComboJob> = combos
        .iter()
        .map(|&(ways, scrub)| ComboJob {
            ways,
            scrub,
            points: points.clone(),
            refined: false,
        })
        .collect();
    let keys: Vec<String> = base_jobs.iter().map(ComboJob::key).collect();
    let meta = CheckpointMeta::new(&mode_tag, config.accesses, config.seed, &keys);

    let mut completed: HashMap<String, Vec<ExploreRow>> = HashMap::new();
    let mut checkpoint_warning = None;
    let mut writer = None;
    if let Some(path) = &config.checkpoint {
        if config.resume && path.exists() {
            let loaded = checkpoint::load_with(path, explore_row_from_json)?;
            if loaded.meta.fingerprint != meta.fingerprint {
                return Err(CheckpointError::FingerprintMismatch {
                    expected: meta.fingerprint,
                    found: loaded.meta.fingerprint,
                }
                .into());
            }
            if let Some(offset) = loaded.truncated_tail {
                reap_fault::truncate_file(path, offset as u64).map_err(|source| {
                    CheckpointError::Io {
                        path: path.clone(),
                        source,
                    }
                })?;
                checkpoint_warning = Some(format!(
                    "checkpoint {} had a truncated trailing line at byte {offset} \
                     (crash-interrupted write); dropped it",
                    path.display()
                ));
            }
            completed = loaded.completed.into_iter().collect();
            writer = Some(CheckpointWriter::append_to(path)?);
        } else {
            writer = Some(CheckpointWriter::create(path, &meta)?);
        }
    }
    let writer = Mutex::new(writer);
    let mut resumed = 0usize;

    // Runs `jobs` (skipping checkpointed ones) and returns each job's
    // rows in input order, streaming finished jobs into the journal.
    let run_phase = |jobs: &[ComboJob],
                     pool: &str,
                     resumed: &mut usize|
     -> Result<Vec<Vec<ExploreRow>>, ExploreError> {
        let pending: Vec<ComboJob> = jobs
            .iter()
            .filter(|j| !completed.contains_key(&j.key()))
            .cloned()
            .collect();
        *resumed += jobs.len() - pending.len();
        let (accesses, seed) = (config.accesses, config.seed);
        let workloads = &config.workloads;
        let store = config.capture_store.clone();
        let results = pool_map(pending, config.parallelism.max(1), pool, |job| {
            let rows = run_combo(&job, accesses, seed, workloads, store.as_ref())?;
            if let Some(w) = writer.lock().expect("writer lock").as_mut() {
                let encoded: Vec<String> = rows.iter().map(explore_row_to_json).collect();
                // A journal write failure must not kill the run; the
                // rows are still in memory. Surface it on stderr.
                if let Err(e) = w.record_json_rows(&job.key(), &encoded) {
                    eprintln!("warning: {e}");
                }
            }
            Ok::<(String, Vec<ExploreRow>), ExploreError>((job.key(), rows))
        });
        let mut fresh: HashMap<String, Vec<ExploreRow>> = HashMap::new();
        for result in results {
            let (key, rows) = result?;
            fresh.insert(key, rows);
        }
        Ok(jobs
            .iter()
            .map(|j| {
                let key = j.key();
                completed
                    .get(&key)
                    .cloned()
                    .or_else(|| fresh.remove(&key))
                    .expect("every job is checkpointed or freshly computed")
            })
            .collect())
    };

    let mut rows: Vec<ExploreRow> = run_phase(&base_jobs, "explore_grid", &mut resumed)?
        .into_iter()
        .flatten()
        .collect();

    // Refinement: subdivide the continuous dimensions around the base
    // front, within the point budget.
    let mut refined_points = 0usize;
    let mut truncated = 0usize;
    if config.refine {
        let front = front_of(&rows);
        let mut candidates = refinement_candidates(&rows, &front, grid);
        let allowed = config.max_points - base_points;
        if candidates.len() > allowed {
            truncated = candidates.len() - allowed;
            candidates.truncate(allowed);
            eprintln!(
                "note: refinement truncated to the --max-points budget \
                 ({truncated} candidate points dropped)"
            );
        }
        refined_points = candidates.len();
        let mut by_combo: BTreeMap<(usize, u64), Vec<(EccStrength, f64)>> = BTreeMap::new();
        for (ways, scrub, ecc, scale) in candidates {
            by_combo
                .entry((ways, scrub))
                .or_default()
                .push((ecc, scale));
        }
        let refine_jobs: Vec<ComboJob> = by_combo
            .into_iter()
            .map(|((ways, scrub), mut pts)| {
                pts.sort_unstable_by(|a, b| a.0.t().cmp(&b.0.t()).then(a.1.total_cmp(&b.1)));
                ComboJob {
                    ways,
                    scrub,
                    points: pts,
                    refined: true,
                }
            })
            .collect();
        if !refine_jobs.is_empty() {
            rows.extend(
                run_phase(&refine_jobs, "explore_refine", &mut resumed)?
                    .into_iter()
                    .flatten(),
            );
        }
    }

    rows.sort_unstable_by(|a, b| {
        (a.ways, a.scrub, a.ecc.t())
            .cmp(&(b.ways, b.scrub, b.ecc.t()))
            .then(a.read_scale.total_cmp(&b.read_scale))
    });
    let front = front_of(&rows);
    Ok(ExploreOutcome {
        rows,
        front,
        base_points,
        refined_points,
        truncated,
        resumed,
        checkpoint_warning,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_grid_parses_with_aliases_suffixes_and_ranges() {
        let grid = parse_grid(
            "ways=4,8,16 ecc=sec,secded,bch2,bch3 read-current=0.7:1.0:0.1 scrub=0,10k,100k",
        )
        .unwrap();
        assert_eq!(grid.ways, vec![4, 8, 16]);
        // secded aliases sec; bch2/bch3 alias dec/tec.
        assert_eq!(
            grid.ecc,
            vec![EccStrength::Sec, EccStrength::Dec, EccStrength::Tec]
        );
        assert_eq!(grid.read_current.len(), 4);
        assert!((grid.read_current[0] - 0.7).abs() < 1e-12);
        assert!((grid.read_current[3] - 1.0).abs() < 1e-12);
        assert_eq!(grid.scrub, vec![0, 10_000, 100_000]);
        assert_eq!(grid.point_count(), 3 * 3 * 3 * 4);
    }

    #[test]
    fn omitted_dimensions_default_to_the_paper_point() {
        let grid = parse_grid("ecc=dec").unwrap();
        assert_eq!(grid.ways, vec![8]);
        assert_eq!(grid.scrub, vec![0]);
        assert_eq!(grid.read_current, vec![1.0]);
        assert_eq!(grid.ecc, vec![EccStrength::Dec]);
        assert_eq!(parse_grid("").unwrap(), ExploreGrid::default());
    }

    #[test]
    fn grid_errors_are_descriptive() {
        for (bad, needle) in [
            ("volts=3", "unknown dimension"),
            ("ways", "dim=values"),
            ("ways=4 ways=8", "more than once"),
            ("ecc=", "is empty"),
            ("ecc=sec,parity", "unknown strength"),
            ("ways=0", "must be positive"),
            ("ways=abc", "not a count"),
            ("scrub=1:0:1", "start <= stop"),
            ("read-current=0.9:0.7:0.1", "start <= stop"),
            ("read-current=2.0", "outside"),
            ("read-current=0", "outside"),
            ("read-current=0.5:0.9", "start:stop:step"),
        ] {
            let err = parse_grid(bad).unwrap_err();
            assert!(err.to_string().contains(needle), "{bad}: {err}");
        }
    }

    #[test]
    fn canonical_form_is_order_insensitive() {
        let a = parse_grid("scrub=10k,0 ways=8,4 ecc=tec,sec").unwrap();
        let b = parse_grid("ways=4,8 ecc=sec,bch3 scrub=0,10000").unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(
            a.canonical(),
            "ways=4,8 ecc=sec,tec read-current=1 scrub=0,10000"
        );
    }

    #[test]
    fn row_codec_round_trips_bit_exactly() {
        for row in [
            ExploreRow {
                ways: 16,
                scrub: 10_000,
                ecc: EccStrength::Dec,
                read_scale: 0.85,
                mttf_s: 1.234e12,
                energy_j: 3.2e-4,
                area_mm2: 0.731,
                refined: true,
            },
            ExploreRow {
                ways: 8,
                scrub: 0,
                ecc: EccStrength::Sec,
                read_scale: 1.0,
                mttf_s: f64::INFINITY,
                energy_j: 0.0,
                area_mm2: f64::MIN_POSITIVE,
                refined: false,
            },
        ] {
            let encoded = explore_row_to_json(&row);
            let parsed = explore_row_from_json(&json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(parsed.ways, row.ways);
            assert_eq!(parsed.scrub, row.scrub);
            assert_eq!(parsed.ecc, row.ecc);
            assert_eq!(parsed.read_scale.to_bits(), row.read_scale.to_bits());
            assert_eq!(parsed.mttf_s.to_bits(), row.mttf_s.to_bits());
            assert_eq!(parsed.energy_j.to_bits(), row.energy_j.to_bits());
            assert_eq!(parsed.area_mm2.to_bits(), row.area_mm2.to_bits());
            assert_eq!(parsed.refined, row.refined);
        }
    }

    fn quick(grid: &str) -> ExploreConfig {
        let mut config = ExploreConfig::new(parse_grid(grid).unwrap(), 4_000, 11, 2);
        config.workloads = vec![SpecWorkload::Hmmer, SpecWorkload::Mcf];
        config
    }

    type RowBits = (usize, u64, usize, u64, u64, u64, u64, bool);

    fn row_bits(rows: &[ExploreRow]) -> Vec<RowBits> {
        rows.iter()
            .map(|r| {
                (
                    r.ways,
                    r.scrub,
                    r.ecc.t(),
                    r.read_scale.to_bits(),
                    r.mttf_s.to_bits(),
                    r.energy_j.to_bits(),
                    r.area_mm2.to_bits(),
                    r.refined,
                )
            })
            .collect()
    }

    #[test]
    fn tiny_exploration_scores_the_grid_and_refines_the_front() {
        let outcome = explore(&quick("ecc=sec,dec read-current=0.8,1.0")).unwrap();
        assert_eq!(outcome.base_points, 4);
        // Every front member has one read-current neighbour pair to
        // subdivide, so refinement must add at least one point.
        assert!(outcome.refined_points > 0, "{outcome:?}");
        assert_eq!(
            outcome.rows.len(),
            outcome.base_points + outcome.refined_points
        );
        assert_eq!(outcome.truncated, 0);
        assert!(!outcome.front.is_empty());
        // Rows are in canonical order and the front is non-dominated.
        let bits = row_bits(&outcome.rows);
        let mut sorted = bits.clone();
        sorted.sort_by(|a, b| {
            (a.0, a.1, a.2)
                .cmp(&(b.0, b.1, b.2))
                .then(f64::from_bits(a.3).total_cmp(&f64::from_bits(b.3)))
        });
        assert_eq!(bits, sorted);
        for &i in &outcome.front {
            let p = outcome.rows[i].pareto_point();
            assert!(!outcome
                .rows
                .iter()
                .any(|other| other.pareto_point().dominates(&p)));
        }
        // Stronger ECC trades area for reliability: at equal geometry
        // and current, DEC rows carry more area than SEC rows.
        let sec = outcome
            .rows
            .iter()
            .find(|r| r.ecc == EccStrength::Sec)
            .unwrap();
        let dec = outcome
            .rows
            .iter()
            .find(|r| r.ecc == EccStrength::Dec)
            .unwrap();
        assert!(dec.area_mm2 > sec.area_mm2);
    }

    #[test]
    fn results_are_identical_at_any_parallelism() {
        let mut wide = quick("ways=4,8 ecc=sec,dec read-current=0.8,1.0");
        wide.parallelism = 4;
        let mut narrow = wide.clone();
        narrow.parallelism = 1;
        let a = explore(&wide).unwrap();
        let b = explore(&narrow).unwrap();
        assert_eq!(row_bits(&a.rows), row_bits(&b.rows));
        assert_eq!(a.front, b.front);
    }

    #[test]
    fn a_budget_too_small_for_the_grid_is_refused() {
        let mut config = quick("ecc=sec,dec read-current=0.8,1.0");
        config.max_points = 3;
        let err = explore(&config).unwrap_err();
        assert!(err.to_string().contains("--max-points"), "{err}");
    }

    #[test]
    fn an_exhausted_budget_skips_refinement_and_counts_the_truncation() {
        let mut config = quick("ecc=sec,dec read-current=0.8,1.0");
        config.max_points = 4; // exactly the base grid
        let outcome = explore(&config).unwrap();
        assert_eq!(outcome.refined_points, 0);
        assert!(outcome.truncated > 0);
        assert_eq!(outcome.rows.len(), 4);
    }

    #[test]
    fn checkpointed_rerun_resumes_every_job_bit_identically() {
        let dir = std::env::temp_dir().join(format!("reap-explore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("explore-resume.jsonl");
        std::fs::remove_file(&path).ok();

        let fresh = explore(&quick("ecc=sec,dec read-current=0.8,1.0 scrub=0,2k")).unwrap();

        let mut config = quick("ecc=sec,dec read-current=0.8,1.0 scrub=0,2k");
        config.checkpoint = Some(path.clone());
        let cold = explore(&config).unwrap();
        assert_eq!(cold.resumed, 0);
        assert_eq!(row_bits(&fresh.rows), row_bits(&cold.rows));

        config.resume = true;
        let resumed = explore(&config).unwrap();
        assert!(resumed.resumed > 0);
        assert_eq!(row_bits(&fresh.rows), row_bits(&resumed.rows));
        assert_eq!(fresh.front, resumed.front);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn a_foreign_checkpoint_is_refused() {
        let dir = std::env::temp_dir().join(format!("reap-explore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("explore-foreign.jsonl");
        std::fs::remove_file(&path).ok();

        let mut config = quick("ecc=sec read-current=0.8,1.0");
        config.checkpoint = Some(path.clone());
        explore(&config).unwrap();

        config.seed = 999;
        config.resume = true;
        let err = explore(&config).unwrap_err();
        assert!(
            matches!(
                err,
                ExploreError::Checkpoint(CheckpointError::FingerprintMismatch { .. })
            ),
            "{err}"
        );
        std::fs::remove_file(path).ok();
    }
}
