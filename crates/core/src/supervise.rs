//! Supervised parallel execution: panic isolation, retries, deadlines.
//!
//! [`crate::sweep::pool_map`] is the fast path for trusted jobs — a worker
//! panic aborts the whole batch. Campaigns that run for hours over many
//! configurations need the opposite contract: one poisoned configuration
//! must degrade gracefully. [`pool_map_supervised`] provides it:
//!
//! * every job attempt runs under `catch_unwind`, so a panic becomes a
//!   [`JobError::Panicked`] for that job only — and the default panic
//!   hook is silenced for supervised attempts, so a retried fault does
//!   not dump a backtrace per attempt;
//! * failed attempts are retried up to [`SupervisorConfig::max_retries`]
//!   times under a [`RetryBackoff`] policy — deterministic linear by
//!   default, optionally exponential with a cap and a *deterministic*
//!   per-(seed, job, attempt) jitter draw, so reruns still reproduce;
//! * an optional per-job [`SupervisorConfig::deadline`] times out stuck
//!   work (the attempt thread is abandoned, not killed — see
//!   [`pool_map_supervised`] for the leak caveat);
//! * a [`reap_fault::FaultPlan`] can be armed to inject panics and delays
//!   *inside* the supervision boundary, proving the recovery paths;
//! * the batch returns `Vec<JobOutcome<R>>` in input order, and an
//!   `on_result` callback observes completions as they happen (checkpoint
//!   writers hook in here) and can cancel the remainder of the batch.
//!
//! Failure, retry and timeout counts publish through `reap-obs` as
//! `{pool}.supervised.{ok,failed,retries,panics,timeouts}` counters when
//! telemetry is enabled.

use std::cell::Cell;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once};
use std::time::Duration;

use reap_fault::FaultPlan;

thread_local! {
    /// True while this thread is inside a supervised attempt.
    static IN_SUPERVISED_ATTEMPT: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent for panics
/// raised inside supervised attempts. Those panics are caught by
/// `catch_unwind` and reported as [`JobError::Panicked`] with the payload
/// message, so the default hook's backtrace dump would only add noise for
/// every retried attempt. Panics on any other thread keep the previous
/// hook's behaviour.
fn silence_supervised_panics() {
    QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_SUPERVISED_ATTEMPT.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Marks the current thread as inside a supervised attempt for the guard's
/// lifetime; the flag is restored even when the attempt unwinds.
struct AttemptMarker {
    prev: bool,
}

impl AttemptMarker {
    fn enter() -> Self {
        Self {
            prev: IN_SUPERVISED_ATTEMPT.with(|c| c.replace(true)),
        }
    }
}

impl Drop for AttemptMarker {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_SUPERVISED_ATTEMPT.with(|c| c.set(prev));
    }
}

/// Retry backoff policy: how long attempt `k` waits before attempt `k+1`.
///
/// The default (`factor == 1.0`, no jitter) is the historical
/// deterministic linear schedule — attempt `k` sleeps `base * k`. A
/// `factor > 1.0` switches to capped exponential growth
/// (`base * factor^(k-1)`, clamped to `cap`), and `jitter` multiplies
/// the wait by a value in `[0.5, 1.5)` drawn deterministically from
/// `(seed, job, attempt)` via [`reap_fault::uniform`] — spreading
/// thundering-herd retries without sacrificing reproducibility.
///
/// Parsed from the CLI spec `ms[:exp[:cap-ms]]` (e.g. `250`, `100:2`,
/// `100:2:5000`); the exponential forms enable jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBackoff {
    /// Wait before the first retry.
    pub base: Duration,
    /// Growth factor per attempt; `<= 1.0` selects the linear schedule.
    pub factor: f64,
    /// Upper bound on any single wait (applied before jitter).
    pub cap: Duration,
    /// Scale each wait by a deterministic per-(seed, job, attempt) draw
    /// in `[0.5, 1.5)`.
    pub jitter: bool,
}

impl Default for RetryBackoff {
    fn default() -> Self {
        Self::linear(Duration::ZERO)
    }
}

impl RetryBackoff {
    /// Salt for the jitter draw, disjoint from `FaultPlan`'s salts.
    const JITTER_SALT: u64 = 0x6a77;

    /// The legacy schedule: attempt `k` sleeps `base * k`, no jitter.
    pub fn linear(base: Duration) -> Self {
        Self {
            base,
            factor: 1.0,
            cap: Duration::MAX,
            jitter: false,
        }
    }

    /// The wait after failed attempt `attempt` (1-based) of job `job`.
    ///
    /// `seed` keys the jitter draw (callers pass their fault-plan seed, or
    /// 0); it is ignored when `jitter` is off. Pure: same inputs, same
    /// wait, on every platform.
    pub fn delay(&self, seed: u64, job: u64, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let raw = if self.factor <= 1.0 {
            // Integer math keeps the historical linear schedule bit-exact.
            self.base * attempt
        } else {
            let secs = self.base.as_secs_f64() * self.factor.powi(attempt as i32 - 1);
            Duration::try_from_secs_f64(secs).unwrap_or(Duration::MAX)
        };
        let capped = raw.min(self.cap);
        if !self.jitter {
            return capped;
        }
        let scale = 0.5 + reap_fault::uniform(seed, job, attempt, Self::JITTER_SALT);
        Duration::try_from_secs_f64(capped.as_secs_f64() * scale).unwrap_or(Duration::MAX)
    }

    /// Parses the CLI spec `ms[:exp[:cap-ms]]`.
    ///
    /// `ms` is the base wait in milliseconds; `exp` (a float `>= 1.0`)
    /// switches to jittered exponential growth; `cap-ms` bounds any
    /// single wait (default: uncapped).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let base_ms: u64 = parts
            .next()
            .unwrap_or_default()
            .trim()
            .parse()
            .map_err(|_| format!("bad backoff base in `{spec}`: expected milliseconds"))?;
        let mut backoff = Self::linear(Duration::from_millis(base_ms));
        if let Some(factor) = parts.next() {
            let factor: f64 = factor
                .trim()
                .parse()
                .map_err(|_| format!("bad backoff factor in `{spec}`: expected a number"))?;
            if !factor.is_finite() || factor < 1.0 {
                return Err(format!("backoff factor in `{spec}` must be >= 1.0"));
            }
            backoff.factor = factor;
            backoff.jitter = true;
        }
        if let Some(cap) = parts.next() {
            let cap_ms: u64 = cap
                .trim()
                .parse()
                .map_err(|_| format!("bad backoff cap in `{spec}`: expected milliseconds"))?;
            backoff.cap = Duration::from_millis(cap_ms);
        }
        if parts.next().is_some() {
            return Err(format!(
                "too many `:` fields in `{spec}`: expected ms[:exp[:cap-ms]]"
            ));
        }
        Ok(backoff)
    }
}

/// Supervision policy for one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Retries after the first attempt (0 = fail fast). A job therefore
    /// runs at most `max_retries + 1` times.
    pub max_retries: u32,
    /// Wait schedule between attempts.
    pub backoff: RetryBackoff,
    /// Per-attempt wall-clock deadline. `None` disables timeouts (and the
    /// per-attempt thread they require).
    pub deadline: Option<Duration>,
    /// Armed fault-injection plan, consulted inside the unwind boundary
    /// before each attempt. Its seed also keys the backoff jitter draw.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff: RetryBackoff::default(),
            deadline: None,
            fault_plan: None,
        }
    }
}

/// Why a job ultimately failed (after all retries).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobError {
    /// Every attempt panicked; carries the last panic message.
    Panicked {
        /// The last panic payload, rendered as text.
        message: String,
    },
    /// Every attempt exceeded the configured deadline.
    TimedOut {
        /// The deadline that was exceeded.
        deadline: Duration,
    },
    /// The batch was cancelled before this job ran to completion.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked { message } => write!(f, "worker panicked: {message}"),
            JobError::TimedOut { deadline } => {
                write!(f, "job exceeded its {deadline:?} deadline")
            }
            JobError::Cancelled => write!(f, "batch cancelled before the job completed"),
        }
    }
}

impl std::error::Error for JobError {}

/// The supervised result of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome<R> {
    /// The job's value, or why it could not be produced.
    pub result: Result<R, JobError>,
    /// Attempts actually made (1 for a clean first run, 0 if cancelled
    /// before being claimed).
    pub attempts: u32,
}

impl<R> JobOutcome<R> {
    fn cancelled() -> Self {
        Self {
            result: Err(JobError::Cancelled),
            attempts: 0,
        }
    }

    /// Whether the job needed more than one attempt but still delivered.
    pub fn recovered(&self) -> bool {
        self.result.is_ok() && self.attempts > 1
    }
}

/// Counters accumulated by the workers of one supervised batch.
#[derive(Debug, Default)]
struct BatchStats {
    panics: AtomicUsize,
    timeouts: AtomicUsize,
    retries: AtomicUsize,
}

/// One attempt's failure, before retry policy is applied.
enum AttemptFailure {
    Panicked(String),
    TimedOut,
}

/// Runs `f` over `jobs` on up to `parallelism` threads with panic
/// isolation, retries and deadlines per [`SupervisorConfig`], returning
/// an outcome per job in input order.
///
/// `on_result` runs on the calling thread as each outcome arrives
/// (arrival order is scheduling-dependent; the returned `Vec` is not).
/// Returning [`ControlFlow::Break`] cancels the batch: workers stop
/// claiming jobs, and unclaimed jobs report [`JobError::Cancelled`].
///
/// Retrying re-runs the job with a fresh clone of its input, so `T:
/// Clone`; the deadline path runs attempts on dedicated threads, so the
/// usual `'static` bounds apply.
///
/// A timed-out attempt's thread is *abandoned*, not killed (Rust offers
/// no safe thread kill): it keeps running detached until its job
/// finishes, and its result is discarded. Deadlines therefore bound the
/// *campaign's* latency, not the OS-level resources of a wedged job.
///
/// # Panics
///
/// Panics if `parallelism == 0` — the one contract violation that is a
/// caller bug rather than a data-dependent condition.
pub fn pool_map_supervised<T, R, F, C>(
    jobs: Vec<T>,
    parallelism: usize,
    pool_name: &str,
    config: &SupervisorConfig,
    f: F,
    mut on_result: C,
) -> Vec<JobOutcome<R>>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
    C: FnMut(usize, &JobOutcome<R>) -> ControlFlow<()>,
{
    assert!(parallelism > 0, "need at least one worker");
    silence_supervised_panics();
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let mut span = reap_obs::span(pool_name);
    span.add_events(total as u64);
    let stats = BatchStats::default();
    let f = Arc::new(f);
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let workers = parallelism.min(total);
    let (sender, receiver) = mpsc::channel::<(usize, JobOutcome<R>)>();

    let telemetry = span.is_recording();
    let mut results: Vec<Option<JobOutcome<R>>> = (0..total).map(|_| None).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let sender = sender.clone();
            let slots = &slots;
            let next = &next;
            let cancelled = &cancelled;
            let stats = &stats;
            let f = &f;
            let pool = pool_name;
            scope.spawn(move || {
                let started = telemetry.then(std::time::Instant::now);
                let job_span_name = telemetry.then(|| format!("{pool}.job"));
                let mut busy = Duration::ZERO;
                let mut jobs_done = 0u64;
                loop {
                    if cancelled.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("slot poisoned")
                        .take()
                        .expect("each slot is claimed once");
                    let t0 = telemetry.then(std::time::Instant::now);
                    // Per-job span: feeds the `span.{pool}.job.us`
                    // latency histogram (supervised attempts included).
                    let job_span = job_span_name.as_deref().map(reap_obs::span);
                    let outcome = supervise_job(job, i, config, f, cancelled, stats);
                    drop(job_span);
                    if let Some(t0) = t0 {
                        busy += t0.elapsed();
                    }
                    jobs_done += 1;
                    if sender.send((i, outcome)).is_err() {
                        break;
                    }
                }
                // Same per-worker utilization gauges as the unsupervised
                // pool, so dashboards work across both.
                if let Some(started) = started {
                    let wall = started.elapsed().as_secs_f64();
                    let busy = busy.as_secs_f64();
                    let registry = reap_obs::global();
                    let prefix = format!("{pool}.worker.{w}");
                    // `add`, not `set`: repeated pools with the same name
                    // in one process accumulate seconds across batches,
                    // with utilization recomputed from the accumulated
                    // totals. (Same fix the `.jobs` counters got.)
                    let busy_gauge = registry.gauge(&format!("{prefix}.busy_s"));
                    let idle_gauge = registry.gauge(&format!("{prefix}.idle_s"));
                    busy_gauge.add(busy);
                    idle_gauge.add((wall - busy).max(0.0));
                    let total_busy = busy_gauge.get();
                    let total_wall = total_busy + idle_gauge.get();
                    registry
                        .gauge(&format!("{prefix}.utilization"))
                        .set(if total_wall > 0.0 {
                            total_busy / total_wall
                        } else {
                            0.0
                        });
                    registry.counter(&format!("{prefix}.jobs")).add(jobs_done);
                }
            });
        }
        drop(sender);
        // Collect on the calling thread so `on_result` can observe (and
        // cancel) while workers are still running.
        for (i, outcome) in receiver {
            if let ControlFlow::Break(()) = on_result(i, &outcome) {
                cancelled.store(true, Ordering::Relaxed);
            }
            results[i] = Some(outcome);
        }
    });

    if span.is_recording() {
        let registry = reap_obs::global();
        let ok = results
            .iter()
            .filter(|r| matches!(r, Some(o) if o.result.is_ok()))
            .count();
        let failed = results
            .iter()
            .filter(|r| matches!(r, Some(o) if o.result.is_err()))
            .count();
        let prefix = format!("{pool_name}.supervised");
        registry.counter(&format!("{prefix}.ok")).add(ok as u64);
        registry
            .counter(&format!("{prefix}.failed"))
            .add(failed as u64);
        registry
            .counter(&format!("{prefix}.retries"))
            .add(stats.retries.load(Ordering::Relaxed) as u64);
        registry
            .counter(&format!("{prefix}.panics"))
            .add(stats.panics.load(Ordering::Relaxed) as u64);
        registry
            .counter(&format!("{prefix}.timeouts"))
            .add(stats.timeouts.load(Ordering::Relaxed) as u64);
    }

    results
        .into_iter()
        .map(|slot| slot.unwrap_or_else(JobOutcome::cancelled))
        .collect()
}

/// Runs one job to a final outcome: attempt, catch, retry, back off.
fn supervise_job<T, R, F>(
    job: T,
    index: usize,
    config: &SupervisorConfig,
    f: &Arc<F>,
    cancelled: &AtomicBool,
    stats: &BatchStats,
) -> JobOutcome<R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let max_attempts = config.max_retries + 1;
    let mut last_failure = None;
    for attempt in 1..=max_attempts {
        match run_attempt(job.clone(), index as u64, attempt, config, f) {
            Ok(value) => {
                return JobOutcome {
                    result: Ok(value),
                    attempts: attempt,
                }
            }
            Err(failure) => {
                match &failure {
                    AttemptFailure::Panicked(_) => stats.panics.fetch_add(1, Ordering::Relaxed),
                    AttemptFailure::TimedOut => stats.timeouts.fetch_add(1, Ordering::Relaxed),
                };
                last_failure = Some(failure);
            }
        }
        if attempt < max_attempts {
            if cancelled.load(Ordering::Relaxed) {
                return JobOutcome {
                    result: Err(JobError::Cancelled),
                    attempts: attempt,
                };
            }
            stats.retries.fetch_add(1, Ordering::Relaxed);
            // Deterministic wait schedule; the fault-plan seed (if any)
            // keys the jitter draw so reruns reproduce exactly.
            let seed = config.fault_plan.map_or(0, |p| p.seed);
            let backoff = config.backoff.delay(seed, index as u64, attempt);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
    }
    let error = match last_failure.expect("at least one attempt ran") {
        AttemptFailure::Panicked(message) => JobError::Panicked { message },
        AttemptFailure::TimedOut => JobError::TimedOut {
            deadline: config.deadline.unwrap_or_default(),
        },
    };
    JobOutcome {
        result: Err(error),
        attempts: max_attempts,
    }
}

/// Runs one attempt under `catch_unwind`, on a watchdog thread when a
/// deadline is configured.
fn run_attempt<T, R, F>(
    job: T,
    index: u64,
    attempt: u32,
    config: &SupervisorConfig,
    f: &Arc<F>,
) -> Result<R, AttemptFailure>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let plan = config.fault_plan;
    let body = {
        let f = Arc::clone(f);
        move || {
            let _quiet = AttemptMarker::enter();
            if let Some(plan) = &plan {
                plan.apply(index, attempt);
            }
            f(job)
        }
    };
    match config.deadline {
        None => catch_unwind(AssertUnwindSafe(body))
            .map_err(|p| AttemptFailure::Panicked(panic_message(p))),
        Some(deadline) => {
            let (tx, rx) = mpsc::sync_channel(1);
            std::thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(body));
                // The watchdog may have given up on us; ignore send errors.
                let _ = tx.send(result);
            });
            match rx.recv_timeout(deadline) {
                Ok(Ok(value)) => Ok(value),
                Ok(Err(p)) => Err(AttemptFailure::Panicked(panic_message(p))),
                Err(mpsc::RecvTimeoutError::Timeout | mpsc::RecvTimeoutError::Disconnected) => {
                    Err(AttemptFailure::TimedOut)
                }
            }
        }
    }
}

/// Renders a panic payload as text (panics carry `&str` or `String`
/// almost always; anything else gets a placeholder).
///
/// Takes the box by value: `&Box<dyn Any>` would coerce into a trait
/// object *around the box*, making every downcast miss.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quiet supervisor: no retries, no deadline, no injection.
    fn strict() -> SupervisorConfig {
        SupervisorConfig {
            max_retries: 0,
            ..SupervisorConfig::default()
        }
    }

    fn keep_going<R>(_: usize, _: &JobOutcome<R>) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }

    #[test]
    fn clean_batch_matches_pool_map() {
        let jobs: Vec<u64> = (0..50).collect();
        let out = pool_map_supervised(jobs, 4, "t", &strict(), |j| j * 3, keep_going);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.result, Ok(i as u64 * 3));
            assert_eq!(o.attempts, 1);
        }
    }

    #[test]
    fn one_panicking_job_does_not_poison_the_batch() {
        let jobs: Vec<u64> = (0..16).collect();
        let out = pool_map_supervised(
            jobs,
            4,
            "t",
            &strict(),
            |j| {
                assert!(j != 7, "job 7 is poisoned");
                j + 1
            },
            keep_going,
        );
        for (i, o) in out.iter().enumerate() {
            if i == 7 {
                let Err(JobError::Panicked { message }) = &o.result else {
                    panic!("job 7 must fail: {o:?}");
                };
                assert!(message.contains("poisoned"), "{message}");
            } else {
                assert_eq!(o.result, Ok(i as u64 + 1), "job {i} must survive");
            }
        }
    }

    #[test]
    fn injected_panics_are_retried_to_success() {
        let plan: FaultPlan = "seed=3,panic=0.4".parse().unwrap();
        let config = SupervisorConfig {
            max_retries: 10,
            fault_plan: Some(plan),
            ..SupervisorConfig::default()
        };
        let jobs: Vec<u64> = (0..32).collect();
        let out = pool_map_supervised(jobs, 4, "t", &config, |j| j * j, keep_going);
        let mut recovered = 0;
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.result, Ok((i * i) as u64), "job {i}: {o:?}");
            if o.recovered() {
                recovered += 1;
            }
        }
        assert!(recovered > 0, "at 40% panic rate some job must retry");
    }

    #[test]
    fn retries_exhaust_into_a_reported_failure() {
        let plan = FaultPlan {
            panic_rate: 1.0,
            ..FaultPlan::default()
        };
        let config = SupervisorConfig {
            max_retries: 2,
            fault_plan: Some(plan),
            ..SupervisorConfig::default()
        };
        let out = pool_map_supervised(vec![0u64], 1, "t", &config, |j| j, keep_going);
        assert_eq!(out[0].attempts, 3);
        let Err(JobError::Panicked { message }) = &out[0].result else {
            panic!("must fail: {:?}", out[0]);
        };
        assert!(message.contains("reap-fault: injected panic"), "{message}");
    }

    #[test]
    fn deadline_times_out_stuck_work() {
        let config = SupervisorConfig {
            max_retries: 0,
            deadline: Some(Duration::from_millis(30)),
            ..SupervisorConfig::default()
        };
        let out = pool_map_supervised(
            vec![0u64, 1],
            2,
            "t",
            &config,
            |j| {
                if j == 0 {
                    std::thread::sleep(Duration::from_secs(5));
                }
                j
            },
            keep_going,
        );
        assert_eq!(
            out[0].result,
            Err(JobError::TimedOut {
                deadline: Duration::from_millis(30)
            })
        );
        assert_eq!(out[1].result, Ok(1), "fast job unaffected");
    }

    #[test]
    fn injected_delay_plus_deadline_recovers_on_retry() {
        // Delay rate below 1: a delayed (timed-out) attempt retries and
        // eventually draws a clean attempt.
        let plan = FaultPlan {
            seed: 5,
            delay_rate: 0.5,
            delay: Duration::from_millis(200),
            ..FaultPlan::default()
        };
        let config = SupervisorConfig {
            max_retries: 12,
            deadline: Some(Duration::from_millis(40)),
            fault_plan: Some(plan),
            ..SupervisorConfig::default()
        };
        let jobs: Vec<u64> = (0..8).collect();
        let out = pool_map_supervised(jobs, 4, "t", &config, |j| j + 100, keep_going);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.result, Ok(i as u64 + 100), "job {i}: {o:?}");
        }
    }

    #[test]
    fn cancellation_stops_the_batch() {
        let jobs: Vec<u64> = (0..64).collect();
        let mut seen = 0;
        let out = pool_map_supervised(
            jobs,
            1, // single worker: deterministic claim order
            "t",
            &strict(),
            |j| {
                // Slow enough that the collector's Break lands while the
                // worker is still mid-batch.
                std::thread::sleep(Duration::from_millis(3));
                j
            },
            |_, _| {
                seen += 1;
                if seen >= 5 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        let done = out.iter().filter(|o| o.result.is_ok()).count();
        let cancelled = out
            .iter()
            .filter(|o| o.result == Err(JobError::Cancelled))
            .count();
        assert!((5..64).contains(&done), "done = {done}");
        assert_eq!(done + cancelled, 64);
    }

    #[test]
    fn telemetry_counts_failures_and_retries() {
        reap_obs::global().reset();
        reap_obs::set_enabled(true);
        let plan = FaultPlan {
            panic_rate: 1.0,
            ..FaultPlan::default()
        };
        let config = SupervisorConfig {
            max_retries: 1,
            fault_plan: Some(plan),
            ..SupervisorConfig::default()
        };
        let _ = pool_map_supervised(vec![0u64, 1], 2, "sup_test", &config, |j| j, keep_going);
        let snapshot = reap_obs::global().snapshot();
        reap_obs::set_enabled(false);
        let get = |name: &str| {
            snapshot
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("sup_test.supervised.failed"), 2);
        assert_eq!(get("sup_test.supervised.panics"), 4);
        assert_eq!(get("sup_test.supervised.retries"), 2);
        assert_eq!(get("sup_test.supervised.ok"), 0);
    }

    #[test]
    fn backoff_linear_schedule_is_the_legacy_one() {
        let b = RetryBackoff::linear(Duration::from_millis(100));
        assert_eq!(b.delay(0, 3, 1), Duration::from_millis(100));
        assert_eq!(b.delay(0, 3, 2), Duration::from_millis(200));
        assert_eq!(b.delay(9, 8, 3), Duration::from_millis(300), "seed ignored");
        assert_eq!(RetryBackoff::default().delay(0, 0, 7), Duration::ZERO);
    }

    #[test]
    fn backoff_exponential_grows_caps_and_jitters_deterministically() {
        let b = RetryBackoff::parse_spec("100:2:5000").unwrap();
        assert_eq!(b.base, Duration::from_millis(100));
        assert_eq!(b.factor, 2.0);
        assert_eq!(b.cap, Duration::from_millis(5000));
        assert!(b.jitter);

        // Deterministic: same (seed, job, attempt) -> same wait.
        for attempt in 1..8 {
            assert_eq!(b.delay(7, 3, attempt), b.delay(7, 3, attempt));
        }
        // Jitter stays within +/-50% of the nominal exponential value.
        let nominal = |k: u32| 0.1 * 2f64.powi(k as i32 - 1);
        for attempt in 1..6 {
            let d = b.delay(7, 3, attempt).as_secs_f64();
            let n = nominal(attempt).min(5.0);
            assert!(
                (0.5 * n..1.5 * n).contains(&d),
                "attempt {attempt}: {d} vs nominal {n}"
            );
        }
        // The cap bounds the pre-jitter wait: attempt 12 nominal is 204.8s.
        assert!(b.delay(7, 3, 12) < Duration::from_millis(7500));
        // Different jobs draw different jitter.
        assert_ne!(b.delay(7, 3, 2), b.delay(7, 4, 2));
    }

    #[test]
    fn backoff_spec_parser_accepts_and_rejects() {
        let b = RetryBackoff::parse_spec("250").unwrap();
        assert_eq!(b, RetryBackoff::linear(Duration::from_millis(250)));

        let b = RetryBackoff::parse_spec("100:1.5").unwrap();
        assert_eq!(b.factor, 1.5);
        assert!(b.jitter);
        assert_eq!(b.cap, Duration::MAX);

        assert!(RetryBackoff::parse_spec("abc").is_err());
        assert!(RetryBackoff::parse_spec("100:0.5").is_err(), "factor < 1");
        assert!(RetryBackoff::parse_spec("100:nan").is_err());
        assert!(RetryBackoff::parse_spec("100:2:x").is_err());
        assert!(
            RetryBackoff::parse_spec("100:2:50:9").is_err(),
            "extra field"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_parallelism_rejected() {
        let _ = pool_map_supervised(Vec::<u64>::new(), 0, "t", &strict(), |j| j, keep_going);
    }
}
