//! The result of one simulation: reliability, energy, performance.

use crate::capture::HierarchySnapshot;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::readpath::ReadPathModel;
use crate::scheme::ProtectionScheme;
use reap_cache::CacheStats;
use reap_reliability::{LogHistogram, Mttf, ReplayAggregator};
use std::fmt;

/// Aggregated results of one simulation run, queryable per
/// [`ProtectionScheme`].
///
/// # Examples
///
/// ```
/// use reap_core::{Experiment, ProtectionScheme};
/// use reap_trace::SpecWorkload;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let report = Experiment::paper_hierarchy()
///     .workload(SpecWorkload::H264ref)
///     .accesses(50_000)
///     .run()?;
/// // Fig. 5 metric:
/// let gain = report.mttf_improvement(ProtectionScheme::Reap);
/// // Fig. 6 metric:
/// let overhead = report.energy_overhead(ProtectionScheme::Reap);
/// assert!(gain >= 1.0 && overhead >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Report {
    l1i_stats: CacheStats,
    l1d_stats: CacheStats,
    l2_stats: CacheStats,
    memory_reads: u64,
    memory_writes: u64,
    histogram: LogHistogram,
    fail_conventional: f64,
    fail_reap: f64,
    fail_serial: f64,
    writeback_exposure: f64,
    energy_model: EnergyModel,
    readpath_model: ReadPathModel,
    duration_seconds: f64,
    p_rd: f64,
}

impl Report {
    /// Assembles a report from a hierarchy snapshot and the scored
    /// failure sums — the common tail of both a single-pass run and a
    /// capture/replay evaluation (called by [`crate::Simulator`]).
    pub(crate) fn assemble(
        snapshot: &HierarchySnapshot,
        aggregator: &ReplayAggregator,
        energy_model: EnergyModel,
        readpath_model: ReadPathModel,
        duration_seconds: f64,
        p_rd: f64,
    ) -> Self {
        Self {
            l1i_stats: snapshot.l1i,
            l1d_stats: snapshot.l1d,
            l2_stats: snapshot.l2,
            memory_reads: snapshot.memory_reads,
            memory_writes: snapshot.memory_writes,
            fail_conventional: aggregator.conventional().expected_failures(),
            fail_reap: aggregator.reap().expected_failures(),
            fail_serial: aggregator.serial().expected_failures(),
            writeback_exposure: aggregator.writeback_exposure(),
            histogram: aggregator.histogram().clone(),
            energy_model,
            readpath_model,
            duration_seconds,
            p_rd,
        }
    }

    /// L1 instruction-cache counters.
    pub fn l1i_stats(&self) -> &CacheStats {
        &self.l1i_stats
    }

    /// L1 data-cache counters.
    pub fn l1d_stats(&self) -> &CacheStats {
        &self.l1d_stats
    }

    /// L2 counters (measurement window only).
    pub fn l2_stats(&self) -> &CacheStats {
        &self.l2_stats
    }

    /// Reads that reached main memory.
    pub fn memory_reads(&self) -> u64 {
        self.memory_reads
    }

    /// Writes that reached main memory.
    pub fn memory_writes(&self) -> u64 {
        self.memory_writes
    }

    /// The per-read, per-cell disturbance probability in force.
    pub fn p_rd(&self) -> f64 {
        self.p_rd
    }

    /// Simulated wall-clock duration of the measurement window (s).
    pub fn duration_seconds(&self) -> f64 {
        self.duration_seconds
    }

    /// The Fig. 3 histogram: demand-check events binned by accumulated
    /// read count, with conventional failure contribution per bin.
    pub fn histogram(&self) -> &LogHistogram {
        &self.histogram
    }

    /// Expected uncorrectable failures over the window under `scheme`.
    ///
    /// Disruptive-restore shares the serial scheme's law — one read's
    /// disturbance per demand read; see [`crate::observer`].
    pub fn expected_failures(&self, scheme: ProtectionScheme) -> f64 {
        match scheme {
            ProtectionScheme::Conventional => self.fail_conventional,
            ProtectionScheme::Reap => self.fail_reap,
            ProtectionScheme::SerialTagFirst | ProtectionScheme::DisruptiveRestore => {
                self.fail_serial
            }
        }
    }

    /// Unchecked failure probability carried out by dirty write-backs —
    /// an exposure channel the paper does not model (extension metric).
    pub fn writeback_exposure(&self) -> f64 {
        self.writeback_exposure
    }

    /// MTTF under `scheme`.
    pub fn mttf(&self, scheme: ProtectionScheme) -> Mttf {
        Mttf::from_seconds(self.duration_seconds / self.expected_failures(scheme))
    }

    /// MTTF normalized to the conventional baseline — the Fig. 5 metric.
    ///
    /// Returns 1.0 when no failure-exposed demand reads occurred at all
    /// (e.g. a purely streaming workload with zero L2 read hits), where
    /// the ratio is otherwise undefined.
    pub fn mttf_improvement(&self, scheme: ProtectionScheme) -> f64 {
        let conv = self.expected_failures(ProtectionScheme::Conventional);
        let this = self.expected_failures(scheme);
        if conv == 0.0 && this == 0.0 {
            return 1.0;
        }
        conv / this
    }

    /// Dynamic-energy breakdown of the L2 under `scheme`.
    pub fn energy(&self, scheme: ProtectionScheme) -> EnergyBreakdown {
        self.energy_model.breakdown(&self.l2_stats, scheme)
    }

    /// Dynamic-energy overhead versus conventional — the Fig. 6 metric.
    pub fn energy_overhead(&self, scheme: ProtectionScheme) -> f64 {
        self.energy_model
            .overhead_vs_conventional(&self.l2_stats, scheme)
    }

    /// L2 read access time under `scheme` (s).
    pub fn access_time(&self, scheme: ProtectionScheme) -> f64 {
        self.readpath_model.read_access_time(scheme)
    }

    /// Mean concealed reads per L2 access observed in the window.
    pub fn mean_concealed_reads(&self) -> f64 {
        self.l2_stats.concealed_per_access()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "L1I: {}", self.l1i_stats)?;
        writeln!(f, "L1D: {}", self.l1d_stats)?;
        writeln!(f, "L2 : {}", self.l2_stats)?;
        writeln!(
            f,
            "memory: {} reads, {} writes; P_rd = {:.3e}",
            self.memory_reads, self.memory_writes, self.p_rd
        )?;
        for s in ProtectionScheme::ALL {
            writeln!(
                f,
                "{:<28} E[fail] = {:.3e}  MTTF gain = {:>9.2}x  energy = {:+.2}%",
                s.to_string(),
                self.expected_failures(s),
                self.mttf_improvement(s),
                100.0 * self.energy_overhead(s)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{SimulationConfig, Simulator};
    use reap_trace::SpecWorkload;

    fn report(workload: SpecWorkload) -> Report {
        let config = SimulationConfig {
            warmup_accesses: 2_000,
            measure_accesses: 40_000,
            ..SimulationConfig::default()
        };
        Simulator::new(config)
            .unwrap()
            .run(workload.stream(11))
            .unwrap()
    }

    #[test]
    fn reap_beats_conventional_on_mttf() {
        let r = report(SpecWorkload::DealII);
        assert!(r.mttf_improvement(ProtectionScheme::Reap) > 2.0);
        assert!(
            r.mttf(ProtectionScheme::Reap).as_seconds()
                > r.mttf(ProtectionScheme::Conventional).as_seconds()
        );
    }

    #[test]
    fn serial_matches_reap_failures_but_not_time() {
        let r = report(SpecWorkload::DealII);
        // Serial checks each demand read singly; REAP additionally checks
        // concealed reads, so REAP accrues *more* check events — but both
        // eliminate accumulation. Expected failures per check are equal,
        // so serial <= reap in failure mass, both far below conventional.
        assert!(
            r.expected_failures(ProtectionScheme::SerialTagFirst)
                <= r.expected_failures(ProtectionScheme::Reap)
        );
        assert!(
            r.expected_failures(ProtectionScheme::Reap)
                < r.expected_failures(ProtectionScheme::Conventional)
        );
        assert!(
            r.access_time(ProtectionScheme::SerialTagFirst) > r.access_time(ProtectionScheme::Reap)
        );
    }

    #[test]
    fn energy_overheads_ordered() {
        let r = report(SpecWorkload::CactusAdm);
        let reap = r.energy_overhead(ProtectionScheme::Reap);
        let restore = r.energy_overhead(ProtectionScheme::DisruptiveRestore);
        let serial = r.energy_overhead(ProtectionScheme::SerialTagFirst);
        assert!(reap > 0.0 && reap < 0.15, "reap overhead = {reap}");
        assert!(restore > 10.0 * reap, "restore is much costlier: {restore}");
        assert!(serial < 0.0, "serial saves data-read energy: {serial}");
    }

    #[test]
    fn histogram_populated() {
        let r = report(SpecWorkload::Perlbench);
        assert!(r.histogram().total_count() > 0);
        assert!(r.histogram().max_n() >= 1);
    }

    #[test]
    fn display_mentions_all_schemes() {
        let r = report(SpecWorkload::Mcf);
        let text = r.to_string();
        for s in ProtectionScheme::ALL {
            assert!(text.contains(&s.to_string()), "missing {s}");
        }
    }
}
