//! Persistent, content-addressed storage of exposure captures.
//!
//! PR 4 made multi-point replay cheap, which leaves the capture pass —
//! one full trace drive per workload — as the dominant cost of a sweep,
//! paid again by every process. But an [`ExposureCapture`] is a pure
//! function of the *behavioural* configuration (workload, seed,
//! hierarchy geometry, replacement policy, access budgets) and contains
//! only integers, so it serializes bit-exactly. This module caches
//! captures on disk and replays warm sweeps without touching the trace.
//!
//! The on-disk format is `reap-capture/1`, a compact little-endian
//! stream following the `reap-trace` conventions (every decode error
//! names the byte offset where it stopped):
//!
//! ```text
//! magic       "RCAP"          (4 bytes)
//! version     u8 = 1
//! fingerprint u64 LE          (the entry's CaptureKey fingerprint)
//! line_bits   u64 LE
//! ones_seed   u64 LE
//! snapshot    38 × u64 LE     (l1i, l1d, l2 CacheStats in field order,
//!                              then memory_reads, memory_writes)
//! count       u64 LE
//! count × records:
//!   kind      u8              (0 demand, 1 dirty-scrub, 2 dirty-eviction)
//!   tag       u64 LE
//!   set       u64 LE
//!   version   u64 LE
//!   unchecked u64 LE
//! checksum    u64 LE          (FNV-1a over every preceding byte)
//! ```
//!
//! A [`CaptureStore`] addresses entries by a fingerprint over everything
//! the capture depends on — and *nothing* it does not: ECC strength, MTJ
//! parameters, technology node and access rate are analysis-side, so one
//! stored capture serves every analysis point of a sweep. Entries are
//! written to a temp file and atomically renamed into place; a reader
//! can never observe a half-written entry. **Any** read failure — bad
//! magic, foreign fingerprint, truncation, bit corruption caught by the
//! checksum — falls back to recapturing from the trace: a corrupt store
//! costs time, never correctness.
//!
//! # Examples
//!
//! ```
//! use reap_core::capture_store::{CapturePolicy, CaptureStore};
//! use reap_core::Experiment;
//! use reap_trace::SpecWorkload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("rcap-doc-{}", std::process::id()));
//! let store = CaptureStore::new(&dir, CapturePolicy::ReadWrite);
//! let experiment = Experiment::paper_hierarchy()
//!     .workload(SpecWorkload::Hmmer)
//!     .accesses(20_000);
//! let cold = experiment.capture_with(Some(&store))?; // trace pass + store write
//! let warm = experiment.capture_with(Some(&store))?; // served from disk
//! assert_eq!(cold.events(), warm.events());
//! # std::fs::remove_dir_all(dir).ok();
//! # Ok(())
//! # }
//! ```

use crate::capture::{ExposureCapture, ExposureRecord, HierarchySnapshot};
use crate::checkpoint::fnv;
use crate::simulator::{SimulationConfig, SimulationError, Simulator};
use reap_cache::{AccessMode, CacheConfig, CacheStats, HierarchyConfig, LineKey, Replacement};
use reap_reliability::ExposureKind;
use reap_trace::SpecWorkload;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Schema identifier of the on-disk capture format.
pub const CAPTURE_SCHEMA: &str = "reap-capture/1";

const MAGIC: &[u8; 4] = b"RCAP";
const VERSION: u8 = 1;
/// FNV-1a 64-bit offset basis — the seed of both the fingerprint chain
/// and the streamed checksum.
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// How a [`CaptureStore`] participates in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapturePolicy {
    /// The store is bypassed entirely (no reads, no writes).
    #[default]
    Off,
    /// Serve hits from the store but never write new entries.
    Read,
    /// Serve hits and persist fresh captures (the useful default for
    /// sweeps).
    ReadWrite,
}

impl fmt::Display for CapturePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapturePolicy::Off => f.write_str("off"),
            CapturePolicy::Read => f.write_str("read"),
            CapturePolicy::ReadWrite => f.write_str("readwrite"),
        }
    }
}

/// Everything an [`ExposureCapture`]'s content depends on — the store's
/// addressing key.
///
/// Deliberately *excludes* ECC strength, MTJ parameters, technology node
/// and access rate: those only enter at replay time, so captures taken
/// for one analysis point are valid (and shared) for all of them.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureKey {
    workload: SpecWorkload,
    seed: u64,
    hierarchy: HierarchyConfig,
    replacement: Replacement,
    warmup_accesses: u64,
    measure_accesses: u64,
}

impl CaptureKey {
    /// Builds the key for `workload` at `seed` under `config`'s
    /// behavioural parameters.
    pub fn new(workload: SpecWorkload, seed: u64, config: &SimulationConfig) -> Self {
        Self {
            workload,
            seed,
            hierarchy: config.hierarchy.clone(),
            replacement: config.replacement,
            warmup_accesses: config.warmup_accesses,
            measure_accesses: config.measure_accesses,
        }
    }

    /// The 64-bit content address: an FNV-1a chain (the checkpoint
    /// fingerprint hash) over the schema tag, workload, seed, every
    /// geometric field of all three cache levels, the replacement policy
    /// and the access budgets.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv(FNV_BASIS, CAPTURE_SCHEMA.as_bytes());
        h = fnv(h, self.workload.name().as_bytes());
        h = fnv(h, &self.seed.to_le_bytes());
        for level in [&self.hierarchy.l1i, &self.hierarchy.l1d, &self.hierarchy.l2] {
            h = hash_level(h, level);
        }
        let (tag, seed) = match self.replacement {
            Replacement::Lru => (0u8, 0u64),
            Replacement::TreePlru => (1, 0),
            Replacement::Fifo => (2, 0),
            Replacement::Random(s) => (3, s),
            Replacement::Srrip => (4, 0),
            Replacement::LeastErrorRate => (5, 0),
        };
        h = fnv(h, &[tag]);
        h = fnv(h, &seed.to_le_bytes());
        h = fnv(h, &self.warmup_accesses.to_le_bytes());
        h = fnv(h, &self.measure_accesses.to_le_bytes());
        h
    }
}

fn hash_level(mut h: u64, level: &CacheConfig) -> u64 {
    h = fnv(h, level.name().as_bytes());
    h = fnv(h, &(level.size_bytes() as u64).to_le_bytes());
    h = fnv(h, &(level.associativity() as u64).to_le_bytes());
    h = fnv(h, &(level.block_bytes() as u64).to_le_bytes());
    let mode = match level.access_mode() {
        AccessMode::Parallel => 0u8,
        AccessMode::Serial => 1,
    };
    fnv(h, &[mode])
}

/// Error decoding (or writing) a serialized capture.
///
/// Every decode variant names the byte offset where reading stopped, so
/// a damaged entry is diagnosable without a hex editor. Callers going
/// through [`CaptureStore::load`] never see these — the store maps them
/// all to a miss — but tests and tools can use
/// [`read_capture`]/[`write_capture`] directly.
#[derive(Debug)]
#[non_exhaustive]
pub enum CaptureStoreError {
    /// Underlying I/O failure (other than a short read).
    Io {
        /// Byte offset the failed operation started at.
        offset: u64,
        /// The underlying error.
        source: io::Error,
    },
    /// The stream ended mid-header, mid-record or mid-trailer.
    Truncated {
        /// Byte offset the unsatisfied read started at.
        offset: u64,
        /// The record being decoded, if past the header.
        record: Option<u64>,
    },
    /// The stream does not start with the `RCAP` magic.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The format version is newer than this reader.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The entry belongs to a different configuration.
    FingerprintMismatch {
        /// The fingerprint the caller expected.
        expected: u64,
        /// The fingerprint stamped in the file.
        found: u64,
    },
    /// A record carries an unknown exposure-kind tag.
    UnknownKind {
        /// The tag found.
        found: u8,
        /// The record carrying it.
        record: u64,
        /// Byte offset of that record.
        offset: u64,
    },
    /// The checksum trailer does not match the bytes read — silent bit
    /// corruption somewhere in the body.
    ChecksumMismatch {
        /// The checksum computed over the body.
        expected: u64,
        /// The trailer found in the file.
        found: u64,
        /// Byte offset of the trailer.
        offset: u64,
    },
    /// Bytes follow the checksum trailer.
    TrailingBytes {
        /// Byte offset of the first unexpected byte.
        offset: u64,
    },
}

impl fmt::Display for CaptureStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureStoreError::Io { offset, source } => {
                write!(f, "capture i/o failed at byte {offset}: {source}")
            }
            CaptureStoreError::Truncated {
                offset,
                record: Some(record),
            } => write!(f, "capture truncated at byte {offset} (record {record})"),
            CaptureStoreError::Truncated {
                offset,
                record: None,
            } => write!(f, "capture truncated at byte {offset}"),
            CaptureStoreError::BadMagic { found } => {
                write!(f, "not a capture file (magic {found:02x?})")
            }
            CaptureStoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported capture version {found}")
            }
            CaptureStoreError::FingerprintMismatch { expected, found } => write!(
                f,
                "capture fingerprint {found:016x} does not match expected {expected:016x}"
            ),
            CaptureStoreError::UnknownKind {
                found,
                record,
                offset,
            } => write!(
                f,
                "unknown exposure kind tag {found} in record {record} at byte {offset}"
            ),
            CaptureStoreError::ChecksumMismatch {
                expected,
                found,
                offset,
            } => write!(
                f,
                "capture checksum mismatch at byte {offset}: computed {expected:016x}, \
                 stored {found:016x}"
            ),
            CaptureStoreError::TrailingBytes { offset } => {
                write!(
                    f,
                    "capture has trailing bytes after the checksum at byte {offset}"
                )
            }
        }
    }
}

impl Error for CaptureStoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CaptureStoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A writer adapter that streams the FNV-1a checksum over everything
/// written through it (captures run to tens of megabytes; buffering the
/// whole body to hash it would double the peak memory).
struct HashWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            hash: FNV_BASIS,
        }
    }
}

impl<W: Write> Write for HashWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        for &b in &buf[..n] {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The mirror-image reader adapter: hashes every byte it yields.
struct HashReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            hash: FNV_BASIS,
        }
    }
}

impl<R: Read> Read for HashReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        Ok(n)
    }
}

/// Where in the stream a read was positioned, for error context.
#[derive(Debug, Clone, Copy)]
enum Section {
    Header,
    Record { index: u64 },
}

/// `read_exact` with position bookkeeping, mapping short reads to
/// [`CaptureStoreError::Truncated`] stamped with the current offset.
fn fill<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    offset: &mut u64,
    section: Section,
) -> Result<(), CaptureStoreError> {
    let at = *offset;
    let record = match section {
        Section::Header => None,
        Section::Record { index } => Some(index),
    };
    match reader.read_exact(buf) {
        Ok(()) => {
            *offset += buf.len() as u64;
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            Err(CaptureStoreError::Truncated { offset: at, record })
        }
        Err(source) => Err(CaptureStoreError::Io { offset: at, source }),
    }
}

fn read_u64<R: Read>(
    reader: &mut R,
    offset: &mut u64,
    section: Section,
) -> Result<u64, CaptureStoreError> {
    let mut buf = [0u8; 8];
    fill(reader, &mut buf, offset, section)?;
    Ok(u64::from_le_bytes(buf))
}

/// The 38 `u64`s of a [`HierarchySnapshot`], in serialization order.
fn snapshot_words(s: &HierarchySnapshot) -> [u64; 38] {
    let mut words = [0u64; 38];
    let mut i = 0;
    for stats in [&s.l1i, &s.l1d, &s.l2] {
        for w in stats_words(stats) {
            words[i] = w;
            i += 1;
        }
    }
    words[36] = s.memory_reads;
    words[37] = s.memory_writes;
    words
}

fn stats_words(s: &CacheStats) -> [u64; 12] {
    [
        s.reads,
        s.writes,
        s.read_hits,
        s.write_hits,
        s.fills,
        s.evictions,
        s.dirty_evictions,
        s.concealed_reads,
        s.line_reads,
        s.demand_checks,
        s.scrub_checks,
        s.writeback_installs,
    ]
}

fn stats_from_words(w: &[u64; 12]) -> CacheStats {
    CacheStats {
        reads: w[0],
        writes: w[1],
        read_hits: w[2],
        write_hits: w[3],
        fills: w[4],
        evictions: w[5],
        dirty_evictions: w[6],
        concealed_reads: w[7],
        line_reads: w[8],
        demand_checks: w[9],
        scrub_checks: w[10],
        writeback_installs: w[11],
    }
}

/// The serializable core of a capture: what `reap-capture/1` stores. The
/// behavioural configuration is *not* serialized — it is implied by the
/// fingerprint and re-supplied from the caller's [`CaptureKey`] when the
/// full [`ExposureCapture`] is reassembled.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturePayload {
    /// The recorded exposure events, in simulation order.
    pub events: Vec<ExposureRecord>,
    /// Final hierarchy counters of the capture run.
    pub snapshot: HierarchySnapshot,
    /// Data bits per L2 line.
    pub line_bits: usize,
    /// The content-weight hash seed the captured cache used.
    pub ones_seed: u64,
}

/// Serializes `capture` (stamped with `fingerprint`) as `reap-capture/1`.
///
/// # Errors
///
/// Propagates I/O errors from the writer, stamped with the byte offset.
pub fn write_capture<W: Write>(
    writer: W,
    fingerprint: u64,
    capture: &ExposureCapture,
) -> Result<(), CaptureStoreError> {
    let mut w = HashWriter::new(writer);
    let mut offset = 0u64;
    let put = |w: &mut HashWriter<W>, offset: &mut u64, bytes: &[u8]| {
        w.write_all(bytes).map_err(|source| CaptureStoreError::Io {
            offset: *offset,
            source,
        })?;
        *offset += bytes.len() as u64;
        Ok::<(), CaptureStoreError>(())
    };
    put(&mut w, &mut offset, MAGIC)?;
    put(&mut w, &mut offset, &[VERSION])?;
    put(&mut w, &mut offset, &fingerprint.to_le_bytes())?;
    put(
        &mut w,
        &mut offset,
        &(capture.line_bits() as u64).to_le_bytes(),
    )?;
    put(&mut w, &mut offset, &capture.ones_seed().to_le_bytes())?;
    for word in snapshot_words(capture.snapshot()) {
        put(&mut w, &mut offset, &word.to_le_bytes())?;
    }
    put(
        &mut w,
        &mut offset,
        &(capture.events().len() as u64).to_le_bytes(),
    )?;
    for record in capture.events() {
        let kind = match record.kind {
            ExposureKind::Demand => 0u8,
            ExposureKind::DirtyScrub => 1,
            ExposureKind::DirtyEviction => 2,
        };
        put(&mut w, &mut offset, &[kind])?;
        put(&mut w, &mut offset, &record.key.tag.to_le_bytes())?;
        put(&mut w, &mut offset, &record.key.set.to_le_bytes())?;
        put(&mut w, &mut offset, &record.key.version.to_le_bytes())?;
        put(&mut w, &mut offset, &record.unchecked_reads.to_le_bytes())?;
    }
    // The trailer is written to the inner writer so it is not folded into
    // its own hash.
    let checksum = w.hash;
    w.inner
        .write_all(&checksum.to_le_bytes())
        .map_err(|source| CaptureStoreError::Io { offset, source })?;
    w.inner
        .flush()
        .map_err(|source| CaptureStoreError::Io { offset, source })?;
    Ok(())
}

/// Deserializes a `reap-capture/1` stream, verifying the magic, version,
/// `expected_fingerprint`, checksum trailer and the absence of trailing
/// bytes.
///
/// # Errors
///
/// Returns [`CaptureStoreError`] naming the byte offset on any defect.
pub fn read_capture<R: Read>(
    reader: R,
    expected_fingerprint: u64,
) -> Result<CapturePayload, CaptureStoreError> {
    let mut r = HashReader::new(reader);
    let mut offset = 0u64;
    let mut magic = [0u8; 4];
    fill(&mut r, &mut magic, &mut offset, Section::Header)?;
    if &magic != MAGIC {
        return Err(CaptureStoreError::BadMagic { found: magic });
    }
    let mut version = [0u8; 1];
    fill(&mut r, &mut version, &mut offset, Section::Header)?;
    if version[0] != VERSION {
        return Err(CaptureStoreError::UnsupportedVersion { found: version[0] });
    }
    let fingerprint = read_u64(&mut r, &mut offset, Section::Header)?;
    if fingerprint != expected_fingerprint {
        return Err(CaptureStoreError::FingerprintMismatch {
            expected: expected_fingerprint,
            found: fingerprint,
        });
    }
    let line_bits = read_u64(&mut r, &mut offset, Section::Header)?;
    let ones_seed = read_u64(&mut r, &mut offset, Section::Header)?;
    let mut words = [0u64; 38];
    for w in &mut words {
        *w = read_u64(&mut r, &mut offset, Section::Header)?;
    }
    let snapshot = HierarchySnapshot {
        l1i: stats_from_words(words[0..12].try_into().expect("12 words")),
        l1d: stats_from_words(words[12..24].try_into().expect("12 words")),
        l2: stats_from_words(words[24..36].try_into().expect("12 words")),
        memory_reads: words[36],
        memory_writes: words[37],
    };
    let count = read_u64(&mut r, &mut offset, Section::Header)?;
    // A truncated count field cannot make us balloon: reserve at most a
    // sane chunk up front and let push() grow the rest.
    let mut events = Vec::with_capacity(count.min(1 << 20) as usize);
    for record in 0..count {
        let section = Section::Record { index: record };
        let record_offset = offset;
        let mut kind = [0u8; 1];
        fill(&mut r, &mut kind, &mut offset, section)?;
        let kind = match kind[0] {
            0 => ExposureKind::Demand,
            1 => ExposureKind::DirtyScrub,
            2 => ExposureKind::DirtyEviction,
            other => {
                return Err(CaptureStoreError::UnknownKind {
                    found: other,
                    record,
                    offset: record_offset,
                })
            }
        };
        let tag = read_u64(&mut r, &mut offset, section)?;
        let set = read_u64(&mut r, &mut offset, section)?;
        let version = read_u64(&mut r, &mut offset, section)?;
        let unchecked_reads = read_u64(&mut r, &mut offset, section)?;
        events.push(ExposureRecord {
            kind,
            key: LineKey { tag, set, version },
            unchecked_reads,
        });
    }
    // The trailer is read from the inner reader so the comparison hash
    // covers exactly the body.
    let expected = r.hash;
    let trailer_offset = offset;
    let mut trailer = [0u8; 8];
    match r.inner.read_exact(&mut trailer) {
        Ok(()) => offset += 8,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            return Err(CaptureStoreError::Truncated {
                offset: trailer_offset,
                record: None,
            })
        }
        Err(source) => {
            return Err(CaptureStoreError::Io {
                offset: trailer_offset,
                source,
            })
        }
    }
    let found = u64::from_le_bytes(trailer);
    if found != expected {
        return Err(CaptureStoreError::ChecksumMismatch {
            expected,
            found,
            offset: trailer_offset,
        });
    }
    // Read-ahead one byte: a valid entry ends exactly at the trailer.
    let mut probe = [0u8; 1];
    match r.inner.read_exact(&mut probe) {
        Ok(()) => return Err(CaptureStoreError::TrailingBytes { offset }),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {}
        Err(source) => return Err(CaptureStoreError::Io { offset, source }),
    }
    Ok(CapturePayload {
        events,
        snapshot,
        line_bits: line_bits as usize,
        ones_seed,
    })
}

/// A directory of fingerprint-addressed capture entries.
///
/// Cloneable and `Sync`: campaign workers share one store and hit
/// disjoint entries (each workload has its own fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureStore {
    dir: PathBuf,
    policy: CapturePolicy,
}

impl CaptureStore {
    /// A store rooted at `dir` (created lazily on the first write).
    pub fn new(dir: impl Into<PathBuf>, policy: CapturePolicy) -> Self {
        Self {
            dir: dir.into(),
            policy,
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's read/write policy.
    pub fn policy(&self) -> CapturePolicy {
        self.policy
    }

    /// The on-disk path of `key`'s entry.
    pub fn entry_path(&self, key: &CaptureKey) -> PathBuf {
        self.dir.join(format!("{:016x}.rcap", key.fingerprint()))
    }

    /// Attempts to serve `key` from disk. Never fails outward: a missing
    /// entry counts a `capture_store.miss`, an unreadable or corrupt one
    /// counts a `capture_store.invalid`, and both return `None` so the
    /// caller recaptures.
    pub fn load(&self, key: &CaptureKey) -> Option<ExposureCapture> {
        if self.policy == CapturePolicy::Off {
            return None;
        }
        let path = self.entry_path(key);
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                bump("capture_store.miss");
                return None;
            }
            Err(e) => {
                bump("capture_store.invalid");
                eprintln!(
                    "warning: capture store entry {} unreadable ({e}); recapturing",
                    path.display()
                );
                return None;
            }
        };
        match read_capture(BufReader::new(file), key.fingerprint()) {
            Ok(payload) => {
                bump("capture_store.hit");
                Some(ExposureCapture::from_parts(
                    payload.events,
                    payload.snapshot,
                    payload.line_bits,
                    payload.ones_seed,
                    key.hierarchy.clone(),
                    key.replacement,
                    key.warmup_accesses,
                    key.measure_accesses,
                ))
            }
            Err(e) => {
                bump("capture_store.invalid");
                eprintln!(
                    "warning: capture store entry {} is invalid ({e}); recapturing",
                    path.display()
                );
                None
            }
        }
    }

    /// Persists `capture` under `key`, via a temp file and an atomic
    /// rename — concurrent readers either see the complete entry or none.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureStoreError::Io`] when the directory, temp file or
    /// rename fails. Callers on the hot path treat this as a warning (the
    /// capture is still in memory), not a failure.
    pub fn store(
        &self,
        key: &CaptureKey,
        capture: &ExposureCapture,
    ) -> Result<PathBuf, CaptureStoreError> {
        let io_err = |source| CaptureStoreError::Io { offset: 0, source };
        std::fs::create_dir_all(&self.dir).map_err(io_err)?;
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            "{:016x}.rcap.tmp.{}",
            key.fingerprint(),
            std::process::id()
        ));
        let result = (|| {
            let file = File::create(&tmp).map_err(io_err)?;
            write_capture(BufWriter::new(file), key.fingerprint(), capture)?;
            std::fs::rename(&tmp, &path).map_err(io_err)?;
            Ok(())
        })();
        if let Err(e) = result {
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
        bump("capture_store.write");
        Ok(path)
    }

    /// The store-aware capture entry point: serve `sim`'s capture of
    /// `workload` at `seed` from disk when possible, otherwise run the
    /// trace pass (and persist it under a `ReadWrite` policy).
    ///
    /// Bit-identical to [`Simulator::capture`] in every case — the format
    /// round-trips captures exactly, and any read defect falls back to
    /// the trace pass. The whole attempt runs inside a `capture_store`
    /// span; a hit deliberately does *not* emit the `sim.capture.*` or
    /// `cache.*` counters, which count actual trace passes.
    ///
    /// # Errors
    ///
    /// Propagates [`SimulationError`] from a recapture; store write
    /// failures are reported on stderr, never fatal.
    pub fn load_or_capture(
        &self,
        sim: &Simulator,
        workload: SpecWorkload,
        seed: u64,
    ) -> Result<ExposureCapture, SimulationError> {
        let key = CaptureKey::new(workload, seed, sim.config());
        let mut span = reap_obs::span("capture_store");
        if let Some(capture) = self.load(&key) {
            span.add_events(capture.events().len() as u64);
            return Ok(capture);
        }
        let capture = sim.capture(workload.stream(seed))?;
        span.add_events(capture.events().len() as u64);
        if self.policy == CapturePolicy::ReadWrite {
            if let Err(e) = self.store(&key, &capture) {
                eprintln!("warning: capture store write failed: {e}");
            }
        }
        Ok(capture)
    }
}

/// Increments a global counter when telemetry is enabled (the same
/// gating the simulator spans use).
fn bump(name: &str) {
    if reap_obs::enabled() {
        reap_obs::global().counter(name).add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("reap-capstore-unit-{tag}-{}", std::process::id()))
    }

    fn small_capture() -> (ExposureCapture, CaptureKey) {
        let experiment = Experiment::paper_hierarchy()
            .workload(SpecWorkload::Hmmer)
            .budgets(500, 8_000)
            .seed(3);
        let capture = experiment.capture().unwrap();
        let key = CaptureKey::new(SpecWorkload::Hmmer, 3, experiment.config());
        (capture, key)
    }

    fn encode(capture: &ExposureCapture, fingerprint: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        write_capture(&mut buf, fingerprint, capture).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let (capture, key) = small_capture();
        let buf = encode(&capture, key.fingerprint());
        let payload = read_capture(&buf[..], key.fingerprint()).unwrap();
        assert_eq!(payload.events, capture.events());
        assert_eq!(payload.line_bits, capture.line_bits());
        assert_eq!(payload.ones_seed, capture.ones_seed());
        assert_eq!(
            snapshot_words(&payload.snapshot),
            snapshot_words(capture.snapshot())
        );
    }

    #[test]
    fn fingerprint_separates_behavioural_configs_only() {
        let base = Experiment::paper_hierarchy().budgets(500, 8_000).seed(3);
        let key = |e: &Experiment, w, s| CaptureKey::new(w, s, e.config()).fingerprint();
        let a = key(&base, SpecWorkload::Hmmer, 3);
        // Workload, seed, budgets and policy all separate entries…
        assert_ne!(a, key(&base, SpecWorkload::Gcc, 3));
        assert_ne!(a, key(&base, SpecWorkload::Hmmer, 4));
        assert_ne!(
            a,
            key(&base.clone().budgets(500, 9_000), SpecWorkload::Hmmer, 3)
        );
        assert_ne!(
            a,
            key(
                &base.clone().replacement(Replacement::Fifo),
                SpecWorkload::Hmmer,
                3
            )
        );
        // …while analysis-side settings share one capture.
        assert_eq!(
            a,
            key(
                &base.clone().ecc(crate::simulator::EccStrength::Tec),
                SpecWorkload::Hmmer,
                3
            )
        );
    }

    #[test]
    fn bad_magic_version_and_fingerprint_are_typed() {
        let (capture, key) = small_capture();
        let fp = key.fingerprint();
        let mut buf = encode(&capture, fp);
        buf[0] = b'X';
        assert!(matches!(
            read_capture(&buf[..], fp).unwrap_err(),
            CaptureStoreError::BadMagic { .. }
        ));
        let mut buf = encode(&capture, fp);
        buf[4] = 9;
        assert!(matches!(
            read_capture(&buf[..], fp).unwrap_err(),
            CaptureStoreError::UnsupportedVersion { found: 9 }
        ));
        let buf = encode(&capture, fp);
        let err = read_capture(&buf[..], fp ^ 1).unwrap_err();
        assert!(matches!(err, CaptureStoreError::FingerprintMismatch { .. }));
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn truncation_names_the_offset() {
        let (capture, key) = small_capture();
        let fp = key.fingerprint();
        let buf = encode(&capture, fp);
        let cut = &buf[..buf.len() - 3];
        let err = read_capture(cut, fp).unwrap_err();
        assert!(matches!(err, CaptureStoreError::Truncated { .. }), "{err}");
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn bit_corruption_fails_the_checksum() {
        let (capture, key) = small_capture();
        let fp = key.fingerprint();
        let mut buf = encode(&capture, fp);
        // Flip one bit deep in the record body: only the trailer catches it.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x10;
        let err = read_capture(&buf[..], fp).unwrap_err();
        assert!(
            matches!(
                err,
                CaptureStoreError::ChecksumMismatch { .. } | CaptureStoreError::UnknownKind { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (capture, key) = small_capture();
        let fp = key.fingerprint();
        let mut buf = encode(&capture, fp);
        buf.push(0);
        let err = read_capture(&buf[..], fp).unwrap_err();
        assert!(
            matches!(err, CaptureStoreError::TrailingBytes { .. }),
            "{err}"
        );
    }

    #[test]
    fn store_load_round_trip_and_miss() {
        let dir = scratch("roundtrip");
        std::fs::remove_dir_all(&dir).ok();
        let store = CaptureStore::new(&dir, CapturePolicy::ReadWrite);
        let (capture, key) = small_capture();
        assert!(store.load(&key).is_none(), "cold store must miss");
        store.store(&key, &capture).unwrap();
        let loaded = store.load(&key).expect("entry just written");
        assert_eq!(loaded.events(), capture.events());
        assert_eq!(loaded.line_bits(), capture.line_bits());
        assert_eq!(loaded.ones_seed(), capture.ones_seed());
        assert_eq!(loaded.warmup_accesses(), capture.warmup_accesses());
        assert_eq!(loaded.measure_accesses(), capture.measure_accesses());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn off_policy_bypasses_even_existing_entries() {
        let dir = scratch("off");
        std::fs::remove_dir_all(&dir).ok();
        let (capture, key) = small_capture();
        CaptureStore::new(&dir, CapturePolicy::ReadWrite)
            .store(&key, &capture)
            .unwrap();
        assert!(CaptureStore::new(&dir, CapturePolicy::Off)
            .load(&key)
            .is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn no_temp_files_survive_a_store() {
        let dir = scratch("tmpfiles");
        std::fs::remove_dir_all(&dir).ok();
        let store = CaptureStore::new(&dir, CapturePolicy::ReadWrite);
        let (capture, key) = small_capture();
        store.store(&key, &capture).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn policy_displays_cli_names() {
        assert_eq!(CapturePolicy::Off.to_string(), "off");
        assert_eq!(CapturePolicy::Read.to_string(), "read");
        assert_eq!(CapturePolicy::ReadWrite.to_string(), "readwrite");
    }
}
